#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `kbp-lang` — a textual surface language for knowledge-based programs.
//!
//! A `.kbp` file declares one *scenario*: a finite-state context
//! (agents, state vars, initial states, an environment, observation
//! functions, a transition table) together with one knowledge-based
//! program per agent — guarded cases whose tests are epistemic/temporal
//! formulas in the syntax of `kbp_logic::parse`.
//!
//! The pipeline has three stages, each usable on its own:
//!
//! 1. [`parse`] — a total, error-recovering parser producing a
//!    span-carrying [`Scenario`] plus diagnostics;
//! 2. [`analyze`] — semantic checks that report *all* findings with
//!    source spans (unknown names, arity mismatches, duplicates,
//!    missing declarations, the paper's synchrony condition,
//!    subjectivity of guards);
//! 3. [`lower`] — compilation into a [`kbp_systems::FnContext`] and a
//!    [`kbp_core::Kbp`], consumed unchanged by the solver, the
//!    enumerator and the evaluation engine. Lowering preserves formula
//!    structure and declaration-order numbering, so a DSL transcription
//!    of a hand-coded scenario solves bit-identically.
//!
//! [`compile`] runs all three; [`check`] does the same but also hands
//! back warnings on success (the `kbpc` binary and the `kbpd` `define`
//! endpoint use it).

pub mod analyze;
pub mod ast;
pub mod diag;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod span;

pub use analyze::{analyze, Analysis};
pub use ast::Scenario;
pub use diag::{has_errors, Diagnostic, Severity};
pub use lower::{lower, Compiled};
pub use parser::parse;
pub use span::{LineCol, LineMap, Span};

/// Parses, analyzes and (when error-free) lowers one scenario. Returns
/// every diagnostic found, warnings included, alongside the compiled
/// scenario when compilation succeeded.
#[must_use]
pub fn check(src: &str) -> (Option<Compiled>, Vec<Diagnostic>) {
    let (sc, mut diags) = parse(src);
    let Some(sc) = sc else {
        return (None, diags);
    };
    let analysis = analyze(&sc, &mut diags);
    if has_errors(&diags) {
        return (None, diags);
    }
    let compiled = lower(&sc, analysis);
    (Some(compiled), diags)
}

/// Compiles one scenario, failing on any error-severity diagnostic.
///
/// # Errors
///
/// Returns all diagnostics (errors and warnings) when the source does
/// not compile.
pub fn compile(src: &str) -> Result<Compiled, Vec<Diagnostic>> {
    let (compiled, diags) = check(src);
    match compiled {
        Some(c) => Ok(c),
        None => Err(diags),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_rejects_errors_and_keeps_all_diagnostics() {
        let err = compile("scenario broken { agents a vars x init [0, 1] }")
            .expect_err("must not compile");
        assert!(err.len() >= 3, "{err:?}");
    }

    #[test]
    fn check_reports_warnings_on_success() {
        let (compiled, diags) = check(
            "scenario warny { horizon 1 agents a vars x init [0] actions a: m, n obs a = x prop p = x local a: p
              program a { case K{a} X p do n default m } }",
        );
        let c = compiled.expect("warnings do not block compilation");
        assert!(!c.solvable());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
