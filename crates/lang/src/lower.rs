//! Lowering: compiling a checked scenario into the exact artifacts the
//! rest of the workspace consumes — a [`kbp_systems::FnContext`] and a
//! [`kbp_core::Kbp`].
//!
//! The contract is **structural fidelity**: guards lower into the same
//! [`Formula`] shapes `kbp_logic::parse` and the hand-coded scenarios
//! build (`&`/`|` chains stay flattened n-ary, `K{i}` becomes
//! [`Formula::knows`], groups become the corresponding group
//! constructors), and every identifier space (agents, registers,
//! propositions, actions, environment actions, initial states) is
//! numbered in declaration order. A DSL transcription of a Rust-coded
//! scenario therefore solves bit-identically to the original.

use crate::analyze::Analysis;
use crate::ast::{BinOp, Expr, GroupOp, Guard, RecallKind, Scenario};
use kbp_core::Kbp;
use kbp_logic::{Agent, AgentSet, Formula, PropId, Vocabulary};
use kbp_systems::{
    ActionId, ContextBuilder, EnvActionId, FnContext, GlobalState, JointAction, Obs, Recall,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A compiled scenario: everything needed to instantiate fresh
/// `(FnContext, Kbp)` pairs. Cloning is cheap (the lowered body is
/// shared), and instantiation is deterministic.
#[derive(Debug, Clone)]
pub struct Compiled {
    name: String,
    default_horizon: u64,
    recall: Recall,
    solvable: bool,
    lowered: Arc<Lowered>,
}

impl Compiled {
    /// The scenario's declared name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared `horizon`.
    #[must_use]
    pub fn default_horizon(&self) -> u64 {
        self.default_horizon
    }

    /// The declared `recall` mode (perfect by default).
    #[must_use]
    pub fn recall(&self) -> Recall {
        self.recall
    }

    /// Whether the fixed-point solver applies (no future-referring
    /// guards).
    #[must_use]
    pub fn solvable(&self) -> bool {
        self.solvable
    }

    /// Number of agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.lowered.agent_names.len()
    }

    /// Builds a fresh context and program.
    #[must_use]
    pub fn instantiate(&self) -> (FnContext, Kbp) {
        let l = &self.lowered;
        let mut voc = Vocabulary::new();
        for a in &l.agent_names {
            voc.add_agent(a.clone());
        }
        for p in &l.prop_names {
            voc.add_prop(p.clone());
        }
        let mut builder = ContextBuilder::new(voc)
            .initial_states(l.inits.iter().map(|regs| GlobalState::new(regs.clone())));
        for (i, repertoire) in l.actions.iter().enumerate() {
            builder = builder.agent_actions(Agent::new(i), repertoire.iter().map(String::as_str));
        }
        if !l.env_names.is_empty() {
            let count = l.env_names.len() as u32;
            builder = builder
                .env_actions(l.env_names.iter().map(String::as_str))
                .env_protocol(move |_| (0..count).map(EnvActionId).collect());
        }
        let lt = Arc::clone(&self.lowered);
        let lo = Arc::clone(&self.lowered);
        let lp = Arc::clone(&self.lowered);
        let ctx = builder
            .transition(move |s, j| {
                let regs = (0..lt.var_count)
                    .map(|r| match lt.updates.get(r) {
                        Some(Some(e)) => eval(e, s, Some(j)) as u32,
                        _ => s.reg(r),
                    })
                    .collect();
                GlobalState::new(regs)
            })
            .observe(move |agent, s| Obs(lo.obs.get(agent.index()).map_or(0, |e| eval(e, s, None))))
            .props(move |p, s| {
                lp.props
                    .get(p.index())
                    .is_some_and(|e| eval(e, s, None) != 0)
            })
            .build();
        let mut kbp = Kbp::builder();
        for (i, prog) in l.programs.iter().enumerate() {
            let agent = Agent::new(i);
            for (guard, action) in &prog.cases {
                kbp = kbp.clause(agent, guard.clone(), *action);
            }
            kbp = kbp.default_action(agent, prog.default);
            for prop in l.locals.get(i).into_iter().flatten() {
                kbp = kbp.local_prop(agent, PropId::new(*prop));
            }
        }
        (ctx, kbp.build())
    }
}

/// One agent's lowered program.
#[derive(Debug)]
struct LoweredProgram {
    cases: Vec<(Formula, ActionId)>,
    default: ActionId,
}

/// The name-free lowered body, indexed entirely by declaration order.
#[derive(Debug)]
struct Lowered {
    agent_names: Vec<String>,
    prop_names: Vec<String>,
    var_count: usize,
    inits: Vec<Vec<u32>>,
    env_names: Vec<String>,
    /// Per agent: action names in `ActionId` order.
    actions: Vec<Vec<String>>,
    /// Per agent: observation expression.
    obs: Vec<LExpr>,
    /// Per proposition: truth expression.
    props: Vec<LExpr>,
    /// Per register: update expression (`None` keeps the old value).
    updates: Vec<Option<LExpr>>,
    /// Per agent: locally-observable proposition indices.
    locals: Vec<Vec<u32>>,
    /// Per agent: the program.
    programs: Vec<LoweredProgram>,
}

/// Resolved integer expressions: names are gone, only indices remain.
#[derive(Debug)]
enum LExpr {
    Num(u64),
    Reg(usize),
    /// The acting agent's chosen `ActionId`, as a number.
    Act(usize),
    /// The environment's `EnvActionId`, as a number.
    Env,
    Not(Box<LExpr>),
    Bin(BinOp, Box<LExpr>, Box<LExpr>),
    If(Box<LExpr>, Box<LExpr>, Box<LExpr>),
}

fn eval(e: &LExpr, s: &GlobalState, j: Option<&JointAction>) -> u64 {
    match e {
        LExpr::Num(v) => *v,
        LExpr::Reg(r) => u64::from(s.reg(*r)),
        LExpr::Act(i) => j.and_then(|j| j.acts.get(*i)).map_or(0, |a| u64::from(a.0)),
        LExpr::Env => j.map_or(0, |j| u64::from(j.env.0)),
        LExpr::Not(inner) => u64::from(eval(inner, s, j) == 0),
        LExpr::If(c, a, b) => {
            if eval(c, s, j) != 0 {
                eval(a, s, j)
            } else {
                eval(b, s, j)
            }
        }
        LExpr::Bin(op, a, b) => {
            let x = eval(a, s, j);
            let y = eval(b, s, j);
            match op {
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Shl => {
                    if y < 64 {
                        x << y
                    } else {
                        0
                    }
                }
                BinOp::Shr => {
                    if y < 64 {
                        x >> y
                    } else {
                        0
                    }
                }
                BinOp::BitAnd => x & y,
                BinOp::BitXor => x ^ y,
                BinOp::BitOr => x | y,
                BinOp::Eq => u64::from(x == y),
                BinOp::Ne => u64::from(x != y),
                BinOp::Lt => u64::from(x < y),
                BinOp::Le => u64::from(x <= y),
                BinOp::Gt => u64::from(x > y),
                BinOp::Ge => u64::from(x >= y),
                BinOp::And => u64::from(x != 0 && y != 0),
                BinOp::Or => u64::from(x != 0 || y != 0),
            }
        }
    }
}

/// Name-resolution tables shared by expression and guard lowering.
struct Tables<'a> {
    agents: HashMap<&'a str, usize>,
    vars: HashMap<&'a str, usize>,
    props: HashMap<&'a str, u32>,
    env: HashMap<&'a str, u64>,
    /// Per agent: action name → id.
    actions: Vec<HashMap<&'a str, u32>>,
}

/// Lowers a scenario that passed [`crate::analyze::analyze`] with no
/// errors. Resolution is total: names the analyzer would have rejected
/// fall back to index 0, so this never panics even on unchecked input
/// (the result is then simply meaningless).
#[must_use]
pub fn lower(sc: &Scenario, analysis: Analysis) -> Compiled {
    let mut tables = Tables {
        agents: HashMap::new(),
        vars: HashMap::new(),
        props: HashMap::new(),
        env: HashMap::new(),
        actions: vec![HashMap::new(); sc.agents.len()],
    };
    for (i, a) in sc.agents.iter().enumerate() {
        tables.agents.entry(&a.text).or_insert(i);
    }
    for (i, v) in sc.vars.iter().enumerate() {
        tables.vars.entry(&v.text).or_insert(i);
    }
    for (i, p) in sc.props.iter().enumerate() {
        tables.props.entry(&p.name.text).or_insert(i as u32);
    }
    for (i, e) in sc.env_actions.iter().enumerate() {
        tables.env.entry(&e.text).or_insert(i as u64);
    }
    // Repertoires keyed by declared agent order, regardless of the
    // order the `actions` lines appear in.
    let mut actions: Vec<Vec<String>> = vec![Vec::new(); sc.agents.len()];
    for decl in &sc.actions {
        if let Some(&i) = tables.agents.get(decl.agent.text.as_str()) {
            if actions[i].is_empty() {
                actions[i] = decl.actions.iter().map(|a| a.text.clone()).collect();
                for (id, a) in decl.actions.iter().enumerate() {
                    tables.actions[i].entry(&a.text).or_insert(id as u32);
                }
            }
        }
    }
    let obs: Vec<LExpr> = sc
        .agents
        .iter()
        .map(|a| {
            sc.obs
                .iter()
                .find(|o| o.agent.text == a.text)
                .map_or(LExpr::Num(0), |o| lower_expr(&o.expr, &tables))
        })
        .collect();
    let props: Vec<LExpr> = sc
        .props
        .iter()
        .map(|p| lower_expr(&p.expr, &tables))
        .collect();
    let mut updates: Vec<Option<LExpr>> = (0..sc.vars.len()).map(|_| None).collect();
    if let Some(t) = &sc.transition {
        for u in &t.updates {
            if let Some(&r) = tables.vars.get(u.var.text.as_str()) {
                if updates[r].is_none() {
                    updates[r] = Some(lower_expr(&u.expr, &tables));
                }
            }
        }
    }
    let locals: Vec<Vec<u32>> = sc
        .agents
        .iter()
        .map(|a| {
            let mut out = Vec::new();
            for decl in sc.locals.iter().filter(|l| l.agent.text == a.text) {
                for p in &decl.props {
                    if let Some(&id) = tables.props.get(p.text.as_str()) {
                        if !out.contains(&id) {
                            out.push(id);
                        }
                    }
                }
            }
            out
        })
        .collect();
    let programs: Vec<LoweredProgram> = sc
        .agents
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let Some(decl) = sc.programs.iter().find(|p| p.agent.text == a.text) else {
                return LoweredProgram {
                    cases: Vec::new(),
                    default: ActionId(0),
                };
            };
            let cases = decl
                .cases
                .iter()
                .map(|c| {
                    let action = tables.actions[i]
                        .get(c.action.text.as_str())
                        .copied()
                        .unwrap_or(0);
                    (lower_guard(&c.guard, &tables), ActionId(action))
                })
                .collect();
            let default = decl
                .default
                .as_ref()
                .and_then(|d| tables.actions[i].get(d.text.as_str()).copied())
                .unwrap_or(0);
            LoweredProgram {
                cases,
                default: ActionId(default),
            }
        })
        .collect();
    Compiled {
        name: sc.name.text.clone(),
        default_horizon: sc.horizon.map_or(1, |(h, _)| h),
        recall: match sc.recall.map(|(r, _)| r).unwrap_or_default() {
            RecallKind::Perfect => Recall::Perfect,
            RecallKind::Observational => Recall::Observational,
        },
        solvable: analysis.solvable,
        lowered: Arc::new(Lowered {
            agent_names: sc.agents.iter().map(|a| a.text.clone()).collect(),
            prop_names: sc.props.iter().map(|p| p.name.text.clone()).collect(),
            var_count: sc.vars.len(),
            inits: sc
                .inits
                .iter()
                .map(|init| init.values.iter().map(|(v, _)| *v as u32).collect())
                .collect(),
            env_names: sc.env_actions.iter().map(|e| e.text.clone()).collect(),
            actions,
            obs,
            props,
            updates,
            locals,
            programs,
        }),
    }
}

fn lower_expr(e: &Expr, t: &Tables<'_>) -> LExpr {
    match e {
        Expr::Num(v, _) => LExpr::Num(*v),
        Expr::Var(id) => LExpr::Reg(t.vars.get(id.text.as_str()).copied().unwrap_or(0)),
        Expr::Act(agent, _) => LExpr::Act(t.agents.get(agent.text.as_str()).copied().unwrap_or(0)),
        Expr::Env(_) => LExpr::Env,
        Expr::Not(inner, _) => LExpr::Not(Box::new(lower_expr(inner, t))),
        Expr::If(c, a, b, _) => LExpr::If(
            Box::new(lower_expr(c, t)),
            Box::new(lower_expr(a, t)),
            Box::new(lower_expr(b, t)),
        ),
        Expr::Bin(op, a, b, _) => {
            // `act(i) == name` / `env == name`: the identifier denotes
            // an action, not a register.
            if matches!(op, BinOp::Eq | BinOp::Ne) {
                if let Some(resolved) = lower_action_compare(*op, a, b, t)
                    .or_else(|| lower_action_compare(*op, b, a, t))
                {
                    return resolved;
                }
            }
            LExpr::Bin(*op, Box::new(lower_expr(a, t)), Box::new(lower_expr(b, t)))
        }
    }
}

fn lower_action_compare(op: BinOp, lhs: &Expr, rhs: &Expr, t: &Tables<'_>) -> Option<LExpr> {
    let Expr::Var(name) = rhs else {
        return None;
    };
    match lhs {
        Expr::Act(agent, _) => {
            let i = t.agents.get(agent.text.as_str()).copied().unwrap_or(0);
            let id = t
                .actions
                .get(i)
                .and_then(|m| m.get(name.text.as_str()))
                .copied()
                .unwrap_or(0);
            Some(LExpr::Bin(
                op,
                Box::new(LExpr::Act(i)),
                Box::new(LExpr::Num(u64::from(id))),
            ))
        }
        Expr::Env(_) => {
            let id = t.env.get(name.text.as_str()).copied().unwrap_or(0);
            Some(LExpr::Bin(
                op,
                Box::new(LExpr::Env),
                Box::new(LExpr::Num(id)),
            ))
        }
        _ => None,
    }
}

fn lower_guard(g: &Guard, t: &Tables<'_>) -> Formula {
    let agent_of =
        |id: &crate::ast::Ident| Agent::new(t.agents.get(id.text.as_str()).copied().unwrap_or(0));
    match g {
        Guard::True(_) => Formula::True,
        Guard::False(_) => Formula::False,
        Guard::Prop(id) => Formula::prop(PropId::new(
            t.props.get(id.text.as_str()).copied().unwrap_or(0),
        )),
        Guard::Not(inner, _) => Formula::not(lower_guard(inner, t)),
        // Construct the n-ary variants directly (exactly as
        // kbp_logic::parse does) to preserve chain flattening.
        Guard::And(items, _) => Formula::And(items.iter().map(|i| lower_guard(i, t)).collect()),
        Guard::Or(items, _) => Formula::Or(items.iter().map(|i| lower_guard(i, t)).collect()),
        Guard::Implies(a, b, _) => {
            Formula::Implies(Box::new(lower_guard(a, t)), Box::new(lower_guard(b, t)))
        }
        Guard::Iff(a, b, _) => {
            Formula::Iff(Box::new(lower_guard(a, t)), Box::new(lower_guard(b, t)))
        }
        Guard::Knows(agent, inner, _) => Formula::knows(agent_of(agent), lower_guard(inner, t)),
        Guard::Group(op, agents, inner, _) => {
            let mut set = AgentSet::new();
            for a in agents {
                set.insert(agent_of(a));
            }
            let inner = lower_guard(inner, t);
            match op {
                GroupOp::Everyone => Formula::everyone(set, inner),
                GroupOp::Common => Formula::common(set, inner),
                GroupOp::Distributed => Formula::distributed(set, inner),
            }
        }
        Guard::Next(inner, _) => Formula::next(lower_guard(inner, t)),
        Guard::Eventually(inner, _) => Formula::eventually(lower_guard(inner, t)),
        Guard::Always(inner, _) => Formula::always(lower_guard(inner, t)),
        Guard::Until(a, b, _) => Formula::until(lower_guard(a, t), lower_guard(b, t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;
    use kbp_core::SyncSolver;
    use kbp_systems::Context;

    const SMALL: &str = "
scenario tiny {
  horizon 3
  agents a, b
  vars x, seen
  init [0, 0]
  init [1, 0]
  env tick, tock
  actions a: stay, move
  actions b: wait, wave
  obs a = x | seen << 1
  obs b = seen
  prop set = x == 1
  prop noticed = seen == 1
  local a: set
  local b: noticed
  transition {
    seen = if act(b) == wave || env == tock then 1 else seen
  }
  program a {
    case K{a} set do move
    default stay
  }
  program b {
    case K{b} noticed do wave
    default wait
  }
}
";

    fn compiled(src: &str) -> Compiled {
        let (sc, mut diags) = parse(src);
        let sc = sc.expect("parses");
        let analysis = analyze(&sc, &mut diags);
        assert!(
            !crate::diag::has_errors(&diags),
            "unexpected diagnostics: {diags:?}"
        );
        lower(&sc, analysis)
    }

    #[test]
    fn lowers_and_validates_against_the_context() {
        let c = compiled(SMALL);
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.default_horizon(), 3);
        assert_eq!(c.recall(), Recall::Perfect);
        assert!(c.solvable());
        let (ctx, kbp) = c.instantiate();
        assert_eq!(ctx.agent_count(), 2);
        assert_eq!(ctx.vocabulary().prop_count(), 2);
        kbp.validate(&ctx).expect("lowered program validates");
    }

    #[test]
    fn declaration_order_fixes_all_ids() {
        let c = compiled(SMALL);
        let (ctx, _) = c.instantiate();
        assert_eq!(ctx.action_name(Agent::new(0), ActionId(1)), "move");
        assert_eq!(ctx.action_name(Agent::new(1), ActionId(1)), "wave");
        assert_eq!(ctx.env_action_name(EnvActionId(1)), "tock");
        let inits = ctx.initial_states();
        assert_eq!(inits[0].regs(), &[0, 0]);
        assert_eq!(inits[1].regs(), &[1, 0]);
    }

    #[test]
    fn transition_reads_pre_state_and_keeps_unlisted_vars() {
        let c = compiled(SMALL);
        let (ctx, _) = c.instantiate();
        let s = GlobalState::new(vec![1, 0]);
        // b waves: seen flips, x (unlisted) is kept.
        let next = ctx.transition(
            &s,
            &JointAction::new(EnvActionId(0), vec![ActionId(0), ActionId(1)]),
        );
        assert_eq!(next.regs(), &[1, 1]);
        // Nobody acts, env ticks: unchanged.
        let idle = ctx.transition(
            &s,
            &JointAction::new(EnvActionId(0), vec![ActionId(0), ActionId(0)]),
        );
        assert_eq!(idle.regs(), &[1, 0]);
        // env == tock also sets seen.
        let tock = ctx.transition(
            &s,
            &JointAction::new(EnvActionId(1), vec![ActionId(0), ActionId(0)]),
        );
        assert_eq!(tock.regs(), &[1, 1]);
    }

    #[test]
    fn compiled_scenario_solves() {
        let c = compiled(SMALL);
        let (ctx, kbp) = c.instantiate();
        let solution = SyncSolver::new(&ctx, &kbp)
            .horizon(c.default_horizon() as usize)
            .solve()
            .expect("solves");
        assert!(solution.stats().layers > 0);
    }

    #[test]
    fn guard_lowering_matches_hand_built_formulas() {
        let src = "
scenario shapes {
  horizon 1
  agents s, r
  vars bit
  init [0]
  actions s: noop, send
  actions r: noop2
  obs s = bit
  obs r = bit
  prop p = bit == 1
  program s {
    case !K{s} (K{r} p | K{r} !p) do send
    default noop
  }
  program r { default noop2 }
}
";
        let c = compiled(src);
        let (_, kbp) = c.instantiate();
        let s = Agent::new(0);
        let r = Agent::new(1);
        let want = Formula::not(Formula::knows(
            s,
            Formula::knows_whether(r, Formula::prop(PropId::new(0))),
        ));
        let got = &kbp.programs()[0].clauses()[0].guard;
        assert_eq!(*got, want, "DSL guard must be structurally identical");
    }
}
