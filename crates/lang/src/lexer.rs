//! A total, spanned lexer for the `.kbp` surface language.
//!
//! The lexer never fails: bytes it cannot interpret become
//! [`TokenKind::Error`] tokens (each with a diagnostic), so the parser
//! always sees a well-formed token stream ending in `Eof` and can keep
//! reporting further findings.

use crate::diag::Diagnostic;
use crate::span::Span;

/// The kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (also carries formula operators `K E C D X F G U`,
    /// which are interpreted positionally by the guard parser).
    Ident,
    /// An unsigned integer literal.
    Number,
    /// `scenario`.
    KwScenario,
    /// `horizon`.
    KwHorizon,
    /// `recall`.
    KwRecall,
    /// `perfect`.
    KwPerfect,
    /// `observational`.
    KwObservational,
    /// `agents`.
    KwAgents,
    /// `vars`.
    KwVars,
    /// `init`.
    KwInit,
    /// `env` — both the declaration head and the expression primary.
    KwEnv,
    /// `actions`.
    KwActions,
    /// `act` — the expression primary `act(agent)`.
    KwAct,
    /// `obs`.
    KwObs,
    /// `prop`.
    KwProp,
    /// `transition`.
    KwTransition,
    /// `program`.
    KwProgram,
    /// `case`.
    KwCase,
    /// `do`.
    KwDo,
    /// `default`.
    KwDefault,
    /// `local`.
    KwLocal,
    /// `if`.
    KwIf,
    /// `then`.
    KwThen,
    /// `else`.
    KwElse,
    /// `true`.
    KwTrue,
    /// `false`.
    KwFalse,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `:`.
    Colon,
    /// `=`.
    Assign,
    /// `!`.
    Bang,
    /// `&`.
    Amp,
    /// `&&`.
    AmpAmp,
    /// `|`.
    Pipe,
    /// `||`.
    PipePipe,
    /// `^`.
    Caret,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `->`.
    Arrow,
    /// `<->`.
    DArrow,
    /// A byte sequence the lexer could not interpret.
    Error,
    /// End of input.
    Eof,
}

/// One token: a kind plus the byte span it covers. Identifier and
/// number text is recovered by slicing the source with the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

fn keyword(word: &str) -> Option<TokenKind> {
    Some(match word {
        "scenario" => TokenKind::KwScenario,
        "horizon" => TokenKind::KwHorizon,
        "recall" => TokenKind::KwRecall,
        "perfect" => TokenKind::KwPerfect,
        "observational" => TokenKind::KwObservational,
        "agents" => TokenKind::KwAgents,
        "vars" => TokenKind::KwVars,
        "init" => TokenKind::KwInit,
        "env" => TokenKind::KwEnv,
        "actions" => TokenKind::KwActions,
        "act" => TokenKind::KwAct,
        "obs" => TokenKind::KwObs,
        "prop" => TokenKind::KwProp,
        "transition" => TokenKind::KwTransition,
        "program" => TokenKind::KwProgram,
        "case" => TokenKind::KwCase,
        "do" => TokenKind::KwDo,
        "default" => TokenKind::KwDefault,
        "local" => TokenKind::KwLocal,
        "if" => TokenKind::KwIf,
        "then" => TokenKind::KwThen,
        "else" => TokenKind::KwElse,
        "true" => TokenKind::KwTrue,
        "false" => TokenKind::KwFalse,
        _ => return None,
    })
}

/// Tokenizes the whole source. Always produces a final `Eof` token;
/// uninterpretable bytes become `Error` tokens plus diagnostics.
#[must_use]
pub fn lex(src: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut diags = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'{' => one(&mut i, TokenKind::LBrace),
            b'}' => one(&mut i, TokenKind::RBrace),
            b'(' => one(&mut i, TokenKind::LParen),
            b')' => one(&mut i, TokenKind::RParen),
            b'[' => one(&mut i, TokenKind::LBracket),
            b']' => one(&mut i, TokenKind::RBracket),
            b',' => one(&mut i, TokenKind::Comma),
            b':' => one(&mut i, TokenKind::Colon),
            b'^' => one(&mut i, TokenKind::Caret),
            b'+' => one(&mut i, TokenKind::Plus),
            b'*' => one(&mut i, TokenKind::Star),
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::EqEq
                } else {
                    one(&mut i, TokenKind::Assign)
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::NotEq
                } else {
                    one(&mut i, TokenKind::Bang)
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    i += 2;
                    TokenKind::AmpAmp
                } else {
                    one(&mut i, TokenKind::Amp)
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    TokenKind::PipePipe
                } else {
                    one(&mut i, TokenKind::Pipe)
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    TokenKind::Arrow
                } else {
                    one(&mut i, TokenKind::Minus)
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    i += 3;
                    TokenKind::DArrow
                } else if bytes.get(i + 1) == Some(&b'<') {
                    i += 2;
                    TokenKind::Shl
                } else if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Le
                } else {
                    one(&mut i, TokenKind::Lt)
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    TokenKind::Shr
                } else if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    one(&mut i, TokenKind::Gt)
                }
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                TokenKind::Number
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                keyword(&src[start..i]).unwrap_or(TokenKind::Ident)
            }
            _ => {
                // Swallow one UTF-8 scalar so multi-byte garbage yields
                // one diagnostic, not one per byte.
                i += 1;
                while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
                    i += 1;
                }
                diags.push(Diagnostic::error(
                    Span::new(start, i),
                    format!("unexpected character `{}`", &src[start..i].escape_debug()),
                ));
                TokenKind::Error
            }
        };
        toks.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(src.len(), src.len()),
    });
    (toks, diags)
}

fn one(i: &mut usize, kind: TokenKind) -> TokenKind {
    *i += 1;
    kind
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).0.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators_longest_first() {
        use TokenKind::*;
        assert_eq!(
            kinds("<-> << <= < -> - == = != ! && & || |"),
            vec![
                DArrow, Shl, Le, Lt, Arrow, Minus, EqEq, Assign, NotEq, Bang, AmpAmp, Amp,
                PipePipe, Pipe, Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("scenario act action env KX"),
            vec![KwScenario, KwAct, Ident, KwEnv, Ident, Eof]
        );
    }

    #[test]
    fn comments_and_whitespace_vanish() {
        use TokenKind::*;
        assert_eq!(
            kinds("a # trailing\n// whole line\nb"),
            vec![Ident, Ident, Eof]
        );
    }

    #[test]
    fn garbage_becomes_error_tokens_with_diagnostics() {
        let (toks, diags) = lex("a @ é b");
        let errs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Error).collect();
        assert_eq!(errs.len(), 2);
        assert_eq!(diags.len(), 2);
        // The multi-byte scalar is one token.
        assert_eq!(errs[1].span.end - errs[1].span.start, 2);
    }

    #[test]
    fn always_ends_in_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }
}
