//! Error-recovering recursive-descent parser for `.kbp` sources.
//!
//! The parser is total: any byte sequence yields `(Option<Scenario>,
//! Vec<Diagnostic>)` without panicking. On a syntax error it records a
//! diagnostic and re-synchronizes at the next declaration keyword (or
//! block boundary), so one mistake does not hide the rest of the file's
//! findings.
//!
//! Guard syntax mirrors `kbp_logic::parse` exactly — same precedence
//! (`<->` loosest, then `->`, `|`, `&`, `U`, unary), same flattening of
//! `&`/`|` chains — so lowered guards are structurally identical to
//! hand-built formulas.

use crate::ast::{
    ActionsDecl, BinOp, CaseDecl, Expr, GroupOp, Guard, Ident, InitDecl, LocalDecl, ObsDecl,
    ProgramDecl, PropDecl, RecallKind, Scenario, TransitionDecl, UpdateDecl,
};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::span::Span;

/// Parses one scenario from source. Returns the scenario (present
/// whenever the `scenario name { … }` skeleton could be recognized,
/// even if some declarations inside were malformed) plus all lexer and
/// parser diagnostics in source order of discovery.
#[must_use]
pub fn parse(src: &str) -> (Option<Scenario>, Vec<Diagnostic>) {
    let (raw, mut diags) = lex(src);
    // Error tokens already carry diagnostics; the parser works on the
    // clean stream.
    let toks: Vec<Token> = raw
        .into_iter()
        .filter(|t| t.kind != TokenKind::Error)
        .collect();
    let mut p = Parser {
        src,
        toks,
        pos: 0,
        diags: Vec::new(),
    };
    let scenario = p.scenario();
    diags.append(&mut p.diags);
    (scenario, diags)
}

fn describe(kind: TokenKind) -> &'static str {
    use TokenKind::*;
    match kind {
        Ident => "identifier",
        Number => "number",
        KwScenario => "`scenario`",
        KwHorizon => "`horizon`",
        KwRecall => "`recall`",
        KwPerfect => "`perfect`",
        KwObservational => "`observational`",
        KwAgents => "`agents`",
        KwVars => "`vars`",
        KwInit => "`init`",
        KwEnv => "`env`",
        KwActions => "`actions`",
        KwAct => "`act`",
        KwObs => "`obs`",
        KwProp => "`prop`",
        KwTransition => "`transition`",
        KwProgram => "`program`",
        KwCase => "`case`",
        KwDo => "`do`",
        KwDefault => "`default`",
        KwLocal => "`local`",
        KwIf => "`if`",
        KwThen => "`then`",
        KwElse => "`else`",
        KwTrue => "`true`",
        KwFalse => "`false`",
        LBrace => "`{`",
        RBrace => "`}`",
        LParen => "`(`",
        RParen => "`)`",
        LBracket => "`[`",
        RBracket => "`]`",
        Comma => "`,`",
        Colon => "`:`",
        Assign => "`=`",
        Bang => "`!`",
        Amp => "`&`",
        AmpAmp => "`&&`",
        Pipe => "`|`",
        PipePipe => "`||`",
        Caret => "`^`",
        Plus => "`+`",
        Minus => "`-`",
        Star => "`*`",
        Shl => "`<<`",
        Shr => "`>>`",
        EqEq => "`==`",
        NotEq => "`!=`",
        Lt => "`<`",
        Le => "`<=`",
        Gt => "`>`",
        Ge => "`>=`",
        Arrow => "`->`",
        DArrow => "`<->`",
        Error => "unrecognized input",
        Eof => "end of input",
    }
}

fn is_decl_start(kind: TokenKind) -> bool {
    use TokenKind::*;
    matches!(
        kind,
        KwHorizon
            | KwRecall
            | KwAgents
            | KwVars
            | KwInit
            | KwEnv
            | KwActions
            | KwObs
            | KwProp
            | KwTransition
            | KwProgram
            | KwLocal
    )
}

struct Parser<'s> {
    src: &'s str,
    toks: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

type PResult<T> = Result<T, ()>;

impl<'s> Parser<'s> {
    fn peek(&self) -> Token {
        self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek2(&self) -> Token {
        self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn text(&self, tok: Token) -> &'s str {
        &self.src[tok.span.start..tok.span.end.min(self.src.len())]
    }

    fn eat(&mut self, kind: TokenKind) -> Option<Token> {
        if self.peek().kind == kind {
            Some(self.bump())
        } else {
            None
        }
    }

    fn error_at(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic::error(span, message));
    }

    fn expect(&mut self, kind: TokenKind, ctx: &str) -> PResult<Token> {
        let tok = self.peek();
        if tok.kind == kind {
            Ok(self.bump())
        } else {
            self.error_at(
                tok.span,
                format!(
                    "expected {} {ctx}, found {}",
                    describe(kind),
                    describe(tok.kind)
                ),
            );
            Err(())
        }
    }

    fn ident(&mut self, ctx: &str) -> PResult<Ident> {
        let tok = self.expect(TokenKind::Ident, ctx)?;
        Ok(Ident::new(self.text(tok), tok.span))
    }

    fn number(&mut self, ctx: &str) -> PResult<(u64, Span)> {
        let tok = self.expect(TokenKind::Number, ctx)?;
        match self.text(tok).parse::<u64>() {
            Ok(v) => Ok((v, tok.span)),
            Err(_) => {
                self.error_at(tok.span, "integer literal does not fit in 64 bits");
                Ok((0, tok.span))
            }
        }
    }

    fn ident_list(&mut self, ctx: &str) -> PResult<Vec<Ident>> {
        let mut out = vec![self.ident(ctx)?];
        while self.eat(TokenKind::Comma).is_some() {
            out.push(self.ident(ctx)?);
        }
        Ok(out)
    }

    /// Skips ahead to the next declaration keyword, `}`, or end of
    /// input, consuming at least one token so recovery always makes
    /// progress.
    fn sync_decl(&mut self) {
        if matches!(self.peek().kind, TokenKind::RBrace | TokenKind::Eof) {
            return;
        }
        self.bump();
        while !matches!(self.peek().kind, TokenKind::RBrace | TokenKind::Eof)
            && !is_decl_start(self.peek().kind)
        {
            self.bump();
        }
    }

    // ---- scenario skeleton ------------------------------------------------

    fn scenario(&mut self) -> Option<Scenario> {
        let kw = match self.expect(TokenKind::KwScenario, "at start of file") {
            Ok(t) => t,
            Err(()) => return None,
        };
        let name = self.ident("naming the scenario").ok()?;
        if self
            .expect(TokenKind::LBrace, "opening the scenario body")
            .is_err()
        {
            return None;
        }
        let mut sc = Scenario {
            name,
            span: kw.span,
            ..Scenario::default()
        };
        loop {
            match self.peek().kind {
                TokenKind::RBrace | TokenKind::Eof => break,
                _ => {
                    if self.declaration(&mut sc).is_err() {
                        self.sync_decl();
                    }
                }
            }
        }
        let close = self.peek();
        if self.eat(TokenKind::RBrace).is_some() {
            sc.span = kw.span.to(close.span);
        } else {
            self.error_at(close.span, "expected `}` closing the scenario body");
            sc.span = kw.span.to(close.span);
        }
        let trailing = self.peek();
        if trailing.kind != TokenKind::Eof {
            self.error_at(
                trailing.span,
                format!(
                    "expected end of input after the scenario, found {}",
                    describe(trailing.kind)
                ),
            );
        }
        Some(sc)
    }

    fn declaration(&mut self, sc: &mut Scenario) -> PResult<()> {
        let tok = self.peek();
        match tok.kind {
            TokenKind::KwHorizon => {
                self.bump();
                let (v, vspan) = self.number("after `horizon`")?;
                sc.horizon = push_single(
                    &mut self.diags,
                    sc.horizon.take(),
                    (v, tok.span.to(vspan)),
                    tok.span,
                    "horizon",
                );
            }
            TokenKind::KwRecall => {
                self.bump();
                let word = self.peek();
                let kind = match word.kind {
                    TokenKind::KwPerfect => RecallKind::Perfect,
                    TokenKind::KwObservational => RecallKind::Observational,
                    _ => {
                        self.error_at(
                            word.span,
                            format!(
                                "expected `perfect` or `observational` after `recall`, found {}",
                                describe(word.kind)
                            ),
                        );
                        return Err(());
                    }
                };
                self.bump();
                sc.recall = push_single(
                    &mut self.diags,
                    sc.recall.take(),
                    (kind, tok.span.to(word.span)),
                    tok.span,
                    "recall",
                );
            }
            TokenKind::KwAgents => {
                self.bump();
                let list = self.ident_list("in the `agents` list")?;
                if sc.agents.is_empty() {
                    sc.agents = list;
                } else {
                    self.error_at(tok.span, "duplicate `agents` declaration");
                }
            }
            TokenKind::KwVars => {
                self.bump();
                let list = self.ident_list("in the `vars` list")?;
                if sc.vars.is_empty() {
                    sc.vars = list;
                } else {
                    self.error_at(tok.span, "duplicate `vars` declaration");
                }
            }
            TokenKind::KwEnv => {
                self.bump();
                let list = self.ident_list("in the `env` list")?;
                if sc.env_actions.is_empty() {
                    sc.env_actions = list;
                } else {
                    self.error_at(tok.span, "duplicate `env` declaration");
                }
            }
            TokenKind::KwInit => {
                self.bump();
                self.expect(TokenKind::LBracket, "after `init`")?;
                let mut values = Vec::new();
                if self.peek().kind != TokenKind::RBracket {
                    values.push(self.number("in the `init` vector")?);
                    while self.eat(TokenKind::Comma).is_some() {
                        values.push(self.number("in the `init` vector")?);
                    }
                }
                let close = self.expect(TokenKind::RBracket, "closing the `init` vector")?;
                sc.inits.push(InitDecl {
                    values,
                    span: tok.span.to(close.span),
                });
            }
            TokenKind::KwActions => {
                self.bump();
                let agent = self.ident("naming the agent after `actions`")?;
                self.expect(TokenKind::Colon, "after the agent name")?;
                let actions = self.ident_list("in the action list")?;
                let end = actions.last().map_or(agent.span, |a| a.span);
                sc.actions.push(ActionsDecl {
                    agent,
                    actions,
                    span: tok.span.to(end),
                });
            }
            TokenKind::KwLocal => {
                self.bump();
                let agent = self.ident("naming the agent after `local`")?;
                self.expect(TokenKind::Colon, "after the agent name")?;
                let props = self.ident_list("in the local proposition list")?;
                let end = props.last().map_or(agent.span, |p| p.span);
                sc.locals.push(LocalDecl {
                    agent,
                    props,
                    span: tok.span.to(end),
                });
            }
            TokenKind::KwObs => {
                self.bump();
                let agent = self.ident("naming the agent after `obs`")?;
                self.expect(TokenKind::Assign, "after the agent name")?;
                let expr = self.expr()?;
                let span = tok.span.to(expr.span());
                sc.obs.push(ObsDecl { agent, expr, span });
            }
            TokenKind::KwProp => {
                self.bump();
                let name = self.ident("naming the proposition after `prop`")?;
                self.expect(TokenKind::Assign, "after the proposition name")?;
                let expr = self.expr()?;
                let span = tok.span.to(expr.span());
                sc.props.push(PropDecl { name, expr, span });
            }
            TokenKind::KwTransition => {
                self.bump();
                let decl = self.transition_block(tok.span)?;
                if sc.transition.is_none() {
                    sc.transition = Some(decl);
                } else {
                    self.error_at(tok.span, "duplicate `transition` block");
                }
            }
            TokenKind::KwProgram => {
                self.bump();
                let agent = self.ident("naming the agent after `program`")?;
                let decl = self.program_block(tok.span, agent)?;
                sc.programs.push(decl);
            }
            _ => {
                self.error_at(
                    tok.span,
                    format!("expected a declaration, found {}", describe(tok.kind)),
                );
                return Err(());
            }
        }
        Ok(())
    }

    fn transition_block(&mut self, start: Span) -> PResult<TransitionDecl> {
        self.expect(TokenKind::LBrace, "opening the `transition` block")?;
        let mut updates = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::RBrace | TokenKind::Eof => break,
                TokenKind::Ident => {
                    let var_tok = self.bump();
                    let var = Ident::new(self.text(var_tok), var_tok.span);
                    if self
                        .expect(TokenKind::Assign, "after the register name")
                        .is_err()
                    {
                        self.sync_in_block();
                        continue;
                    }
                    match self.expr() {
                        Ok(expr) => {
                            let span = var.span.to(expr.span());
                            updates.push(UpdateDecl { var, expr, span });
                        }
                        Err(()) => self.sync_in_block(),
                    }
                }
                other => {
                    let tok = self.bump();
                    self.error_at(
                        tok.span,
                        format!(
                            "expected a register update or `}}` in `transition`, found {}",
                            describe(other)
                        ),
                    );
                    self.sync_in_block();
                }
            }
        }
        let close = self.expect(TokenKind::RBrace, "closing the `transition` block")?;
        Ok(TransitionDecl {
            updates,
            span: start.to(close.span),
        })
    }

    /// Recovery inside a braced block: skip to the next plausible entry
    /// start (`identifier`, `case`, `default`) or the closing brace.
    fn sync_in_block(&mut self) {
        use TokenKind::*;
        while !matches!(self.peek().kind, RBrace | Eof | Ident | KwCase | KwDefault) {
            self.bump();
        }
    }

    fn program_block(&mut self, start: Span, agent: Ident) -> PResult<ProgramDecl> {
        self.expect(TokenKind::LBrace, "opening the `program` body")?;
        let mut cases = Vec::new();
        let mut default = None;
        loop {
            match self.peek().kind {
                TokenKind::RBrace | TokenKind::Eof => break,
                TokenKind::KwCase => {
                    let case_kw = self.bump();
                    let guard = match self.guard() {
                        Ok(g) => g,
                        Err(()) => {
                            self.sync_case();
                            continue;
                        }
                    };
                    if self.expect(TokenKind::KwDo, "after the guard").is_err() {
                        self.sync_case();
                        continue;
                    }
                    match self.ident("naming the action after `do`") {
                        Ok(action) => {
                            let span = case_kw.span.to(action.span);
                            cases.push(CaseDecl {
                                guard,
                                action,
                                span,
                            });
                        }
                        Err(()) => self.sync_case(),
                    }
                }
                TokenKind::KwDefault => {
                    let kw = self.bump();
                    match self.ident("naming the action after `default`") {
                        Ok(action) => {
                            if default.is_none() {
                                default = Some(action);
                            } else {
                                self.error_at(
                                    kw.span.to(action.span),
                                    "duplicate `default` in this program",
                                );
                            }
                        }
                        Err(()) => self.sync_case(),
                    }
                }
                other => {
                    let tok = self.bump();
                    self.error_at(
                        tok.span,
                        format!(
                            "expected `case`, `default` or `}}` in `program`, found {}",
                            describe(other)
                        ),
                    );
                    self.sync_case();
                }
            }
        }
        let close = self.expect(TokenKind::RBrace, "closing the `program` body")?;
        Ok(ProgramDecl {
            agent,
            cases,
            default,
            span: start.to(close.span),
        })
    }

    fn sync_case(&mut self) {
        use TokenKind::*;
        while !matches!(self.peek().kind, RBrace | Eof | KwCase | KwDefault) {
            self.bump();
        }
    }

    // ---- integer expressions ----------------------------------------------
    //
    // Rust precedence, loosest first: if-then-else, `||`, `&&`,
    // comparison (single, non-associative), `|`, `^`, `&`, `<< >>`,
    // `+ -`, `*`, unary `!`, primary.

    fn expr(&mut self) -> PResult<Expr> {
        if self.peek().kind == TokenKind::KwIf {
            let kw = self.bump();
            let cond = self.expr()?;
            self.expect(TokenKind::KwThen, "after the condition")?;
            let then = self.expr()?;
            self.expect(TokenKind::KwElse, "after the `then` branch")?;
            let els = self.expr()?;
            let span = kw.span.to(els.span());
            return Ok(Expr::If(
                Box::new(cond),
                Box::new(then),
                Box::new(els),
                span,
            ));
        }
        self.expr_or()
    }

    fn bin_chain(
        &mut self,
        next: fn(&mut Self) -> PResult<Expr>,
        op_of: fn(TokenKind) -> Option<BinOp>,
    ) -> PResult<Expr> {
        let mut lhs = next(self)?;
        while let Some(op) = op_of(self.peek().kind) {
            self.bump();
            let rhs = next(self)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn expr_or(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_and, |k| {
            (k == TokenKind::PipePipe).then_some(BinOp::Or)
        })
    }

    fn expr_and(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_cmp, |k| {
            (k == TokenKind::AmpAmp).then_some(BinOp::And)
        })
    }

    fn expr_cmp(&mut self) -> PResult<Expr> {
        let lhs = self.expr_bitor()?;
        let op = match self.peek().kind {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr_bitor()?;
        let span = lhs.span().to(rhs.span());
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs), span))
    }

    fn expr_bitor(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_bitxor, |k| {
            (k == TokenKind::Pipe).then_some(BinOp::BitOr)
        })
    }

    fn expr_bitxor(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_bitand, |k| {
            (k == TokenKind::Caret).then_some(BinOp::BitXor)
        })
    }

    fn expr_bitand(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_shift, |k| {
            (k == TokenKind::Amp).then_some(BinOp::BitAnd)
        })
    }

    fn expr_shift(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_add, |k| match k {
            TokenKind::Shl => Some(BinOp::Shl),
            TokenKind::Shr => Some(BinOp::Shr),
            _ => None,
        })
    }

    fn expr_add(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_mul, |k| match k {
            TokenKind::Plus => Some(BinOp::Add),
            TokenKind::Minus => Some(BinOp::Sub),
            _ => None,
        })
    }

    fn expr_mul(&mut self) -> PResult<Expr> {
        self.bin_chain(Self::expr_unary, |k| {
            (k == TokenKind::Star).then_some(BinOp::Mul)
        })
    }

    fn expr_unary(&mut self) -> PResult<Expr> {
        if self.peek().kind == TokenKind::Bang {
            let bang = self.bump();
            let inner = self.expr_unary()?;
            let span = bang.span.to(inner.span());
            return Ok(Expr::Not(Box::new(inner), span));
        }
        self.expr_primary()
    }

    fn expr_primary(&mut self) -> PResult<Expr> {
        let tok = self.peek();
        match tok.kind {
            TokenKind::Number => {
                let (v, span) = self.number("in the expression")?;
                Ok(Expr::Num(v, span))
            }
            TokenKind::Ident => {
                let t = self.bump();
                Ok(Expr::Var(Ident::new(self.text(t), t.span)))
            }
            TokenKind::KwEnv => {
                let t = self.bump();
                Ok(Expr::Env(t.span))
            }
            TokenKind::KwAct => {
                let kw = self.bump();
                self.expect(TokenKind::LParen, "after `act`")?;
                let agent = self.ident("naming the agent inside `act(…)`")?;
                let close = self.expect(TokenKind::RParen, "closing `act(…)`")?;
                Ok(Expr::Act(agent, kw.span.to(close.span)))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen, "closing the parenthesized expression")?;
                Ok(inner)
            }
            other => {
                self.error_at(
                    tok.span,
                    format!("expected an expression, found {}", describe(other)),
                );
                Err(())
            }
        }
    }

    // ---- guard formulas ---------------------------------------------------
    //
    // Mirrors kbp_logic::parse: iff := implies (`<->` iff)?; implies :=
    // or (`->` implies)?; or := and ((`|`|`||`) and)* flattened; and :=
    // until ((`&`|`&&`) until)* flattened; until := unary (`U` until)?;
    // unary := `!` | K{a} | E/C/D{a,…} | X/F/G | true | false | prop |
    // parens. The modal letters are ordinary identifiers recognized
    // positionally.

    fn guard(&mut self) -> PResult<Guard> {
        self.guard_iff()
    }

    fn guard_iff(&mut self) -> PResult<Guard> {
        let lhs = self.guard_implies()?;
        if self.eat(TokenKind::DArrow).is_some() {
            let rhs = self.guard_iff()?;
            let span = lhs.span().to(rhs.span());
            return Ok(Guard::Iff(Box::new(lhs), Box::new(rhs), span));
        }
        Ok(lhs)
    }

    fn guard_implies(&mut self) -> PResult<Guard> {
        let lhs = self.guard_or()?;
        if self.eat(TokenKind::Arrow).is_some() {
            let rhs = self.guard_implies()?;
            let span = lhs.span().to(rhs.span());
            return Ok(Guard::Implies(Box::new(lhs), Box::new(rhs), span));
        }
        Ok(lhs)
    }

    fn guard_or(&mut self) -> PResult<Guard> {
        let first = self.guard_and()?;
        let mut items = vec![first];
        while matches!(self.peek().kind, TokenKind::Pipe | TokenKind::PipePipe) {
            self.bump();
            items.push(self.guard_and()?);
        }
        if items.len() == 1 {
            return Ok(items.pop().unwrap_or(Guard::True(Span::default())));
        }
        let span = items[0].span().to(items[items.len() - 1].span());
        Ok(Guard::Or(items, span))
    }

    fn guard_and(&mut self) -> PResult<Guard> {
        let first = self.guard_until()?;
        let mut items = vec![first];
        while matches!(self.peek().kind, TokenKind::Amp | TokenKind::AmpAmp) {
            self.bump();
            items.push(self.guard_until()?);
        }
        if items.len() == 1 {
            return Ok(items.pop().unwrap_or(Guard::True(Span::default())));
        }
        let span = items[0].span().to(items[items.len() - 1].span());
        Ok(Guard::And(items, span))
    }

    fn guard_until(&mut self) -> PResult<Guard> {
        let lhs = self.guard_unary()?;
        if self.peek().kind == TokenKind::Ident && self.text(self.peek()) == "U" {
            self.bump();
            let rhs = self.guard_until()?;
            let span = lhs.span().to(rhs.span());
            return Ok(Guard::Until(Box::new(lhs), Box::new(rhs), span));
        }
        Ok(lhs)
    }

    fn guard_unary(&mut self) -> PResult<Guard> {
        let tok = self.peek();
        match tok.kind {
            TokenKind::Bang => {
                self.bump();
                let inner = self.guard_unary()?;
                let span = tok.span.to(inner.span());
                Ok(Guard::Not(Box::new(inner), span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Guard::True(tok.span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Guard::False(tok.span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.guard()?;
                self.expect(TokenKind::RParen, "closing the parenthesized guard")?;
                Ok(inner)
            }
            TokenKind::Ident => {
                let text = self.text(tok);
                match text {
                    "K" if self.peek2().kind == TokenKind::LBrace => {
                        self.bump();
                        self.bump();
                        let agent = self.ident("naming the agent in `K{…}`")?;
                        self.expect(TokenKind::RBrace, "closing `K{…}`")?;
                        let inner = self.guard_unary()?;
                        let span = tok.span.to(inner.span());
                        Ok(Guard::Knows(agent, Box::new(inner), span))
                    }
                    "E" | "C" | "D" if self.peek2().kind == TokenKind::LBrace => {
                        let op = match text {
                            "E" => GroupOp::Everyone,
                            "C" => GroupOp::Common,
                            _ => GroupOp::Distributed,
                        };
                        self.bump();
                        self.bump();
                        let agents = self.ident_list("in the agent group")?;
                        self.expect(TokenKind::RBrace, "closing the agent group")?;
                        let inner = self.guard_unary()?;
                        let span = tok.span.to(inner.span());
                        Ok(Guard::Group(op, agents, Box::new(inner), span))
                    }
                    "X" | "F" | "G" => {
                        self.bump();
                        let inner = self.guard_unary()?;
                        let span = tok.span.to(inner.span());
                        Ok(match text {
                            "X" => Guard::Next(Box::new(inner), span),
                            "F" => Guard::Eventually(Box::new(inner), span),
                            _ => Guard::Always(Box::new(inner), span),
                        })
                    }
                    _ => {
                        self.bump();
                        Ok(Guard::Prop(Ident::new(text, tok.span)))
                    }
                }
            }
            other => {
                self.error_at(
                    tok.span,
                    format!("expected a guard, found {}", describe(other)),
                );
                Err(())
            }
        }
    }
}

fn push_single<T>(
    diags: &mut Vec<Diagnostic>,
    existing: Option<(T, Span)>,
    new: (T, Span),
    at: Span,
    what: &str,
) -> Option<(T, Span)> {
    if existing.is_some() {
        diags.push(Diagnostic::error(
            at,
            format!("duplicate `{what}` declaration"),
        ));
        existing
    } else {
        Some(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::print_guard;
    use crate::diag::has_errors;

    const SMALL: &str = "
scenario tiny {
  horizon 3
  recall perfect
  agents a, b
  vars x
  init [0]
  init [1]
  actions a: stay, move
  actions b: wait
  obs a = x
  obs b = 0
  prop set = x == 1
  local a: set
  transition {
    x = if act(a) == move then 1 else x
  }
  program a {
    case K{a} set do move
    default stay
  }
  program b {
    default wait
  }
}
";

    #[test]
    fn parses_a_small_scenario() {
        let (sc, diags) = parse(SMALL);
        assert!(diags.is_empty(), "{diags:?}");
        let sc = sc.expect("scenario");
        assert_eq!(sc.name.text, "tiny");
        assert_eq!(sc.horizon.map(|h| h.0), Some(3));
        assert_eq!(sc.agents.len(), 2);
        assert_eq!(sc.inits.len(), 2);
        assert_eq!(sc.programs.len(), 2);
        assert_eq!(sc.programs[0].cases.len(), 1);
        assert_eq!(print_guard(&sc.programs[0].cases[0].guard), "K{a} set");
    }

    #[test]
    fn guard_precedence_matches_logic_parser() {
        let (sc, diags) = parse("scenario g { program a { case p | q & K{a} r -> s do m } }");
        assert!(diags.is_empty(), "{diags:?}");
        let sc = sc.expect("scenario");
        assert_eq!(
            print_guard(&sc.programs[0].cases[0].guard),
            "p | q & K{a} r -> s"
        );
    }

    #[test]
    fn or_and_chains_flatten() {
        let (sc, diags) = parse("scenario g { program a { case p | q | r do m } }");
        assert!(diags.is_empty(), "{diags:?}");
        let sc = sc.expect("scenario");
        match &sc.programs[0].cases[0].guard {
            Guard::Or(items, _) => assert_eq!(items.len(), 3),
            g => panic!("expected flattened Or, got {g:?}"),
        }
    }

    #[test]
    fn expr_precedence_is_rust_like() {
        let (sc, diags) = parse("scenario g { obs a = 1 + 2 * 3 << 1 & 7 }");
        assert!(diags.is_empty(), "{diags:?}");
        let sc = sc.expect("scenario");
        // ((1 + (2*3)) << 1) & 7
        assert_eq!(
            crate::ast::print_expr(&sc.obs[0].expr),
            "1 + 2 * 3 << 1 & 7"
        );
        match &sc.obs[0].expr {
            Expr::Bin(BinOp::BitAnd, ..) => {}
            e => panic!("expected & at top, got {e:?}"),
        }
    }

    #[test]
    fn recovers_and_reports_multiple_errors() {
        let src = "
scenario broken {
  horizon oops
  agents a
  obs a = @@@
  prop p =
  program a { default }
}
";
        let (sc, diags) = parse(src);
        assert!(sc.is_some());
        assert!(has_errors(&diags));
        assert!(diags.len() >= 3, "{diags:?}");
        // The well-formed declaration before the errors survived.
        assert_eq!(sc.map(|s| s.agents.len()), Some(1));
    }

    #[test]
    fn duplicate_top_level_declarations_are_reported() {
        let (_, diags) = parse("scenario d { horizon 1 horizon 2 vars x vars y }");
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.message.contains("duplicate"))
                .count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn totally_parses_garbage() {
        for src in ["", "scenario", "}}}{{{", "scenario x {", "\u{0}\u{1}\u{2}"] {
            let (_, _) = parse(src); // must not panic
        }
    }
}
