//! `kbpc` — check `.kbp` scenario files and print span-formatted
//! diagnostics.
//!
//! Usage: `kbpc <file.kbp>…`
//!
//! Each diagnostic is printed as `path:line:col: severity: message`
//! followed by the offending source line with a caret underline. The
//! exit status is 0 when every file is clean, 1 when any diagnostic
//! (error *or* warning) was reported, and 2 on usage or I/O problems —
//! so CI can gate on a wildcard over the examples directory.

use kbp_lang::{analyze, parse, LineMap};

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: kbpc <file.kbp>...");
        std::process::exit(2);
    }
    let mut findings = 0usize;
    let mut failures = 0usize;
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failures += 1;
                continue;
            }
        };
        let (scenario, mut diags) = parse(&src);
        if let Some(sc) = &scenario {
            analyze(sc, &mut diags);
        }
        diags.sort_by_key(|d| (d.span.start, d.span.end));
        let map = LineMap::new(&src);
        for d in &diags {
            println!("{path}:{}", d.render(&src, &map));
        }
        if diags.is_empty() {
            let name = scenario.map_or_else(String::new, |sc| sc.name.text);
            println!("{path}: ok (scenario `{name}`)");
        } else {
            findings += diags.len();
        }
    }
    if failures > 0 {
        std::process::exit(2);
    }
    if findings > 0 {
        std::process::exit(1);
    }
}
