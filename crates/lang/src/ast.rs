//! The span-carrying AST of a `.kbp` scenario, plus the canonical
//! pretty-printer (`to_source`) the round-trip property tests rely on:
//! `parse(s.to_source())` must succeed and print back byte-identically.

use crate::span::Span;
use std::fmt::Write as _;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Where it appears.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier (tests and generators use a default span).
    #[must_use]
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Ident {
            text: text.into(),
            span,
        }
    }
}

/// Local-state evolution declared by `recall`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecallKind {
    /// `recall perfect` (the default): local state = observation history.
    #[default]
    Perfect,
    /// `recall observational`: local state = current observation.
    Observational,
}

/// A whole scenario: one context plus one knowledge-based program per
/// agent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Scenario {
    /// The scenario name (the wire name a `define` registers).
    pub name: Ident,
    /// Span of the whole `scenario … { … }` block.
    pub span: Span,
    /// `horizon N` — the default solve horizon.
    pub horizon: Option<(u64, Span)>,
    /// `recall perfect|observational`.
    pub recall: Option<(RecallKind, Span)>,
    /// `agents a, b, …` — declaration order is agent-id order.
    pub agents: Vec<Ident>,
    /// `vars x, y, …` — declaration order is register order.
    pub vars: Vec<Ident>,
    /// `init [v, …]` lines — declaration order is initial-state order.
    pub inits: Vec<InitDecl>,
    /// `env e, f, …` — environment action names (empty: one inert
    /// unnamed move).
    pub env_actions: Vec<Ident>,
    /// `actions agent: a, b, …` lines.
    pub actions: Vec<ActionsDecl>,
    /// `obs agent = expr` lines.
    pub obs: Vec<ObsDecl>,
    /// `prop name = expr` lines — declaration order is proposition-id
    /// order; the proposition holds where the expression is nonzero.
    pub props: Vec<PropDecl>,
    /// `local agent: p, q` lines — propositions usable bare in that
    /// agent's guards.
    pub locals: Vec<LocalDecl>,
    /// The `transition { var = expr … }` block (all right-hand sides
    /// read the pre-step state; unassigned vars keep their value).
    pub transition: Option<TransitionDecl>,
    /// `program agent { case … default … }` blocks.
    pub programs: Vec<ProgramDecl>,
}

/// One `init [v, …]` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitDecl {
    /// The register values, in `vars` order.
    pub values: Vec<(u64, Span)>,
    /// Span of the whole line.
    pub span: Span,
}

/// One `actions agent: a, b, …` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionsDecl {
    /// Whose repertoire this is.
    pub agent: Ident,
    /// Action names; list order is `ActionId` order.
    pub actions: Vec<Ident>,
    /// Span of the whole line.
    pub span: Span,
}

/// One `obs agent = expr` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsDecl {
    /// Whose observation this is.
    pub agent: Ident,
    /// The observation value (a function of the global state only).
    pub expr: Expr,
    /// Span of the whole line.
    pub span: Span,
}

/// One `prop name = expr` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropDecl {
    /// The proposition name.
    pub name: Ident,
    /// Holds where this evaluates nonzero (a function of the global
    /// state only).
    pub expr: Expr,
    /// Span of the whole line.
    pub span: Span,
}

/// One `local agent: p, q` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDecl {
    /// The agent the propositions are local to.
    pub agent: Ident,
    /// The propositions.
    pub props: Vec<Ident>,
    /// Span of the whole line.
    pub span: Span,
}

/// The `transition { … }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionDecl {
    /// Simultaneous register updates.
    pub updates: Vec<UpdateDecl>,
    /// Span of the whole block.
    pub span: Span,
}

/// One `var = expr` update inside `transition`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateDecl {
    /// The register being assigned.
    pub var: Ident,
    /// Its next value (reads pre-step state, `act(…)` and `env`).
    pub expr: Expr,
    /// Span of the whole update.
    pub span: Span,
}

/// One `program agent { … }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramDecl {
    /// Whose program this is.
    pub agent: Ident,
    /// The guarded cases, in declaration order.
    pub cases: Vec<CaseDecl>,
    /// `default action` — performed when no guard holds (first
    /// repertoire action if omitted).
    pub default: Option<Ident>,
    /// Span of the whole block.
    pub span: Span,
}

/// One `case guard do action` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseDecl {
    /// The knowledge test.
    pub guard: Guard,
    /// The action performed when the guard holds.
    pub action: Ident,
    /// Span of the whole case.
    pub span: Span,
}

/// Binary integer operators, in Rust precedence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `*`
    Mul,
    /// `+`
    Add,
    /// `-` (wrapping)
    Sub,
    /// `<<` (zero past 63)
    Shl,
    /// `>>` (zero past 63)
    Shr,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
    /// `==` (yields 0/1)
    Eq,
    /// `!=` (yields 0/1)
    Ne,
    /// `<` (yields 0/1)
    Lt,
    /// `<=` (yields 0/1)
    Le,
    /// `>` (yields 0/1)
    Gt,
    /// `>=` (yields 0/1)
    Ge,
    /// `&&` (on nonzero-ness, yields 0/1)
    And,
    /// `||` (on nonzero-ness, yields 0/1)
    Or,
}

impl BinOp {
    /// The surface spelling.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Mul => "*",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitXor => "^",
            BinOp::BitOr => "|",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding strength: higher binds tighter (mirrors Rust).
    #[must_use]
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Mul => 9,
            BinOp::Add | BinOp::Sub => 8,
            BinOp::Shl | BinOp::Shr => 7,
            BinOp::BitAnd => 6,
            BinOp::BitXor => 5,
            BinOp::BitOr => 4,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::And => 2,
            BinOp::Or => 1,
        }
    }
}

/// An integer expression over the global state. Evaluation is in `u64`
/// with wrapping arithmetic; comparisons and logical operators yield
/// 0/1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Num(u64, Span),
    /// A state register, by `vars` name.
    Var(Ident),
    /// `act(agent)` — the agent's chosen action this step (transition
    /// expressions only). Compared with `==`/`!=` against an action
    /// name of that agent.
    Act(Ident, Span),
    /// `env` — the environment's move this step (transition expressions
    /// only). Compared against an `env` action name.
    Env(Span),
    /// `!e` — logical negation (0 ↦ 1, nonzero ↦ 0).
    Not(Box<Expr>, Span),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>, Span),
    /// `if c then a else b`.
    If(Box<Expr>, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The source span of the expression.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s) | Expr::Act(_, s) | Expr::Env(s) => *s,
            Expr::Var(i) => i.span,
            Expr::Not(_, s) | Expr::Bin(_, _, _, s) | Expr::If(_, _, _, s) => *s,
        }
    }
}

/// Group modalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupOp {
    /// `E{…}` — everyone knows.
    Everyone,
    /// `C{…}` — common knowledge.
    Common,
    /// `D{…}` — distributed knowledge.
    Distributed,
}

impl GroupOp {
    /// The surface letter.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            GroupOp::Everyone => 'E',
            GroupOp::Common => 'C',
            GroupOp::Distributed => 'D',
        }
    }
}

/// A guard formula — the epistemic/temporal test of a `case`. The
/// grammar and precedence mirror `kbp_logic::parse` exactly, so lowered
/// guards are structurally identical to hand-built ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// `true`.
    True(Span),
    /// `false`.
    False(Span),
    /// A proposition, by `prop` name.
    Prop(Ident),
    /// `!g`.
    Not(Box<Guard>, Span),
    /// `g & g & …` (flattened, ≥ 2 items).
    And(Vec<Guard>, Span),
    /// `g | g | …` (flattened, ≥ 2 items).
    Or(Vec<Guard>, Span),
    /// `g -> g` (right-associative).
    Implies(Box<Guard>, Box<Guard>, Span),
    /// `g <-> g` (right-associative).
    Iff(Box<Guard>, Box<Guard>, Span),
    /// `K{agent} g`.
    Knows(Ident, Box<Guard>, Span),
    /// `E{…} g`, `C{…} g` or `D{…} g`.
    Group(GroupOp, Vec<Ident>, Box<Guard>, Span),
    /// `X g`.
    Next(Box<Guard>, Span),
    /// `F g`.
    Eventually(Box<Guard>, Span),
    /// `G g`.
    Always(Box<Guard>, Span),
    /// `g U g` (right-associative).
    Until(Box<Guard>, Box<Guard>, Span),
}

impl Guard {
    /// The source span of the guard.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Guard::True(s) | Guard::False(s) => *s,
            Guard::Prop(i) => i.span,
            Guard::Not(_, s)
            | Guard::And(_, s)
            | Guard::Or(_, s)
            | Guard::Implies(_, _, s)
            | Guard::Iff(_, _, s)
            | Guard::Knows(_, _, s)
            | Guard::Group(_, _, _, s)
            | Guard::Next(_, s)
            | Guard::Eventually(_, s)
            | Guard::Always(_, s)
            | Guard::Until(_, _, s) => *s,
        }
    }

    /// Whether the guard contains any temporal operator.
    #[must_use]
    pub fn has_temporal(&self) -> bool {
        match self {
            Guard::True(_) | Guard::False(_) | Guard::Prop(_) => false,
            Guard::Next(..) | Guard::Eventually(..) | Guard::Always(..) | Guard::Until(..) => true,
            Guard::Not(g, _) | Guard::Knows(_, g, _) | Guard::Group(_, _, g, _) => g.has_temporal(),
            Guard::And(items, _) | Guard::Or(items, _) => items.iter().any(Guard::has_temporal),
            Guard::Implies(a, b, _) | Guard::Iff(a, b, _) => a.has_temporal() || b.has_temporal(),
        }
    }

    /// Structural equality ignoring spans — the analyzer's notion of a
    /// duplicate case.
    #[must_use]
    pub fn same_shape(&self, other: &Guard) -> bool {
        fn idents_eq(a: &[Ident], b: &[Ident]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.text == y.text)
        }
        match (self, other) {
            (Guard::True(_), Guard::True(_)) | (Guard::False(_), Guard::False(_)) => true,
            (Guard::Prop(a), Guard::Prop(b)) => a.text == b.text,
            (Guard::Not(a, _), Guard::Not(b, _))
            | (Guard::Next(a, _), Guard::Next(b, _))
            | (Guard::Eventually(a, _), Guard::Eventually(b, _))
            | (Guard::Always(a, _), Guard::Always(b, _)) => a.same_shape(b),
            (Guard::And(a, _), Guard::And(b, _)) | (Guard::Or(a, _), Guard::Or(b, _)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same_shape(y))
            }
            (Guard::Implies(a1, a2, _), Guard::Implies(b1, b2, _))
            | (Guard::Iff(a1, a2, _), Guard::Iff(b1, b2, _))
            | (Guard::Until(a1, a2, _), Guard::Until(b1, b2, _)) => {
                a1.same_shape(b1) && a2.same_shape(b2)
            }
            (Guard::Knows(a, g, _), Guard::Knows(b, h, _)) => a.text == b.text && g.same_shape(h),
            (Guard::Group(o1, g1, f1, _), Guard::Group(o2, g2, f2, _)) => {
                o1 == o2 && idents_eq(g1, g2) && f1.same_shape(f2)
            }
            _ => false,
        }
    }
}

// ---- pretty printer -------------------------------------------------------

fn comma_idents(out: &mut String, idents: &[Ident]) {
    for (i, id) in idents.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&id.text);
    }
}

impl Scenario {
    /// Renders the scenario in canonical concrete syntax. Reparsing the
    /// result yields a scenario that prints identically (the round-trip
    /// property).
    #[must_use]
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scenario {} {{", self.name.text);
        if let Some((h, _)) = self.horizon {
            let _ = writeln!(out, "  horizon {h}");
        }
        if let Some((r, _)) = self.recall {
            let word = match r {
                RecallKind::Perfect => "perfect",
                RecallKind::Observational => "observational",
            };
            let _ = writeln!(out, "  recall {word}");
        }
        if !self.agents.is_empty() {
            out.push_str("  agents ");
            comma_idents(&mut out, &self.agents);
            out.push('\n');
        }
        if !self.vars.is_empty() {
            out.push_str("  vars ");
            comma_idents(&mut out, &self.vars);
            out.push('\n');
        }
        if !self.env_actions.is_empty() {
            out.push_str("  env ");
            comma_idents(&mut out, &self.env_actions);
            out.push('\n');
        }
        for init in &self.inits {
            out.push_str("  init [");
            for (i, (v, _)) in init.values.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("]\n");
        }
        for a in &self.actions {
            let _ = write!(out, "  actions {}: ", a.agent.text);
            comma_idents(&mut out, &a.actions);
            out.push('\n');
        }
        for o in &self.obs {
            let _ = writeln!(out, "  obs {} = {}", o.agent.text, print_expr(&o.expr));
        }
        for p in &self.props {
            let _ = writeln!(out, "  prop {} = {}", p.name.text, print_expr(&p.expr));
        }
        for l in &self.locals {
            let _ = write!(out, "  local {}: ", l.agent.text);
            comma_idents(&mut out, &l.props);
            out.push('\n');
        }
        if let Some(t) = &self.transition {
            out.push_str("  transition {\n");
            for u in &t.updates {
                let _ = writeln!(out, "    {} = {}", u.var.text, print_expr(&u.expr));
            }
            out.push_str("  }\n");
        }
        for p in &self.programs {
            let _ = writeln!(out, "  program {} {{", p.agent.text);
            for c in &p.cases {
                let _ = writeln!(
                    out,
                    "    case {} do {}",
                    print_guard(&c.guard),
                    c.action.text
                );
            }
            if let Some(d) = &p.default {
                let _ = writeln!(out, "    default {}", d.text);
            }
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Renders an expression, parenthesizing exactly where reparsing needs
/// it.
#[must_use]
pub fn print_expr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0);
    out
}

fn write_expr(out: &mut String, e: &Expr, min_prec: u8) {
    match e {
        Expr::Num(v, _) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(id) => out.push_str(&id.text),
        Expr::Act(agent, _) => {
            let _ = write!(out, "act({})", agent.text);
        }
        Expr::Env(_) => out.push_str("env"),
        Expr::Not(inner, _) => {
            out.push('!');
            write_expr(out, inner, 10);
        }
        Expr::Bin(op, a, b, _) => {
            let prec = op.precedence();
            let paren = prec < min_prec;
            if paren {
                out.push('(');
            }
            // Comparisons are non-associative: a nested comparison on
            // either side needs parentheses. Everything else is
            // left-associative, so only the right operand must bind
            // strictly tighter.
            let cmp = matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            );
            write_expr(out, a, if cmp { prec + 1 } else { prec });
            let _ = write!(out, " {} ", op.symbol());
            write_expr(out, b, prec + 1);
            if paren {
                out.push(')');
            }
        }
        Expr::If(c, a, b, _) => {
            let paren = min_prec > 0;
            if paren {
                out.push('(');
            }
            out.push_str("if ");
            write_expr(out, c, 0);
            out.push_str(" then ");
            write_expr(out, a, 0);
            out.push_str(" else ");
            write_expr(out, b, 0);
            if paren {
                out.push(')');
            }
        }
    }
}

/// Renders a guard in the same concrete syntax `kbp_logic::parse` uses.
#[must_use]
pub fn print_guard(g: &Guard) -> String {
    let mut out = String::new();
    write_guard(&mut out, g, 0);
    out
}

// Guard precedence levels: 1 iff, 2 implies, 3 or, 4 and, 5 until, 6 unary.
fn write_guard(out: &mut String, g: &Guard, min_prec: u8) {
    let prec = match g {
        Guard::Iff(..) => 1,
        Guard::Implies(..) => 2,
        Guard::Or(..) => 3,
        Guard::And(..) => 4,
        Guard::Until(..) => 5,
        _ => 6,
    };
    let paren = prec < min_prec;
    if paren {
        out.push('(');
    }
    match g {
        Guard::True(_) => out.push_str("true"),
        Guard::False(_) => out.push_str("false"),
        Guard::Prop(id) => out.push_str(&id.text),
        Guard::Not(inner, _) => {
            out.push('!');
            write_guard(out, inner, 6);
        }
        Guard::And(items, _) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(" & ");
                }
                write_guard(out, item, 5);
            }
        }
        Guard::Or(items, _) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_guard(out, item, 4);
            }
        }
        Guard::Implies(a, b, _) => {
            write_guard(out, a, 3);
            out.push_str(" -> ");
            write_guard(out, b, 2);
        }
        Guard::Iff(a, b, _) => {
            write_guard(out, a, 2);
            out.push_str(" <-> ");
            write_guard(out, b, 1);
        }
        Guard::Knows(agent, inner, _) => {
            let _ = write!(out, "K{{{}}} ", agent.text);
            write_guard(out, inner, 6);
        }
        Guard::Group(op, agents, inner, _) => {
            out.push(op.letter());
            out.push('{');
            for (i, a) in agents.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&a.text);
            }
            out.push_str("} ");
            write_guard(out, inner, 6);
        }
        Guard::Next(inner, _) => {
            out.push_str("X ");
            write_guard(out, inner, 6);
        }
        Guard::Eventually(inner, _) => {
            out.push_str("F ");
            write_guard(out, inner, 6);
        }
        Guard::Always(inner, _) => {
            out.push_str("G ");
            write_guard(out, inner, 6);
        }
        Guard::Until(a, b, _) => {
            write_guard(out, a, 6);
            out.push_str(" U ");
            write_guard(out, b, 5);
        }
    }
    if paren {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(t: &str) -> Ident {
        Ident::new(t, Span::default())
    }

    #[test]
    fn expr_printer_parenthesizes_only_where_needed() {
        // (a + b) * c
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var(id("a"))),
                Box::new(Expr::Var(id("b"))),
                Span::default(),
            )),
            Box::new(Expr::Var(id("c"))),
            Span::default(),
        );
        assert_eq!(print_expr(&e), "(a + b) * c");
        // a | b == 0  needs no parens (| is looser)… but == inside | does not.
        let f = Expr::Bin(
            BinOp::Eq,
            Box::new(Expr::Bin(
                BinOp::BitOr,
                Box::new(Expr::Var(id("a"))),
                Box::new(Expr::Var(id("b"))),
                Span::default(),
            )),
            Box::new(Expr::Num(0, Span::default())),
            Span::default(),
        );
        assert_eq!(print_expr(&f), "a | b == 0");
    }

    #[test]
    fn guard_printer_matches_logic_syntax() {
        let g = Guard::Not(
            Box::new(Guard::Knows(
                id("sender"),
                Box::new(Guard::Or(
                    vec![
                        Guard::Knows(id("r"), Box::new(Guard::Prop(id("bit"))), Span::default()),
                        Guard::Knows(
                            id("r"),
                            Box::new(Guard::Not(
                                Box::new(Guard::Prop(id("bit"))),
                                Span::default(),
                            )),
                            Span::default(),
                        ),
                    ],
                    Span::default(),
                )),
                Span::default(),
            )),
            Span::default(),
        );
        assert_eq!(print_guard(&g), "!K{sender} (K{r} bit | K{r} !bit)");
    }

    #[test]
    fn duplicate_detection_ignores_spans() {
        let a = Guard::Knows(
            Ident::new("x", Span::new(1, 2)),
            Box::new(Guard::Prop(Ident::new("p", Span::new(3, 4)))),
            Span::new(1, 4),
        );
        let b = Guard::Knows(
            Ident::new("x", Span::new(9, 10)),
            Box::new(Guard::Prop(Ident::new("p", Span::new(11, 12)))),
            Span::new(9, 12),
        );
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&Guard::Prop(id("p"))));
    }
}
