//! Semantic analysis of a parsed scenario.
//!
//! The analyzer reports **all** findings it can see in one pass over
//! the AST — unknown names, arity mismatches, duplicates, missing
//! declarations, misplaced `act`/`env`, duplicate cases, non-inert
//! defaults — each anchored to a source span. Two rules come straight
//! from the paper's treatment of knowledge-based programs:
//!
//! * **Synchrony condition.** In a synchronous context, a guard that
//!   refers to future time falls outside the unique-implementation
//!   theorem. A temporal operator *outside* any knowledge operator is
//!   an error (the guard is not even a knowledge test); *under* a
//!   knowledge operator it is a warning and marks the program
//!   non-solvable (enumeration still works).
//! * **Subjectivity.** Each agent's guards must be about that agent's
//!   own knowledge: bare propositions must be declared `local` to the
//!   agent, `K{i}`/`C`-groups must involve the agent itself.
//!
//! These deliberately mirror `kbp_core`'s `validate` checks so that a
//! scenario passing analysis lowers into a program the solver accepts.

use crate::ast::{Expr, GroupOp, Guard, Ident, ProgramDecl, Scenario};
use crate::diag::Diagnostic;
use crate::span::Span;
use std::collections::{HashMap, HashSet};

/// Maximum number of agents (mirrors `kbp_logic::Agent::MAX_AGENTS`).
pub const MAX_AGENTS: usize = 64;

/// What the analyzer learned beyond pass/fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Analysis {
    /// Whether the fixed-point solver applies. `false` when any guard
    /// refers to future time (even under a knowledge operator): the
    /// program is outside the unique-implementation theorem and must be
    /// enumerated instead.
    pub solvable: bool,
}

/// Where an integer expression is being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExprCtx {
    /// `obs`/`prop` right-hand sides: functions of the global state.
    State,
    /// `transition` right-hand sides: may also read `act(…)` and `env`.
    Transition,
}

/// Checks a parsed scenario, appending findings to `diags`. Returns
/// facts lowering needs. Call [`crate::diag::has_errors`] afterwards to
/// decide whether lowering is allowed.
pub fn analyze(sc: &Scenario, diags: &mut Vec<Diagnostic>) -> Analysis {
    let mut cx = Checker {
        sc,
        diags,
        agents: HashMap::new(),
        vars: HashSet::new(),
        props: HashSet::new(),
        env_actions: HashSet::new(),
        actions: HashMap::new(),
        locals: HashMap::new(),
        solvable: true,
    };
    cx.run();
    Analysis {
        solvable: cx.solvable,
    }
}

struct Checker<'a> {
    sc: &'a Scenario,
    diags: &'a mut Vec<Diagnostic>,
    agents: HashMap<&'a str, usize>,
    vars: HashSet<&'a str>,
    props: HashSet<&'a str>,
    env_actions: HashSet<&'a str>,
    /// Agent name → its action repertoire in declaration order.
    actions: HashMap<&'a str, Vec<&'a str>>,
    /// Agent name → propositions declared local to it.
    locals: HashMap<&'a str, HashSet<&'a str>>,
    solvable: bool,
}

impl<'a> Checker<'a> {
    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::error(span, msg));
    }

    fn warning(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::warning(span, msg));
    }

    fn run(&mut self) {
        self.collect_names();
        self.check_headline();
        self.check_inits();
        self.check_actions();
        self.check_obs();
        self.check_props();
        self.check_locals();
        self.check_transition();
        self.check_programs();
        self.check_coverage();
    }

    // ---- name tables ------------------------------------------------------

    fn collect_names(&mut self) {
        for (i, a) in self.sc.agents.iter().enumerate() {
            if self.agents.insert(&a.text, i).is_some() {
                self.error(a.span, format!("duplicate agent `{}`", a.text));
            }
        }
        for v in &self.sc.vars {
            if !self.vars.insert(&v.text) {
                self.error(v.span, format!("duplicate state var `{}`", v.text));
            }
        }
        for p in &self.sc.props {
            if !self.props.insert(&p.name.text) {
                self.error(
                    p.name.span,
                    format!("duplicate proposition `{}`", p.name.text),
                );
            }
        }
        for e in &self.sc.env_actions {
            if !self.env_actions.insert(&e.text) {
                self.error(e.span, format!("duplicate environment action `{}`", e.text));
            }
        }
    }

    fn known_agent(&mut self, id: &Ident, what: &str) -> bool {
        if self.agents.contains_key(id.text.as_str()) {
            true
        } else {
            self.error(id.span, format!("unknown agent `{}` {what}", id.text));
            false
        }
    }

    // ---- scenario-level checks --------------------------------------------

    fn check_headline(&mut self) {
        let at = self.sc.name.span;
        if self.sc.horizon.is_none() {
            self.error(at, "missing `horizon` declaration");
        }
        if self.sc.agents.is_empty() {
            self.error(at, "missing `agents` declaration");
        } else if self.sc.agents.len() > MAX_AGENTS {
            self.error(
                self.sc.agents[MAX_AGENTS].span,
                format!("too many agents (the limit is {MAX_AGENTS})"),
            );
        }
        if self.sc.vars.is_empty() {
            self.error(at, "missing `vars` declaration");
        }
        if self.sc.inits.is_empty() {
            self.error(
                at,
                "missing `init` declaration (at least one initial state)",
            );
        }
    }

    fn check_inits(&mut self) {
        let want = self.sc.vars.len();
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        for init in &self.sc.inits {
            if init.values.len() != want {
                self.error(
                    init.span,
                    format!(
                        "`init` vector has {} value(s) but {want} var(s) are declared",
                        init.values.len()
                    ),
                );
                continue;
            }
            for (v, vspan) in &init.values {
                if *v > u64::from(u32::MAX) {
                    self.error(*vspan, "initial value does not fit in a 32-bit register");
                }
            }
            let key: Vec<u64> = init.values.iter().map(|(v, _)| *v).collect();
            if !seen.insert(key) {
                self.error(init.span, "duplicate `init` state");
            }
        }
    }

    fn check_actions(&mut self) {
        for decl in &self.sc.actions {
            if !self.known_agent(&decl.agent, "in `actions`") {
                continue;
            }
            let agent = decl.agent.text.as_str();
            if self.actions.contains_key(agent) {
                self.error(
                    decl.agent.span,
                    format!("duplicate `actions` declaration for agent `{agent}`"),
                );
                continue;
            }
            let mut names = Vec::new();
            for a in &decl.actions {
                if names.contains(&a.text.as_str()) {
                    self.error(
                        a.span,
                        format!("duplicate action `{}` for agent `{agent}`", a.text),
                    );
                } else {
                    names.push(&a.text);
                }
            }
            self.actions.insert(agent, names);
        }
    }

    fn check_obs(&mut self) {
        let mut seen: HashSet<&str> = HashSet::new();
        for decl in &self.sc.obs {
            if self.known_agent(&decl.agent, "in `obs`") && !seen.insert(&decl.agent.text) {
                self.error(
                    decl.agent.span,
                    format!(
                        "duplicate `obs` declaration for agent `{}`",
                        decl.agent.text
                    ),
                );
            }
            self.check_expr(&decl.expr, ExprCtx::State);
        }
    }

    fn check_props(&mut self) {
        for decl in &self.sc.props {
            self.check_expr(&decl.expr, ExprCtx::State);
        }
    }

    fn check_locals(&mut self) {
        for decl in &self.sc.locals {
            if !self.known_agent(&decl.agent, "in `local`") {
                continue;
            }
            let entry = self.locals.entry(&decl.agent.text).or_default();
            let mut fresh: Vec<(&str, Span)> = Vec::new();
            for p in &decl.props {
                if entry.contains(p.text.as_str()) {
                    fresh.push((&p.text, p.span));
                    continue;
                }
                entry.insert(&p.text);
            }
            for (name, span) in fresh {
                self.error(
                    span,
                    format!(
                        "proposition `{name}` already declared local to `{}`",
                        decl.agent.text
                    ),
                );
            }
            for p in &decl.props {
                if !self.props.contains(p.text.as_str()) {
                    self.error(p.span, format!("unknown proposition `{}`", p.text));
                }
            }
        }
    }

    fn check_transition(&mut self) {
        let Some(t) = &self.sc.transition else {
            return;
        };
        let mut seen: HashSet<&str> = HashSet::new();
        for u in &t.updates {
            if !self.vars.contains(u.var.text.as_str()) {
                self.error(u.var.span, format!("unknown state var `{}`", u.var.text));
            } else if !seen.insert(&u.var.text) {
                self.error(
                    u.var.span,
                    format!("duplicate update for state var `{}`", u.var.text),
                );
            }
            self.check_expr(&u.expr, ExprCtx::Transition);
        }
    }

    // ---- expressions ------------------------------------------------------

    fn check_expr(&mut self, e: &Expr, ctx: ExprCtx) {
        use crate::ast::BinOp;
        match e {
            Expr::Num(..) => {}
            Expr::Var(id) => {
                if !self.vars.contains(id.text.as_str()) {
                    self.error(id.span, format!("unknown state var `{}`", id.text));
                }
            }
            Expr::Act(agent, span) => {
                if ctx != ExprCtx::Transition {
                    self.error(
                        *span,
                        "`act(…)` is only available in `transition` expressions",
                    );
                }
                self.known_agent(agent, "in `act(…)`");
            }
            Expr::Env(span) => {
                if ctx != ExprCtx::Transition {
                    self.error(*span, "`env` is only available in `transition` expressions");
                }
            }
            Expr::Not(inner, _) => self.check_expr(inner, ctx),
            Expr::If(c, a, b, _) => {
                self.check_expr(c, ctx);
                self.check_expr(a, ctx);
                self.check_expr(b, ctx);
            }
            Expr::Bin(op, a, b, _) => {
                // In `act(i) == name` / `env != name`, the identifier
                // resolves as an action name, not a state var.
                if matches!(op, BinOp::Eq | BinOp::Ne) {
                    if let Some(()) = self.check_action_compare(a, b, ctx) {
                        return;
                    }
                    if let Some(()) = self.check_action_compare(b, a, ctx) {
                        return;
                    }
                }
                self.check_expr(a, ctx);
                self.check_expr(b, ctx);
            }
        }
    }

    /// If `lhs` is `act(…)` or `env` and `rhs` a bare identifier,
    /// resolves the identifier as an action name and returns `Some`.
    fn check_action_compare(&mut self, lhs: &Expr, rhs: &Expr, ctx: ExprCtx) -> Option<()> {
        let Expr::Var(name) = rhs else {
            return None;
        };
        match lhs {
            Expr::Act(agent, _) => {
                self.check_expr(lhs, ctx);
                if self.agents.contains_key(agent.text.as_str()) {
                    let known = self
                        .actions
                        .get(agent.text.as_str())
                        .is_some_and(|r| r.contains(&name.text.as_str()));
                    if !known {
                        self.error(
                            name.span,
                            format!("unknown action `{}` for agent `{}`", name.text, agent.text),
                        );
                    }
                }
                Some(())
            }
            Expr::Env(_) => {
                self.check_expr(lhs, ctx);
                if !self.env_actions.contains(name.text.as_str()) {
                    self.error(
                        name.span,
                        format!("unknown environment action `{}`", name.text),
                    );
                }
                Some(())
            }
            _ => None,
        }
    }

    // ---- programs ---------------------------------------------------------

    fn check_programs(&mut self) {
        let mut seen: HashSet<&str> = HashSet::new();
        for prog in &self.sc.programs {
            if self.known_agent(&prog.agent, "in `program`") && !seen.insert(&prog.agent.text) {
                self.error(
                    prog.agent.span,
                    format!(
                        "duplicate `program` declaration for agent `{}`",
                        prog.agent.text
                    ),
                );
            }
            self.check_program(prog);
        }
    }

    fn check_program(&mut self, prog: &'a ProgramDecl) {
        let agent = prog.agent.text.as_str();
        let repertoire: Vec<String> = self
            .actions
            .get(agent)
            .map(|r| r.iter().map(|s| (*s).to_string()).collect())
            .unwrap_or_default();
        // Action names must come from the agent's repertoire.
        for case in &prog.cases {
            if !repertoire.is_empty() && !repertoire.iter().any(|r| r == &case.action.text) {
                self.error(
                    case.action.span,
                    format!("unknown action `{}` for agent `{agent}`", case.action.text),
                );
            }
        }
        if let Some(d) = &prog.default {
            if !repertoire.is_empty() && !repertoire.iter().any(|r| r == &d.text) {
                self.error(
                    d.span,
                    format!("unknown action `{}` for agent `{agent}`", d.text),
                );
            }
        }
        // Structurally identical guards: the later case can never fire.
        for (i, case) in prog.cases.iter().enumerate() {
            for earlier in &prog.cases[..i] {
                if case.guard.same_shape(&earlier.guard) {
                    self.error(
                        case.guard.span(),
                        format!(
                            "duplicate case: this guard is identical to an earlier case of agent `{agent}`"
                        ),
                    );
                    break;
                }
            }
        }
        // The paper's defaults are inert: if the transition distinguishes
        // the default action, doing-nothing has effects.
        let default_name: Option<String> = prog
            .default
            .as_ref()
            .map(|d| d.text.clone())
            .or_else(|| repertoire.first().cloned());
        if let (Some(def), Some(t)) = (&default_name, &self.sc.transition) {
            let mut mentioned = None;
            for u in &t.updates {
                find_act_mention(&u.expr, agent, def, &mut mentioned);
            }
            if let Some(span) = mentioned {
                let at = prog.default.as_ref().map_or(span, |d| d.span);
                self.warning(
                    at,
                    format!(
                        "default action `{def}` of agent `{agent}` is tested in the transition; defaults should be inert (no observable effect)"
                    ),
                );
            }
        }
        // Guard-level checks.
        for case in &prog.cases {
            let names_ok = self.check_guard_names(&case.guard);
            if let Some(span) = bare_temporal(&case.guard) {
                self.error(
                    span,
                    "guard refers to future time outside any knowledge operator; knowledge-based program tests must be knowledge formulas",
                );
                continue;
            }
            if case.guard.has_temporal() {
                self.warning(
                    case.guard.span(),
                    "guard refers to future time in a synchronous context; the unique-implementation theorem does not apply, so this scenario can only be enumerated, not solved",
                );
                self.solvable = false;
            }
            if names_ok {
                if let Err(span) = self.subjective(&case.guard, agent) {
                    self.error(
                        span,
                        format!(
                            "guard is not subjective for agent `{agent}`: tests must concern the agent's own knowledge (declare propositions with `local {agent}: …` or wrap them in `K{{{agent}}}`)"
                        ),
                    );
                }
            }
        }
    }

    /// Resolves every name in a guard; returns whether all resolved.
    fn check_guard_names(&mut self, g: &Guard) -> bool {
        match g {
            Guard::True(_) | Guard::False(_) => true,
            Guard::Prop(id) => {
                if self.props.contains(id.text.as_str()) {
                    true
                } else {
                    self.error(id.span, format!("unknown proposition `{}`", id.text));
                    false
                }
            }
            Guard::Not(inner, _)
            | Guard::Next(inner, _)
            | Guard::Eventually(inner, _)
            | Guard::Always(inner, _) => self.check_guard_names(inner),
            Guard::And(items, _) | Guard::Or(items, _) => {
                let mut ok = true;
                for item in items {
                    ok &= self.check_guard_names(item);
                }
                ok
            }
            Guard::Implies(a, b, _) | Guard::Iff(a, b, _) | Guard::Until(a, b, _) => {
                let left = self.check_guard_names(a);
                self.check_guard_names(b) && left
            }
            Guard::Knows(agent, inner, _) => {
                let known = self.known_agent(agent, "in `K{…}`");
                self.check_guard_names(inner) && known
            }
            Guard::Group(_, agents, inner, _) => {
                let mut ok = true;
                for a in agents {
                    ok &= self.known_agent(a, "in the agent group");
                }
                self.check_guard_names(inner) && ok
            }
        }
    }

    /// Mirrors `kbp_core`'s subjectivity predicate: the guard must be a
    /// statement about `agent`'s own knowledge. Returns the span of the
    /// first offending subformula.
    fn subjective(&self, g: &Guard, agent: &str) -> Result<(), Span> {
        match g {
            Guard::True(_) | Guard::False(_) => Ok(()),
            Guard::Prop(id) => {
                let local = self
                    .locals
                    .get(agent)
                    .is_some_and(|set| set.contains(id.text.as_str()));
                if local {
                    Ok(())
                } else {
                    Err(id.span)
                }
            }
            Guard::Not(inner, _)
            | Guard::Next(inner, _)
            | Guard::Eventually(inner, _)
            | Guard::Always(inner, _) => self.subjective(inner, agent),
            Guard::And(items, _) | Guard::Or(items, _) => {
                for item in items {
                    self.subjective(item, agent)?;
                }
                Ok(())
            }
            Guard::Implies(a, b, _) | Guard::Iff(a, b, _) | Guard::Until(a, b, _) => {
                self.subjective(a, agent)?;
                self.subjective(b, agent)
            }
            Guard::Knows(who, _, span) => {
                if who.text == agent {
                    Ok(())
                } else {
                    Err(*span)
                }
            }
            Guard::Group(op, agents, _, span) => {
                let involved = agents.iter().any(|a| a.text == agent);
                let singleton_self = agents.len() == 1 && involved;
                let ok = match op {
                    GroupOp::Common => involved,
                    GroupOp::Everyone | GroupOp::Distributed => singleton_self,
                };
                if ok {
                    Ok(())
                } else {
                    Err(*span)
                }
            }
        }
    }

    // ---- coverage ---------------------------------------------------------

    fn check_coverage(&mut self) {
        let mut missing = Vec::new();
        for a in &self.sc.agents {
            let name = a.text.as_str();
            if !self.actions.contains_key(name) {
                missing.push((
                    a.span,
                    format!("agent `{name}` has no `actions` declaration"),
                ));
            } else if self.actions.get(name).is_some_and(Vec::is_empty) {
                missing.push((
                    a.span,
                    format!("agent `{name}` has an empty action repertoire"),
                ));
            }
            if !self.sc.obs.iter().any(|o| o.agent.text == name) {
                missing.push((a.span, format!("agent `{name}` has no `obs` declaration")));
            }
            if !self.sc.programs.iter().any(|p| p.agent.text == name) {
                missing.push((
                    a.span,
                    format!("agent `{name}` has no `program` declaration"),
                ));
            }
        }
        for (span, msg) in missing {
            self.error(span, msg);
        }
    }
}

/// The span of the first temporal operator not guarded by a knowledge
/// operator, if any (mirrors `kbp_core`'s `temporal_under_epistemic`).
fn bare_temporal(g: &Guard) -> Option<Span> {
    match g {
        Guard::True(_) | Guard::False(_) | Guard::Prop(_) => None,
        // Below a knowledge operator, temporal operators are allowed
        // (they make the program non-solvable, not ill-formed).
        Guard::Knows(..) | Guard::Group(..) => None,
        Guard::Next(_, s) | Guard::Eventually(_, s) | Guard::Always(_, s) => Some(*s),
        Guard::Until(_, _, s) => Some(*s),
        Guard::Not(inner, _) => bare_temporal(inner),
        Guard::And(items, _) | Guard::Or(items, _) => items.iter().find_map(bare_temporal),
        Guard::Implies(a, b, _) | Guard::Iff(a, b, _) => {
            bare_temporal(a).or_else(|| bare_temporal(b))
        }
    }
}

/// Records whether `act(agent) ==/!= name` occurs in an expression.
fn find_act_mention(e: &Expr, agent: &str, name: &str, out: &mut Option<Span>) {
    use crate::ast::BinOp;
    if out.is_some() {
        return;
    }
    match e {
        Expr::Num(..) | Expr::Var(_) | Expr::Act(..) | Expr::Env(_) => {}
        Expr::Not(inner, _) => find_act_mention(inner, agent, name, out),
        Expr::If(c, a, b, _) => {
            find_act_mention(c, agent, name, out);
            find_act_mention(a, agent, name, out);
            find_act_mention(b, agent, name, out);
        }
        Expr::Bin(op, a, b, span) => {
            if matches!(op, BinOp::Eq | BinOp::Ne) {
                let hit = matches!(
                    (&**a, &**b),
                    (Expr::Act(ag, _), Expr::Var(n)) if ag.text == agent && n.text == name
                ) || matches!(
                    (&**a, &**b),
                    (Expr::Var(n), Expr::Act(ag, _)) if ag.text == agent && n.text == name
                );
                if hit {
                    *out = Some(*span);
                    return;
                }
            }
            find_act_mention(a, agent, name, out);
            find_act_mention(b, agent, name, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{has_errors, Severity};
    use crate::parser::parse;

    fn check(src: &str) -> (Analysis, Vec<Diagnostic>) {
        let (sc, mut diags) = parse(src);
        let sc = sc.expect("parses");
        let analysis = analyze(&sc, &mut diags);
        (analysis, diags)
    }

    const CLEAN: &str = "
scenario clean {
  horizon 2
  agents a
  vars x
  init [0]
  actions a: stay, move
  obs a = x
  prop set = x == 1
  local a: set
  transition { x = if act(a) == move then 1 else x }
  program a {
    case K{a} set do move
    default stay
  }
}
";

    #[test]
    fn clean_scenario_has_no_findings() {
        let (analysis, diags) = check(CLEAN);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(analysis.solvable);
    }

    #[test]
    fn reports_unknown_names_with_spans() {
        let (_, diags) = check(
            "scenario s { horizon 1 agents a vars x init [0] actions a: m
              obs a = y
              prop p = x
              local a: p
              transition { z = act(b) }
              program a { case K{c} q do w default m } }",
        );
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("unknown state var `y`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("unknown state var `z`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("unknown agent `b`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("unknown agent `c`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("unknown proposition `q`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("unknown action `w`")),
            "{msgs:?}"
        );
        for d in &diags {
            assert!(!d.span.is_empty(), "diagnostic without a span: {d:?}");
        }
    }

    #[test]
    fn init_arity_mismatch_is_reported() {
        let (_, diags) = check(
            "scenario s { horizon 1 agents a vars x, y init [0] actions a: m obs a = x program a { default m } }",
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("1 value(s) but 2 var(s)")),
            "{diags:?}"
        );
    }

    #[test]
    fn act_outside_transition_is_an_error() {
        let (_, diags) = check(
            "scenario s { horizon 1 agents a vars x init [0] actions a: m obs a = act(a) program a { default m } }",
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("only available in `transition`")),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_case_is_reported() {
        let (_, diags) = check(
            "scenario s { horizon 1 agents a vars x init [0] actions a: m, n obs a = x prop p = x local a: p
              program a { case K{a} p do n case K{a} p do m default m } }",
        );
        assert!(
            diags.iter().any(|d| d.message.contains("duplicate case")),
            "{diags:?}"
        );
    }

    #[test]
    fn non_inert_default_warns() {
        let (_, diags) = check(
            "scenario s { horizon 1 agents a vars x init [0] actions a: m, n obs a = x
              transition { x = if act(a) == m then 1 else 0 }
              program a { default m } }",
        );
        let w: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect();
        assert!(
            w.iter()
                .any(|d| d.message.contains("defaults should be inert")),
            "{diags:?}"
        );
    }

    #[test]
    fn bare_temporal_guard_is_an_error() {
        let (_, diags) = check(
            "scenario s { horizon 1 agents a vars x init [0] actions a: m, n obs a = x prop p = x local a: p
              program a { case X p do n default m } }",
        );
        assert!(
            diags.iter().any(|d| d.severity == Severity::Error
                && d.message.contains("outside any knowledge operator")),
            "{diags:?}"
        );
    }

    #[test]
    fn temporal_under_knowledge_warns_and_disables_solving() {
        let (analysis, diags) = check(
            "scenario s { horizon 1 agents a vars x init [0] actions a: m, n obs a = x prop p = x local a: p
              program a { case K{a} X p do n default m } }",
        );
        assert!(!analysis.solvable);
        assert!(
            diags.iter().any(|d| d.severity == Severity::Warning
                && d.message.contains("unique-implementation theorem")),
            "{diags:?}"
        );
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn non_subjective_guard_is_an_error() {
        // `p` is not local to `a`, and K{b} is about the wrong agent.
        let (_, diags) = check(
            "scenario s { horizon 1 agents a, b vars x init [0] actions a: m, n actions b: m obs a = x obs b = x prop p = x
              program a { case p do n case K{b} p do n default m } program b { default m } }",
        );
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.message.contains("not subjective"))
                .count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn group_subjectivity_follows_core_rules() {
        // C including the agent: fine. E of someone else: not subjective.
        let (_, diags) = check(
            "scenario s { horizon 1 agents a, b vars x init [0] actions a: m, n actions b: m obs a = x obs b = x prop p = x
              program a { case C{a,b} p do n case E{b} p do n default m } program b { default m } }",
        );
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.message.contains("not subjective"))
                .count(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn missing_coverage_is_reported_per_agent() {
        let (_, diags) = check("scenario s { horizon 1 agents a, b vars x init [0] }");
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        for agent in ["a", "b"] {
            assert!(
                msgs.iter()
                    .any(|m| m.contains(&format!("agent `{agent}` has no `actions`"))),
                "{msgs:?}"
            );
            assert!(
                msgs.iter()
                    .any(|m| m.contains(&format!("agent `{agent}` has no `obs`"))),
                "{msgs:?}"
            );
            assert!(
                msgs.iter()
                    .any(|m| m.contains(&format!("agent `{agent}` has no `program`"))),
                "{msgs:?}"
            );
        }
    }

    #[test]
    fn env_action_comparison_resolves_action_names() {
        let (_, diags) = check(
            "scenario s { horizon 1 agents a vars x init [0] env good, bad actions a: m obs a = x
              transition { x = if env == bad then 0 else (if env == nope then 1 else x) }
              program a { default m } }",
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("unknown environment action `nope`")),
            "{diags:?}"
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
    }
}
