//! Byte-offset source spans and line/column mapping.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte of the spanned region.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether the span is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position resolved from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in bytes within the line).
    pub col: usize,
}

/// Precomputed line-start table for resolving byte offsets to
/// line/column pairs, and for extracting source lines when rendering
/// diagnostics.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the start of each line (line 1 starts at 0).
    starts: Vec<usize>,
    len: usize,
}

impl LineMap {
    /// Builds the map for one source text.
    #[must_use]
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineMap {
            starts,
            len: src.len(),
        }
    }

    /// Resolves a byte offset (clamped to the source length) to a
    /// 1-based line/column pair.
    #[must_use]
    pub fn line_col(&self, offset: usize) -> LineCol {
        let offset = offset.min(self.len);
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line + 1,
            col: offset - self.starts[line] + 1,
        }
    }

    /// The byte range of a 1-based line (without its newline), if the
    /// line exists.
    #[must_use]
    pub fn line_range(&self, line: usize) -> Option<(usize, usize)> {
        let start = *self.starts.get(line.checked_sub(1)?)?;
        let end = self
            .starts
            .get(line)
            .map_or(self.len, |next| next.saturating_sub(1));
        Some((start, end.max(start)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_offsets_to_lines_and_columns() {
        let src = "ab\ncde\n\nf";
        let map = LineMap::new(src);
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(6), LineCol { line: 2, col: 4 });
        assert_eq!(map.line_col(7), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 4, col: 1 });
        // Past the end clamps to the final position.
        assert_eq!(map.line_col(999), LineCol { line: 4, col: 2 });
    }

    #[test]
    fn line_ranges_exclude_newlines() {
        let map = LineMap::new("ab\ncde\n");
        assert_eq!(map.line_range(1), Some((0, 2)));
        assert_eq!(map.line_range(2), Some((3, 6)));
        assert_eq!(map.line_range(0), None);
    }

    #[test]
    fn spans_join() {
        let a = Span::new(3, 5);
        let b = Span::new(1, 4);
        assert_eq!(a.to(b), Span::new(1, 5));
        assert!(Span::default().is_empty());
    }
}
