//! Diagnostics: spanned findings produced by the parser and analyzer.

use crate::span::{LineMap, Span};
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A well-formedness concern that does not prevent lowering (e.g.
    /// the paper's synchrony condition: a guard referring to future
    /// time in a synchronous context puts the program outside the
    /// unique-implementation theorem).
    Warning,
    /// A defect that prevents lowering the program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Where in the source the finding is anchored.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    #[must_use]
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// Creates a warning diagnostic.
    #[must_use]
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic as `LINE:COL: severity: message` plus the
    /// offending source line with a caret underline — the format `kbpc`
    /// prints (prefixed by the file path).
    #[must_use]
    pub fn render(&self, src: &str, map: &LineMap) -> String {
        let at = map.line_col(self.span.start);
        let mut out = format!(
            "{}:{}: {}: {}",
            at.line, at.col, self.severity, self.message
        );
        if let Some((start, end)) = map.line_range(at.line) {
            let line = &src[start..end];
            let width = self
                .span
                .end
                .min(end)
                .saturating_sub(self.span.start)
                .max(1);
            out.push_str(&format!(
                "\n  | {line}\n  | {}{}",
                " ".repeat(at.col - 1),
                "^".repeat(width)
            ));
        }
        out
    }
}

/// Whether a batch of diagnostics contains at least one error.
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_caret() {
        let src = "scenario x {\n  bogus line\n}\n";
        let map = LineMap::new(src);
        let d = Diagnostic::error(Span::new(15, 20), "unknown declaration");
        let r = d.render(src, &map);
        assert!(r.starts_with("2:3: error: unknown declaration"), "{r}");
        assert!(r.contains("bogus line"), "{r}");
        assert!(r.contains("^^^^^"), "{r}");
    }

    #[test]
    fn severity_ordering_puts_errors_last() {
        assert!(Severity::Warning < Severity::Error);
        let diags = vec![Diagnostic::warning(Span::default(), "w")];
        assert!(!has_errors(&diags));
    }
}
