//! E14 — The evaluation engine's batch-level optimizations: parallel
//! sharded cache fill and cross-layer carry-forward.
//!
//! Three comparisons, each with output equality asserted in-bench:
//!
//! 1. **Parallel fill, independent components** (`scan`): a batch of 30
//!    K-formulas over disjoint proposition bodies — the shape of a
//!    knowledge *scan* ("who knows what, and what do they know about each
//!    other") — filled layer-by-layer over a generated sequence-
//!    transmission system at 1 vs 4 worker threads. The roots share no
//!    uncached subformula, so `EvalEngine::populate` shards them across
//!    `std::thread::scope` workers.
//! 2. **Parallel fill, join-heavy batch** (`join`): 15 group-modality
//!    formulas (`C_G`/`D_G`/`E_G`) all over the same two-agent set. Group
//!    evaluation memoizes one partition join per agent set per cache, so
//!    these roots are deliberately coalesced into a single shard
//!    component (splitting them would rebuild the join once per shard —
//!    an earlier revision measured 3.7× *slower* in parallel). Expected
//!    result: parallel ≈ sequential, not a regression.
//! 3. **Carry-forward kernel** (`carry`): under observational recall the
//!    sequence-transmission layers saturate and consecutive layers become
//!    isomorphic. Compares re-evaluating the join batch on the next layer
//!    from scratch against `layer_renaming` (1-WL proposal + full S5
//!    isomorphism verification) + `EvalCache::carried_forward` (pointwise
//!    bit remap). The renaming search is *inside* the timed region, so
//!    the speedup is net of the certificate's cost.
//!
//! Plus a solver-level row: bit transmission under observational recall
//! solved with carry-forward on vs off, protocols asserted equal.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::SyncSolver;
use kbp_kripke::{EvalCache, EvalEngine, S5Model};
use kbp_logic::{AgentSet, Formula, FormulaArena, FormulaId};
use kbp_scenarios::bit_transmission::{BitTransmission, Channel as BtChannel};
use kbp_scenarios::sequence_transmission::{Channel, SequenceTransmission, Tagging};
use kbp_systems::{generate, layer_renaming, FullProtocol, InterpretedSystem, Recall};
use std::time::Duration;

/// 30 independent K-formulas: 5 protocol propositions × 6 knowledge
/// shapes per proposition. No two roots share a subformula, so the
/// engine can shard them freely.
fn scan_formulas(sc: &SequenceTransmission) -> Vec<Formula> {
    let (s, r) = (sc.sender(), sc.receiver());
    let props = [
        sc.done_r(),
        sc.done_s(),
        sc.got_one(),
        sc.prefix_ok(),
        sc.caught_up(),
    ];
    let mut out = Vec::new();
    for p in props {
        let f = Formula::prop(p);
        out.push(Formula::knows(s, f.clone()));
        out.push(Formula::knows(s, Formula::not(f.clone())));
        out.push(Formula::knows(r, f.clone()));
        out.push(Formula::knows(r, Formula::not(f.clone())));
        out.push(Formula::knows(s, Formula::knows(r, f.clone())));
        out.push(Formula::knows(r, Formula::knows(s, f)));
    }
    out
}

/// 15 group-modality formulas, all over the same agent set — maximal
/// contention on the per-cache partition-join memo.
fn join_formulas(sc: &SequenceTransmission) -> Vec<Formula> {
    let g = AgentSet::all(2);
    let props = [
        sc.done_r(),
        sc.done_s(),
        sc.got_one(),
        sc.prefix_ok(),
        sc.caught_up(),
    ];
    let mut out = Vec::new();
    for p in props {
        let f = Formula::prop(p);
        out.push(Formula::common(g, f.clone()));
        out.push(Formula::distributed(g, f.clone()));
        out.push(Formula::everyone(g, f));
    }
    out
}

/// Fresh-cache fill of `ids` on every layer; returns the total root bit
/// count as the equality witness.
fn fill(engine: &EvalEngine, models: &[&S5Model], ids: &[FormulaId]) -> usize {
    let mut bits = 0;
    for m in models {
        let mut cache = EvalCache::new();
        engine.populate(m, &mut cache, ids).expect("evaluates");
        for &id in ids {
            bits += cache.get(id).expect("root present").count();
        }
    }
    bits
}

fn layer_models(system: &InterpretedSystem) -> Vec<&S5Model> {
    (0..system.layer_count())
        .map(|t| system.layer(t).model())
        .collect()
}

fn bench_fill(
    c: &mut Criterion,
    name: &str,
    param: impl std::fmt::Display,
    models: &[&S5Model],
    formulas: &[Formula],
    rows: &mut Vec<Vec<String>>,
) {
    let mut arena = FormulaArena::new();
    let ids: Vec<FormulaId> = formulas.iter().map(|f| arena.intern(f)).collect();
    let seq = EvalEngine::new(arena.clone()).with_threads(1);
    let par = EvalEngine::new(arena).with_threads(4);
    let points: usize = models.iter().map(|m| m.world_count()).sum();
    rows.push(vec![
        cell(format!("{name}/{param}")),
        cell(models.len()),
        cell(points),
        expect(
            "parallel = sequential",
            fill(&seq, models, &ids),
            fill(&par, models, &ids),
        ),
    ]);
    let mut group = c.benchmark_group("e14_parallel_fill");
    group.bench_function(BenchmarkId::new(format!("{name}_threads1"), &param), |b| {
        b.iter(|| black_box(fill(&seq, models, &ids)));
    });
    group.bench_function(BenchmarkId::new(format!("{name}_threads4"), &param), |b| {
        b.iter(|| black_box(fill(&par, models, &ids)));
    });
    group.finish();
}

fn bench_carry(c: &mut Criterion, rows: &mut Vec<Vec<String>>) {
    let sc = SequenceTransmission::new(3, Tagging::Alternating, Channel::Lossy);
    let ctx = sc.context();
    let full = FullProtocol::for_context(&ctx);
    let sys = generate(&ctx, &full, Recall::Observational, 16).expect("generates");
    let (prev_t, next_t) = (1..sys.layer_count())
        .find(|&t| layer_renaming(sys.layer(t - 1), sys.layer(t)).is_some())
        .map(|t| (t - 1, t))
        .expect("observational recall yields an isomorphic consecutive pair");

    let mut arena = FormulaArena::new();
    let ids: Vec<FormulaId> = join_formulas(&sc).iter().map(|f| arena.intern(f)).collect();
    let engine = EvalEngine::new(arena).with_threads(1);
    let mut prev = EvalCache::new();
    engine
        .populate(sys.layer(prev_t).model(), &mut prev, &ids)
        .expect("evaluates");

    let refill = || {
        let mut cache = EvalCache::new();
        engine
            .populate(sys.layer(next_t).model(), &mut cache, &ids)
            .expect("evaluates");
        ids.iter()
            .map(|&id| cache.get(id).expect("root present").count())
            .sum::<usize>()
    };
    let carry = || {
        let ren = layer_renaming(sys.layer(prev_t), sys.layer(next_t)).expect("isomorphic");
        let cache = prev.carried_forward(&ren).expect("carries");
        ids.iter()
            .map(|&id| cache.get(id).expect("root present").count())
            .sum::<usize>()
    };
    rows.push(vec![
        cell(format!("carry_kernel/t{prev_t}..{next_t}")),
        cell(1usize),
        cell(sys.layer(next_t).len()),
        expect("carry = refill", refill(), carry()),
    ]);
    let mut group = c.benchmark_group("e14_carry_forward");
    group.bench_function(BenchmarkId::new("kernel_refill", "seq_obs"), |b| {
        b.iter(|| black_box(refill()));
    });
    group.bench_function(BenchmarkId::new("kernel_carry", "seq_obs"), |b| {
        b.iter(|| black_box(carry()));
    });
    group.finish();
}

fn bench_solver_carry(c: &mut Criterion, rows: &mut Vec<Vec<String>>) {
    let bt = BitTransmission::new(BtChannel::Lossy);
    let ctx = bt.context();
    let kbp = bt.kbp();
    let solve = |carry: bool| {
        SyncSolver::new(&ctx, &kbp)
            .horizon(12)
            .recall(Recall::Observational)
            .carry_forward(carry)
            // Opt out of the width gate: this row measures the carry
            // machinery itself on deliberately tiny layers (E14).
            .carry_threshold(0)
            .solve()
            .expect("solves")
    };
    let on = solve(true);
    let off = solve(false);
    assert_eq!(on.protocol(), off.protocol(), "carry changed the solution");
    rows.push(vec![
        cell("solver/bt_obs_h12"),
        cell(on.system().layer_count()),
        cell(on.stats().layers_carried),
        expect(
            "carry-on guard lookups = carry-off",
            on.stats().guard_evaluations,
            off.stats().guard_evaluations,
        ),
    ]);
    let mut group = c.benchmark_group("e14_carry_forward");
    group.bench_function(BenchmarkId::new("solver_carry_on", "bt_obs"), |b| {
        b.iter(|| black_box(solve(true).stats().layers_carried));
    });
    group.bench_function(BenchmarkId::new("solver_carry_off", "bt_obs"), |b| {
        b.iter(|| black_box(solve(false).stats().layers_carried));
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();

    for (m, horizon) in [(3u32, 8usize), (4, 7)] {
        let sc = SequenceTransmission::new(m, Tagging::Alternating, Channel::Lossy);
        let ctx = sc.context();
        let full = FullProtocol::for_context(&ctx);
        let system = generate(&ctx, &full, Recall::Perfect, horizon).expect("generates");
        let models = layer_models(&system);
        bench_fill(c, "scan", m, &models, &scan_formulas(&sc), &mut rows);
        if m == 3 {
            bench_fill(c, "join", m, &models, &join_formulas(&sc), &mut rows);
        }
    }
    bench_carry(c, &mut rows);
    bench_solver_carry(c, &mut rows);

    report_table(
        "E14 parallel fill + carry-forward (expected: equal outputs; col3 = points or carried layers)",
        &["workload", "layers", "points/carried", "equal"],
        &rows,
    );
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
