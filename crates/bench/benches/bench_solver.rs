//! E8 — Solver scaling: the inductive fixed-point construction against
//! horizon, agent count, and environment nondeterminism, on random
//! contexts with random past-determined programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, report_table};
use kbp_core::{Kbp, SyncSolver};
use kbp_logic::{Agent, Formula, PropId};
use kbp_systems::random::{random_context, RandomContextConfig};
use kbp_systems::ActionId;
use std::time::Duration;

/// A simple past-determined program for `agents` agents: each agent acts
/// when it does NOT know `q_0`, with action 1, default 0.
fn simple_kbp(agents: usize) -> Kbp {
    let mut b = Kbp::builder();
    for i in 0..agents {
        let a = Agent::new(i);
        b = b
            .clause(
                a,
                Formula::not(Formula::knows(a, Formula::prop(PropId::new(0)))),
                ActionId(1),
            )
            .default_action(a, ActionId(0));
    }
    b.build()
}

fn reproduce() {
    // Report layer growth for one representative configuration.
    let cfg = RandomContextConfig {
        states: 16,
        agents: 2,
        actions: 2,
        env_moves: 2,
        initial: 3,
        obs_classes: 4,
        props: 2,
    };
    let ctx = random_context(11, &cfg);
    let kbp = simple_kbp(2);
    let solution = SyncSolver::new(&ctx, &kbp)
        .horizon(8)
        .solve()
        .expect("solves");
    let rows: Vec<Vec<String>> = (0..solution.system().layer_count())
        .map(|t| vec![cell(t), cell(solution.system().layer(t).len())])
        .collect();
    report_table(
        "E8 solver layer growth (random context, 2 agents, env branching 2)",
        &["layer", "points"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e8_solver");

    // Horizon sweep.
    for horizon in [2usize, 4, 6, 8] {
        let cfg = RandomContextConfig {
            states: 16,
            agents: 2,
            actions: 2,
            env_moves: 2,
            initial: 3,
            obs_classes: 4,
            props: 2,
        };
        let ctx = random_context(11, &cfg);
        let kbp = simple_kbp(2);
        group.bench_with_input(
            BenchmarkId::new("horizon", horizon),
            &horizon,
            |b, &horizon| {
                b.iter(|| {
                    SyncSolver::new(&ctx, &kbp)
                        .horizon(horizon)
                        .solve()
                        .expect("solves")
                });
            },
        );
    }

    // Agent-count sweep.
    for agents in [1usize, 2, 3, 4] {
        let cfg = RandomContextConfig {
            states: 12,
            agents,
            actions: 2,
            env_moves: 1,
            initial: 3,
            obs_classes: 3,
            props: 2,
        };
        let ctx = random_context(13, &cfg);
        let kbp = simple_kbp(agents);
        group.bench_with_input(BenchmarkId::new("agents", agents), &agents, |b, _| {
            b.iter(|| {
                SyncSolver::new(&ctx, &kbp)
                    .horizon(5)
                    .solve()
                    .expect("solves")
            });
        });
    }

    // Environment-branching sweep.
    for env_moves in [1usize, 2, 3] {
        let cfg = RandomContextConfig {
            states: 12,
            agents: 2,
            actions: 2,
            env_moves,
            initial: 2,
            obs_classes: 3,
            props: 2,
        };
        let ctx = random_context(17, &cfg);
        let kbp = simple_kbp(2);
        group.bench_with_input(
            BenchmarkId::new("env_branching", env_moves),
            &env_moves,
            |b, _| {
                b.iter(|| {
                    SyncSolver::new(&ctx, &kbp)
                        .horizon(5)
                        .solve()
                        .expect("solves")
                });
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
