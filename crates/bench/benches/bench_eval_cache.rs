//! E13 — Subformula satisfaction caching: cached vs uncached guard
//! evaluation over the layers of solved systems.
//!
//! The workload mirrors what the solvers do each layer: evaluate a batch
//! of knowledge tests (every clause guard, its negation — the default
//! branch — and `knows_whether`-style combinations, plus group-modality
//! analysis formulas) on every time slice of the generated system. The
//! *uncached* path calls `S5Model::satisfying` per formula; the *cached*
//! path interns the batch into one `FormulaArena` and evaluates through a
//! per-layer `EvalCache`, so shared subformulas and group partitions are
//! computed once per layer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::SyncSolver;
use kbp_kripke::{EvalCache, S5Model};
use kbp_logic::{AgentSet, Formula, FormulaArena};
use kbp_scenarios::muddy_children::MuddyChildren;
use kbp_scenarios::sequence_transmission::{Channel, SequenceTransmission, Tagging};
use std::time::Duration;

/// The muddy-children analysis batch: per child the clause guard
/// `K_i muddy_i`, its negation (the default branch), `K_i ¬muddy_i`, and
/// `knows_whether`; plus "someone is muddy" under `E_G`, `E_G E_G` and
/// `C_G` — heavy subformula and partition sharing.
fn muddy_formulas(sc: &MuddyChildren) -> Vec<Formula> {
    let n = sc.children();
    let mut out = Vec::new();
    for i in 0..n {
        let child = sc.child(i);
        let muddy = Formula::prop(sc.muddy(i));
        let knows = Formula::knows(child, muddy.clone());
        let knows_not = Formula::knows(child, Formula::not(muddy.clone()));
        out.push(knows.clone());
        out.push(Formula::not(knows.clone()));
        out.push(knows_not.clone());
        out.push(Formula::or([knows, knows_not]));
    }
    let g = AgentSet::all(n);
    let someone = Formula::or((0..n).map(|i| Formula::prop(sc.muddy(i))));
    let everyone = Formula::everyone(g, someone.clone());
    out.push(everyone.clone());
    out.push(Formula::everyone(g, everyone));
    out.push(Formula::common(g, someone));
    // Per-child common knowledge of "someone else is muddy" — n formulas
    // over the same group, so the cached path computes the group join once
    // per layer while the uncached path recomputes it per formula.
    for i in 0..n {
        let others = Formula::or(
            (0..n)
                .filter(|&j| j != i)
                .map(|j| Formula::prop(sc.muddy(j))),
        );
        out.push(Formula::common(g, others));
    }
    out
}

/// The sequence-transmission batch: both clause guards, their negations,
/// and the distributed-knowledge pooling of the protocol's propositions.
fn seq_formulas(sc: &SequenceTransmission) -> Vec<Formula> {
    let (s, r) = (sc.sender(), sc.receiver());
    let done_r = Formula::prop(sc.done_r());
    let got_one = Formula::prop(sc.got_one());
    let caught_up = Formula::prop(sc.caught_up());
    let send_guard = Formula::not(Formula::knows(s, done_r.clone()));
    let ack_guard = Formula::and([
        Formula::knows(r, got_one.clone()),
        Formula::not(Formula::knows(r, caught_up.clone())),
    ]);
    let g = AgentSet::all(2);
    let prefix_ok = Formula::prop(sc.prefix_ok());
    vec![
        send_guard.clone(),
        Formula::not(send_guard),
        ack_guard.clone(),
        Formula::not(ack_guard),
        Formula::knows(r, got_one.clone()),
        Formula::knows(r, caught_up.clone()),
        // Several group modalities over the same pair {S, R}: the cached
        // path builds the join / refinement partitions once per layer.
        Formula::distributed(g, done_r.clone()),
        Formula::distributed(g, got_one.clone()),
        Formula::distributed(g, prefix_ok.clone()),
        Formula::common(g, Formula::implies(done_r.clone(), got_one)),
        Formula::common(g, prefix_ok),
        Formula::common(g, Formula::or([done_r, caught_up])),
    ]
}

fn eval_uncached(models: &[&S5Model], formulas: &[Formula]) -> usize {
    let mut bits = 0;
    for m in models {
        for f in formulas {
            bits += m.satisfying(f).expect("evaluates").count();
        }
    }
    bits
}

fn eval_cached(models: &[&S5Model], arena: &FormulaArena, ids: &[kbp_logic::FormulaId]) -> usize {
    let mut bits = 0;
    let mut cache = EvalCache::new();
    for m in models {
        cache.clear();
        for &id in ids {
            bits += m
                .satisfying_cached(&mut cache, arena, id)
                .expect("evaluates")
                .count();
        }
    }
    bits
}

fn run_pair(
    c: &mut Criterion,
    name: &str,
    param: impl std::fmt::Display,
    models: &[&S5Model],
    formulas: &[Formula],
    rows: &mut Vec<Vec<String>>,
) {
    let mut arena = FormulaArena::new();
    let ids: Vec<_> = formulas.iter().map(|f| arena.intern(f)).collect();
    let plain = eval_uncached(models, formulas);
    let cached = eval_cached(models, &arena, &ids);
    let occurrences: usize = formulas.iter().map(|f| f.subformulas().count()).sum();
    rows.push(vec![
        cell(format!("{name}/{param}")),
        cell(occurrences),
        cell(arena.len()),
        expect("cached = uncached", plain, cached),
    ]);

    let mut group = c.benchmark_group("e13_eval_cache");
    group.bench_function(BenchmarkId::new(format!("{name}_uncached"), &param), |b| {
        b.iter(|| black_box(eval_uncached(models, formulas)));
    });
    group.bench_function(BenchmarkId::new(format!("{name}_cached"), &param), |b| {
        b.iter(|| black_box(eval_cached(models, &arena, &ids)));
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();

    for n in [5usize, 6] {
        let sc = MuddyChildren::new(n);
        let ctx = sc.context();
        let kbp = sc.kbp();
        let solution = SyncSolver::new(&ctx, &kbp)
            .horizon(n + 1)
            .solve()
            .expect("solves");
        let system = solution.system();
        let models: Vec<&S5Model> = (0..system.layer_count())
            .map(|t| system.layer(t).model())
            .collect();
        let formulas = muddy_formulas(&sc);
        run_pair(c, "muddy_children", n, &models, &formulas, &mut rows);
    }

    for m in [2u32, 3] {
        let sc = SequenceTransmission::new(m, Tagging::Alternating, Channel::Lossy);
        let ctx = sc.context();
        let kbp = sc.kbp();
        let solution = SyncSolver::new(&ctx, &kbp)
            .horizon(2 * m as usize + 2)
            .solve()
            .expect("solves");
        let system = solution.system();
        let models: Vec<&S5Model> = (0..system.layer_count())
            .map(|t| system.layer(t).model())
            .collect();
        let formulas = seq_formulas(&sc);
        run_pair(c, "seq_transmission", m, &models, &formulas, &mut rows);
    }

    report_table(
        "E13 eval cache (expected: cached bit-counts identical to uncached)",
        &[
            "workload",
            "subformula occurrences",
            "distinct interned",
            "equal",
        ],
        &rows,
    );
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
