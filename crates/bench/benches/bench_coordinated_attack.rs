//! E11 — Coordinated attack: reproduce the impossibility verdicts
//! (paralysis over a lossy channel, lock-step attack over a reliable
//! one), then measure solving with the common-knowledge guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::SyncSolver;
use kbp_scenarios::coordinated_attack::{Channel, CoordinatedAttack};
use std::time::Duration;

fn reproduce() {
    let mut rows = Vec::new();
    for (channel, exp_paralysis) in [(Channel::Lossy, true), (Channel::Reliable, false)] {
        let sc = CoordinatedAttack::new(channel);
        let ctx = sc.context();
        let solution = SyncSolver::new(&ctx, &sc.kbp())
            .horizon(5)
            .solve()
            .expect("solves");
        let sys = solution.system();
        let coordination = sys.holds_initially(&sc.coordination()).expect("evaluable");
        let validity = sys.holds_initially(&sc.validity()).expect("evaluable");
        let paralysis = sys
            .holds_initially(&sc.nobody_attacks())
            .expect("evaluable");
        rows.push(vec![
            cell(format!("{channel:?}")),
            expect("coordination", true, coordination),
            expect("validity", true, validity),
            expect("paralysis", exp_paralysis, paralysis),
        ]);
    }
    report_table(
        "E11 coordinated attack (lossy: paralysed; reliable: attacks, still coordinated)",
        &["channel", "coordinated", "valid", "paralysis-as-expected"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e11_coordinated_attack_solve");
    for horizon in [3usize, 5, 7, 9] {
        group.bench_with_input(
            BenchmarkId::new("lossy", horizon),
            &horizon,
            |b, &horizon| {
                let sc = CoordinatedAttack::new(Channel::Lossy);
                let ctx = sc.context();
                let kbp = sc.kbp();
                b.iter(|| {
                    SyncSolver::new(&ctx, &kbp)
                        .horizon(horizon)
                        .solve()
                        .expect("solves")
                });
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
