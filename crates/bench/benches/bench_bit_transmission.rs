//! E1 — Bit transmission: reproduce the derived protocol and the
//! knowledge ladder, then measure solver scaling over the horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::SyncSolver;
use kbp_logic::{AgentSet, Formula};
use kbp_scenarios::bit_transmission::{BitTransmission, Channel};
use kbp_systems::{ActionId, Evaluator, Obs};
use std::time::Duration;

fn reproduce() {
    let mut rows = Vec::new();
    // The coordinated-attack contrast: common knowledge of the bit is
    // attainable over a reliable channel but never over a lossy one.
    for (label, channel, ck_expected) in [
        ("lossy", Channel::Lossy, false),
        ("reliable", Channel::Reliable, true),
    ] {
        let sc = BitTransmission::new(channel);
        let ctx = sc.context();
        let kbp = sc.kbp();
        let solution = SyncSolver::new(&ctx, &kbp)
            .horizon(6)
            .solve()
            .expect("solves");
        let sys = solution.system();

        // Paper fact 1: the derived sender sends at time 0.
        let sends_initially =
            solution.protocol().get(sc.sender(), &[Obs(0)]) == Some(&[ActionId(1)][..]);
        // Paper fact 2: safety of the ladder.
        let ladder = sys.holds_initially(&sc.ladder()).expect("evaluable");
        // Paper fact 3: no common knowledge of the bit, ever.
        let group: AgentSet = [sc.sender(), sc.receiver()].into_iter().collect();
        let ck = Formula::common(group, Formula::prop(sc.bit()));
        let ev = Evaluator::new(sys, &ck).expect("evaluable");
        let ck_ever = sys.points().any(|p| ev.holds(p));

        rows.push(vec![
            cell(label),
            expect("sender sends initially", true, sends_initially),
            expect("knowledge ladder", true, ladder),
            expect("common knowledge attained", ck_expected, ck_ever),
        ]);
    }
    report_table(
        "E1 bit transmission (CK attained iff the channel is reliable)",
        &["channel", "sends@0", "ladder", "CK-as-expected"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e1_bit_transmission_solve");
    for horizon in [4usize, 8, 12, 16] {
        group.bench_with_input(
            BenchmarkId::new("lossy", horizon),
            &horizon,
            |b, &horizon| {
                let sc = BitTransmission::new(Channel::Lossy);
                let ctx = sc.context();
                let kbp = sc.kbp();
                b.iter(|| {
                    SyncSolver::new(&ctx, &kbp)
                        .horizon(horizon)
                        .solve()
                        .expect("solves")
                });
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
