//! E10 — Ablation: the stabilisation certificate. Reproduce the layer at
//! which the scenarios provably stop changing, measure the detection
//! cost, and quantify the horizon work an early-stopping client saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, report_table};
use kbp_core::SyncSolver;
use kbp_scenarios::bit_transmission::{BitTransmission, Channel};
use kbp_scenarios::muddy_children::MuddyChildren;
use kbp_scenarios::robot::Robot;
use kbp_systems::Recall;
use std::time::Duration;

fn reproduce() {
    let mut rows = Vec::new();

    let mc = MuddyChildren::new(3);
    let mc_ctx = mc.context();
    let mc_sol = SyncSolver::new(&mc_ctx, &mc.kbp())
        .horizon(8)
        .solve()
        .expect("solves");
    rows.push(vec![
        cell("muddy children (n=3)"),
        cell(8),
        cell(format!("{:?}", mc_sol.stabilized())),
    ]);
    assert!(mc_sol.stabilized().is_some());

    let rb = Robot::new(12, 4, 7);
    let rb_ctx = rb.context();
    let rb_sol = SyncSolver::new(&rb_ctx, &rb.kbp())
        .horizon(10)
        .solve()
        .expect("solves");
    rows.push(vec![
        cell("robot [4,7]"),
        cell(10),
        cell(format!("{:?}", rb_sol.stabilized())),
    ]);
    assert!(rb_sol.stabilized().is_some());

    let bt = BitTransmission::new(Channel::Lossy);
    let bt_ctx = bt.context();
    let bt_obs = SyncSolver::new(&bt_ctx, &bt.kbp())
        .horizon(10)
        .recall(Recall::Observational)
        .solve()
        .expect("solves");
    rows.push(vec![
        cell("bit transmission (obs.)"),
        cell(10),
        cell(format!("{:?}", bt_obs.stabilized())),
    ]);
    assert!(bt_obs.stabilized().is_some());

    let bt_perfect = SyncSolver::new(&bt_ctx, &bt.kbp())
        .horizon(10)
        .solve()
        .expect("solves");
    rows.push(vec![
        cell("bit transmission (perf.)"),
        cell(10),
        cell(format!("{:?}", bt_perfect.stabilized())),
    ]);
    assert!(
        bt_perfect.stabilized().is_none(),
        "histories keep splitting"
    );

    report_table(
        "E10 stabilisation certificates (None = genuinely keeps changing)",
        &["scenario", "horizon", "stabilized at"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e10_stabilization");

    // Detection cost on a solved system.
    let mc = MuddyChildren::new(4);
    let ctx = mc.context();
    let solution = SyncSolver::new(&ctx, &mc.kbp())
        .horizon(8)
        .solve()
        .expect("solves");
    group.bench_function("detect_muddy_n4_h8", |b| {
        b.iter(|| solution.system().stabilization());
    });

    // The work early stopping would save: solve to just-past-stabilisation
    // vs solving to oversized horizons.
    let stab = solution.stabilized().expect("stabilizes") + 1;
    for factor in [1usize, 2, 4] {
        let horizon = stab * factor;
        group.bench_with_input(
            BenchmarkId::new("solve_horizon", horizon),
            &horizon,
            |b, &horizon| {
                b.iter(|| {
                    SyncSolver::new(&ctx, &mc.kbp())
                        .horizon(horizon)
                        .solve()
                        .expect("solves")
                });
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
