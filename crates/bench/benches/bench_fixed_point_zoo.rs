//! E3 — The fixed-point zoo: reproduce the 0/1/2-implementation counts,
//! then measure exhaustive enumeration against the horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::Enumerator;
use kbp_scenarios::fixed_point_zoo;
use std::time::Duration;

fn reproduce() {
    let ctx = fixed_point_zoo::lamp_context();
    let mut rows = Vec::new();
    for entry in fixed_point_zoo::all() {
        let found = Enumerator::new(&ctx, &entry.kbp)
            .horizon(3)
            .enumerate()
            .expect("enumerates");
        rows.push(vec![
            cell(entry.name),
            cell(entry.expected.count()),
            cell(found.count()),
            cell(found.branches_explored()),
            expect(
                "implementation count",
                entry.expected.count(),
                found.count(),
            ),
        ]);
    }
    report_table(
        "E3 fixed-point zoo (expected: 0 / 1 / 2 implementations)",
        &["program", "expected", "found", "branches", "check"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let ctx = fixed_point_zoo::lamp_context();
    let mut group = c.benchmark_group("e3_fixed_point_zoo_enumerate");
    for horizon in [2usize, 3, 4] {
        for entry in fixed_point_zoo::all() {
            group.bench_with_input(
                BenchmarkId::new(entry.name, horizon),
                &horizon,
                |b, &horizon| {
                    b.iter(|| {
                        Enumerator::new(&ctx, &entry.kbp)
                            .horizon(horizon)
                            .enumerate()
                            .expect("enumerates")
                    });
                },
            );
        }
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
