//! E7 — CTLK model checking: reproduce a known verdict matrix on the
//! bit-transmission graph, then measure fixpoint checking on growing
//! random reachable-state graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_logic::{Agent, Formula, PropId};
use kbp_mck::{ctl, Mck, StateGraph};
use kbp_scenarios::bit_transmission::{BitTransmission, Channel};
use kbp_systems::random::{random_context, RandomContextConfig};
use kbp_systems::{ActionId, FnContext, LocalView};
use std::time::Duration;

fn reproduce() {
    let sc = BitTransmission::new(Channel::Lossy);
    let ctx = sc.context();
    // Explore under the full protocol: every agent behaviour allowed.
    let full = kbp_systems::FullProtocol::for_context(&ctx);
    let graph = StateGraph::explore(&ctx, &full, 100_000).expect("explores");
    let mck = Mck::new(&graph);
    let sack = Formula::prop(sc.sender_has_ack());
    let rbit = Formula::prop(sc.receiver_has_bit());

    let verdicts = [
        (
            "G(sack -> rbit)",
            Formula::always(Formula::implies(sack.clone(), rbit.clone())),
            true,
        ),
        ("EF sack", ctl::ef(sack.clone()), true),
        ("AF rbit", Formula::eventually(rbit.clone()), false),
        ("EG !rbit", ctl::eg(Formula::not(rbit)), true),
    ];
    let rows: Vec<Vec<String>> = verdicts
        .into_iter()
        .map(|(name, f, expected)| {
            let got = mck.check(&f).expect("checks").holds_initially();
            vec![cell(name), cell(got), expect(name, expected, got)]
        })
        .collect();
    report_table(
        &format!(
            "E7 CTLK verdicts on the bit-transmission graph ({} states)",
            graph.state_count()
        ),
        &["formula", "verdict", "check"],
        &rows,
    );
}

fn big_graph(states: u32) -> (FnContext, usize) {
    let cfg = RandomContextConfig {
        states,
        agents: 2,
        actions: 2,
        env_moves: 2,
        initial: 4,
        obs_classes: (states / 8).max(2),
        props: 2,
    };
    (random_context(9, &cfg), states as usize)
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e7_mck");
    let first = |_: &LocalView<'_>| vec![ActionId(0), ActionId(1)];
    for states in [200u32, 1_000, 5_000, 20_000] {
        let (ctx, _) = big_graph(states);
        let graph = StateGraph::explore(&ctx, &first, 10 * states as usize).expect("explores");
        let p = Formula::prop(PropId::new(0));
        let spec_ag = Formula::always(Formula::implies(
            p.clone(),
            Formula::knows(
                Agent::new(0),
                Formula::or([p.clone(), Formula::not(p.clone())]),
            ),
        ));
        let spec_af = Formula::eventually(p.clone());
        let spec_k = Formula::knows(Agent::new(1), Formula::not(p));
        group.bench_with_input(
            BenchmarkId::new("AG_impl_K", graph.state_count()),
            &states,
            |b, _| {
                let m = Mck::new(&graph);
                b.iter(|| m.check(&spec_ag).expect("checks"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("AF", graph.state_count()),
            &states,
            |b, _| {
                let m = Mck::new(&graph);
                b.iter(|| m.check(&spec_af).expect("checks"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("K", graph.state_count()),
            &states,
            |b, _| {
                let m = Mck::new(&graph);
                b.iter(|| m.check(&spec_k).expect("checks"));
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
