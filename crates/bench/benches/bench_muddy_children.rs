//! E2 — Muddy children: reproduce "yes exactly in round k" for every
//! mask, then measure KBP solving and announcement updating as n grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::SyncSolver;
use kbp_scenarios::muddy_children::MuddyChildren;
use std::time::Duration;

fn reproduce() {
    let mut rows = Vec::new();
    for n in 3..=5usize {
        let sc = MuddyChildren::new(n);
        let ctx = sc.context();
        let kbp = sc.kbp();
        let solution = SyncSolver::new(&ctx, &kbp)
            .horizon(n + 1)
            .solve()
            .expect("solves");
        let mut all_ok = true;
        for mask in 1u32..(1 << n) {
            let k = mask.count_ones() as usize;
            all_ok &= sc.yes_round(solution.system(), mask) == Some(k);
            all_ok &= sc.rounds_until_known(mask) == k;
        }
        rows.push(vec![
            cell(n),
            cell((1 << n) - 1),
            expect("yes-round = k for all masks", true, all_ok),
        ]);
    }
    report_table(
        "E2 muddy children (expected: yes in round k, both renditions)",
        &["n", "masks", "all = k"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e2_muddy_children");
    for n in [3usize, 4, 5, 6, 7] {
        group.bench_with_input(BenchmarkId::new("kbp_solve", n), &n, |b, &n| {
            let sc = MuddyChildren::new(n);
            let ctx = sc.context();
            let kbp = sc.kbp();
            b.iter(|| {
                SyncSolver::new(&ctx, &kbp)
                    .horizon(n + 1)
                    .solve()
                    .expect("solves")
            });
        });
        group.bench_with_input(BenchmarkId::new("announcements", n), &n, |b, &n| {
            let sc = MuddyChildren::new(n);
            let full_mask = (1u32 << n) - 1;
            b.iter(|| sc.rounds_until_known(full_mask));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
