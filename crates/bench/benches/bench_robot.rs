//! E5 — Robot stopping: reproduce safety/liveness/no-overshoot, then
//! measure solver scaling against the goal distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::SyncSolver;
use kbp_scenarios::robot::Robot;
use std::time::Duration;

fn reproduce() {
    let mut rows = Vec::new();
    for (track, lo, hi) in [(12u32, 4u32, 7u32), (16, 6, 9), (20, 8, 12)] {
        let sc = Robot::new(track, lo, hi);
        let ctx = sc.context();
        let solution = SyncSolver::new(&ctx, &sc.kbp())
            .horizon((lo + 3) as usize)
            .solve()
            .expect("solves");
        let sys = solution.system();
        let safety = sys.holds_initially(&sc.safety()).expect("evaluable");
        let liveness = sys.holds_initially(&sc.liveness()).expect("evaluable");
        let no_over = sys.holds_initially(&sc.no_overshoot()).expect("evaluable");
        rows.push(vec![
            cell(format!("[{lo},{hi}]/{track}")),
            expect("safety", true, safety),
            expect("liveness", true, liveness),
            expect("no overshoot", true, no_over),
        ]);
    }
    report_table(
        "E5 robot stopping (halting on knowledge is safe and timely)",
        &["goal/track", "safe", "halts", "no-overshoot"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e5_robot_solve");
    for lo in [4u32, 5, 6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(lo), &lo, |b, &lo| {
            let sc = Robot::new(lo + 8, lo, lo + 3);
            let ctx = sc.context();
            let kbp = sc.kbp();
            b.iter(|| {
                SyncSolver::new(&ctx, &kbp)
                    .horizon((lo + 2) as usize)
                    .solve()
                    .expect("solves")
            });
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
