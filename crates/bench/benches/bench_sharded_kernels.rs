//! E16 — Intra-layer world-range sharding of the partition/sat-set
//! kernels.
//!
//! One *wide* layer (the widest slice of a generated sequence-
//! transmission system, thousands of worlds) is attacked by the four hot
//! kernels sequentially and split into 4 word-aligned world-range
//! shards:
//!
//! * `blocks_inside` — union of fully-satisfied information cells (the
//!   K_i kernel),
//! * `Partition::refine_with` — common refinement (the D_G kernel),
//! * `Partition::join_with` — coarsest common coarsening (the C_G
//!   kernel),
//! * `S5Model::group_join` — the full C_G accumulation over a group.
//!
//! Equality of the sharded and sequential results — including block
//! *numbering*, via derived `PartialEq` on the canonical partition
//! representation — is asserted in-bench. Per the E14 convention, no
//! timing is asserted: the development container is single-vCPU, where
//! the honest expectation is bounded overhead, not speedup (shard
//! spawn/merge costs with zero parallel win). The measured numbers are
//! recorded in `EXPERIMENTS.md` §E16 and dumped as
//! `BENCH_sharded_kernels.json` at the repo root for machine diffing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_kripke::{blocks_inside, blocks_inside_sharded, Partition, S5Model};
use kbp_logic::{Agent, AgentSet};
use kbp_scenarios::sequence_transmission::{Channel, SequenceTransmission, Tagging};
use kbp_systems::{generate, FullProtocol, InterpretedSystem, Recall};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;

fn widest_layer(system: &InterpretedSystem) -> &S5Model {
    (0..system.layer_count())
        .map(|t| system.layer(t).model())
        .max_by_key(|m| m.world_count())
        .expect("system has layers")
}

/// Median-of-5 wall time for `f`, called `iters` times per sample.
fn time_ns(iters: usize, mut f: impl FnMut() -> usize) -> u64 {
    let mut samples: Vec<u64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            (start.elapsed().as_nanos() / iters as u128) as u64
        })
        .collect();
    samples.sort_unstable();
    samples[2]
}

struct Row {
    kernel: &'static str,
    seq_ns: u64,
    sharded_ns: u64,
}

fn json_artifact(worlds: usize, rows: &[Row]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"experiment\": \"E16_sharded_kernels\",\n"));
    out.push_str(&format!("  \"worlds\": {worlds},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    out.push_str("  \"equality_asserted\": true,\n");
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let ratio = r.sharded_ns as f64 / r.seq_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"sequential_ns\": {}, \"sharded_ns\": {}, \"sharded_over_sequential\": {:.3}}}{}\n",
            r.kernel,
            r.seq_ns,
            r.sharded_ns,
            ratio,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn bench(c: &mut Criterion) {
    let sc = SequenceTransmission::new(3, Tagging::Alternating, Channel::Lossy);
    let ctx = sc.context();
    let full = FullProtocol::for_context(&ctx);
    let system = generate(&ctx, &full, Recall::Perfect, 8).expect("generates");
    let model = widest_layer(&system);
    let n = model.world_count();
    assert!(
        n > 64 * SHARDS,
        "widest layer ({n} worlds) too narrow to give each of {SHARDS} shards a full word"
    );

    let sender = model.partition(Agent::new(0));
    let receiver = model.partition(Agent::new(1));
    let sat = model
        .satisfying(&kbp_logic::Formula::prop(sc.done_r()))
        .expect("evaluates");
    let group = AgentSet::all(2);

    // Equality first — sharded results must be bit-identical, block ids
    // included (`Partition`'s derived `PartialEq` compares the canonical
    // numbering), before any timing is worth reporting. The table cell
    // then pins a Display-able witness per kernel.
    let mut table = Vec::new();
    let seq_blocks = blocks_inside(sender, &sat);
    assert_eq!(seq_blocks, blocks_inside_sharded(sender, &sat, SHARDS));
    table.push(vec![
        cell("blocks_inside"),
        cell(n),
        expect(
            "sharded = sequential",
            seq_blocks.count(),
            blocks_inside_sharded(sender, &sat, SHARDS).count(),
        ),
    ]);
    let refined = sender.refine_with(receiver);
    assert_eq!(refined, sender.refine_with_sharded(receiver, SHARDS));
    table.push(vec![
        cell("refine_with"),
        cell(n),
        expect(
            "sharded = sequential",
            refined.block_count(),
            sender.refine_with_sharded(receiver, SHARDS).block_count(),
        ),
    ]);
    let joined = sender.join_with(receiver);
    assert_eq!(joined, sender.join_with_sharded(receiver, SHARDS));
    table.push(vec![
        cell("join_with"),
        cell(n),
        expect(
            "sharded = sequential",
            joined.block_count(),
            sender.join_with_sharded(receiver, SHARDS).block_count(),
        ),
    ]);
    let grouped = model.group_join(group).expect("joins");
    assert_eq!(
        grouped,
        model.group_join_sharded(group, SHARDS).expect("joins")
    );
    table.push(vec![
        cell("group_join"),
        cell(n),
        expect(
            "sharded = sequential",
            grouped.block_count(),
            model
                .group_join_sharded(group, SHARDS)
                .expect("joins")
                .block_count(),
        ),
    ]);

    // Timings for the JSON artifact (medians over fixed iteration
    // counts; criterion's own numbers go to stdout as usual).
    let count_of = |p: &Partition| p.block_count();
    let rows = vec![
        Row {
            kernel: "blocks_inside",
            seq_ns: time_ns(50, || blocks_inside(sender, &sat).count()),
            sharded_ns: time_ns(50, || blocks_inside_sharded(sender, &sat, SHARDS).count()),
        },
        Row {
            kernel: "refine_with",
            seq_ns: time_ns(20, || count_of(&sender.refine_with(receiver))),
            sharded_ns: time_ns(20, || {
                count_of(&sender.refine_with_sharded(receiver, SHARDS))
            }),
        },
        Row {
            kernel: "join_with",
            seq_ns: time_ns(20, || count_of(&sender.join_with(receiver))),
            sharded_ns: time_ns(20, || count_of(&sender.join_with_sharded(receiver, SHARDS))),
        },
        Row {
            kernel: "group_join",
            seq_ns: time_ns(20, || count_of(&model.group_join(group).expect("joins"))),
            sharded_ns: time_ns(20, || {
                count_of(&model.group_join_sharded(group, SHARDS).expect("joins"))
            }),
        },
    ];
    let artifact_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sharded_kernels.json"
    );
    std::fs::write(artifact_path, json_artifact(n, &rows)).expect("writes artifact");

    let mut group_b = c.benchmark_group("e16_sharded_kernels");
    group_b.bench_function(BenchmarkId::new("blocks_inside", "seq"), |b| {
        b.iter(|| black_box(blocks_inside(sender, &sat).count()));
    });
    group_b.bench_function(BenchmarkId::new("blocks_inside", "sharded4"), |b| {
        b.iter(|| black_box(blocks_inside_sharded(sender, &sat, SHARDS).count()));
    });
    group_b.bench_function(BenchmarkId::new("refine_with", "seq"), |b| {
        b.iter(|| black_box(sender.refine_with(receiver).block_count()));
    });
    group_b.bench_function(BenchmarkId::new("refine_with", "sharded4"), |b| {
        b.iter(|| black_box(sender.refine_with_sharded(receiver, SHARDS).block_count()));
    });
    group_b.bench_function(BenchmarkId::new("join_with", "seq"), |b| {
        b.iter(|| black_box(sender.join_with(receiver).block_count()));
    });
    group_b.bench_function(BenchmarkId::new("join_with", "sharded4"), |b| {
        b.iter(|| black_box(sender.join_with_sharded(receiver, SHARDS).block_count()));
    });
    group_b.finish();

    report_table(
        "E16 sharded kernels on one wide layer (expected: bit-identical outputs; timings in BENCH_sharded_kernels.json)",
        &["kernel", "worlds", "equal"],
        &table,
    );
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
