//! E12 — Controller extraction: the derived protocol table grows with the
//! horizon, the extracted Moore machines do not. Measures extraction cost
//! and reports table-entries vs machine-states.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::{ControllerProtocol, SyncSolver};
use kbp_scenarios::bit_transmission::{BitTransmission, Channel};
use std::time::Duration;

fn reproduce() {
    let sc = BitTransmission::new(Channel::Lossy);
    let ctx = sc.context();
    let kbp = sc.kbp();
    let mut rows = Vec::new();
    for horizon in [4usize, 8, 12] {
        let solution = SyncSolver::new(&ctx, &kbp)
            .horizon(horizon)
            .solve()
            .expect("solves");
        let table_entries = solution.protocol().len();
        let machines = ControllerProtocol::from_solution(&solution, &kbp).expect("extracts");
        let sender_states = machines
            .controller(sc.sender())
            .expect("present")
            .state_count();
        let receiver_states = machines
            .controller(sc.receiver())
            .expect("present")
            .state_count();
        rows.push(vec![
            cell(horizon),
            cell(table_entries),
            expect("sender states", 2, sender_states),
            expect("receiver states", 2, receiver_states),
        ]);
    }
    report_table(
        "E12 controller extraction (table grows, machines stay 2-state)",
        &["horizon", "table entries", "sender", "receiver"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let sc = BitTransmission::new(Channel::Lossy);
    let ctx = sc.context();
    let kbp = sc.kbp();
    let mut group = c.benchmark_group("e12_controllers");
    for horizon in [4usize, 8, 12, 16] {
        let solution = SyncSolver::new(&ctx, &kbp)
            .horizon(horizon)
            .solve()
            .expect("solves");
        group.bench_with_input(BenchmarkId::new("extract", horizon), &horizon, |b, _| {
            b.iter(|| ControllerProtocol::from_solution(&solution, &kbp).expect("extracts"));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
