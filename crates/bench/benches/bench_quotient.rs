//! E17 — Quotient-first evaluation of one wide layer.
//!
//! The widest slice of a generated sequence-transmission system (hundreds
//! of thousands of worlds) is filled with a batch of epistemic guards two
//! ways: explicitly, and through the engine's bisimulation-quotient stage
//! (`KBP_QUOTIENT_MIN_WORLDS = 0`), which partitions the layer by
//! agent-indistinguishability, evaluates every guard on the quotient
//! model, and expands the satisfaction sets back through the class map.
//!
//! Equality of the two fills — every root's satisfaction set,
//! bit-for-bit — is asserted in-bench before any timing is reported. Per
//! the E14 convention no timing is asserted: the quotient trades one
//! O(n · rounds) partition-refinement pass over the full layer for
//! per-guard kernels that run on the (here, four orders of magnitude
//! smaller) quotient. For a batch of a handful of shallow guards the
//! refinement pass dominates, so the honest expectation on a single vCPU
//! is bounded overhead (≈ 3× measured); the win condition is modal-op
//! count — deeply nested or numerous epistemic guards amortizing one
//! build across many kernel invocations. The measured numbers are
//! recorded in `EXPERIMENTS.md` §E17 and dumped as `BENCH_quotient.json`
//! at the repo root for machine diffing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_kripke::{EvalCache, EvalEngine, S5Model};
use kbp_logic::{Agent, AgentSet, Formula, FormulaArena, FormulaId};
use kbp_scenarios::sequence_transmission::{Channel, SequenceTransmission, Tagging};
use kbp_systems::{generate, FullProtocol, InterpretedSystem, Recall};
use std::time::{Duration, Instant};

fn widest_layer(system: &InterpretedSystem) -> &S5Model {
    (0..system.layer_count())
        .map(|t| system.layer(t).model())
        .max_by_key(|m| m.world_count())
        .expect("system has layers")
}

/// Median-of-5 wall time for `f`, called `iters` times per sample.
fn time_ns(iters: usize, mut f: impl FnMut() -> usize) -> u64 {
    let mut samples: Vec<u64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            (start.elapsed().as_nanos() / iters as u128) as u64
        })
        .collect();
    samples.sort_unstable();
    samples[2]
}

/// The guard batch: every epistemic modality over the receiver-done
/// proposition, plus a nested guard — the shape solver layers actually
/// present to the engine.
fn guards(sc: &SequenceTransmission) -> Vec<Formula> {
    let done = Formula::prop(sc.done_r());
    let g = AgentSet::all(2);
    vec![
        Formula::knows(Agent::new(0), done.clone()),
        Formula::knows(Agent::new(1), done.clone()),
        Formula::Everyone(g, Box::new(done.clone())),
        Formula::common(g, done.clone()),
        Formula::Distributed(g, Box::new(done.clone())),
        Formula::knows(
            Agent::new(0),
            Formula::not(Formula::knows(Agent::new(1), done)),
        ),
    ]
}

/// One full cache fill of `ids` on `model`; returns the cache for
/// inspection.
fn fill(engine: &EvalEngine, model: &S5Model, ids: &[FormulaId]) -> EvalCache {
    let mut cache = EvalCache::new();
    engine.populate(model, &mut cache, ids).expect("populates");
    cache
}

fn json_artifact(
    worlds: usize,
    quotient_worlds: usize,
    explicit_ns: u64,
    quotient_ns: u64,
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let ratio = quotient_ns as f64 / explicit_ns.max(1) as f64;
    format!(
        "{{\n  \"experiment\": \"E17_quotient_layer\",\n  \"worlds\": {worlds},\n  \
         \"quotient_worlds\": {quotient_worlds},\n  \"available_parallelism\": {cores},\n  \
         \"equality_asserted\": true,\n  \"explicit_fill_ns\": {explicit_ns},\n  \
         \"quotient_fill_ns\": {quotient_ns},\n  \"quotient_over_explicit\": {ratio:.3}\n}}\n"
    )
}

fn bench(c: &mut Criterion) {
    let sc = SequenceTransmission::new(3, Tagging::Alternating, Channel::Lossy);
    let ctx = sc.context();
    let full = FullProtocol::for_context(&ctx);
    let system = generate(&ctx, &full, Recall::Perfect, 8).expect("generates");
    let model = widest_layer(&system);
    let n = model.world_count();

    let mut explicit_engine = EvalEngine::new(FormulaArena::new())
        .with_threads(1)
        .with_quotient_min_worlds(usize::MAX);
    let explicit_ids: Vec<_> = guards(&sc)
        .iter()
        .map(|f| explicit_engine.intern(f))
        .collect();
    let explicit_engine = &explicit_engine;

    let mut quotient_engine = EvalEngine::new(FormulaArena::new())
        .with_threads(1)
        .with_quotient_min_worlds(0);
    let quotient_ids: Vec<_> = guards(&sc)
        .iter()
        .map(|f| quotient_engine.intern(f))
        .collect();
    let quotient_engine = &quotient_engine;

    // Equality first: the quotient path must reproduce the explicit
    // satisfaction set of every guard bit-for-bit before any timing is
    // worth reporting — and it must have genuinely engaged (a saturated
    // quotient would make the comparison vacuous).
    let explicit_cache = fill(explicit_engine, model, &explicit_ids);
    let quotient_cache = fill(quotient_engine, model, &quotient_ids);
    let qn = quotient_cache.quotient_worlds();
    assert!(
        qn > 0 && qn < n,
        "expected a strictly compressing quotient on the wide layer, got {qn} of {n}"
    );
    let mut table = Vec::new();
    for (i, (&eid, &qid)) in explicit_ids.iter().zip(&quotient_ids).enumerate() {
        let e = explicit_cache.get(eid).expect("explicit root cached");
        let q = quotient_cache.get(qid).expect("quotient root cached");
        assert_eq!(
            e, q,
            "guard {i} diverged between explicit and quotient fills"
        );
        table.push(vec![
            cell(format!("guard {i}")),
            cell(n),
            cell(qn),
            expect("quotient = explicit", e.count(), q.count()),
        ]);
    }

    // Timings for the JSON artifact: one full batch fill each way, cold
    // cache every iteration (the quotient fill pays its bisimulation
    // build every time — that is the honest unit a solver layer pays).
    let explicit_ns = time_ns(3, || {
        fill(explicit_engine, model, &explicit_ids).cached_formulas()
    });
    let quotient_ns = time_ns(3, || {
        fill(quotient_engine, model, &quotient_ids).cached_formulas()
    });
    let artifact_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quotient.json");
    std::fs::write(
        artifact_path,
        json_artifact(n, qn, explicit_ns, quotient_ns),
    )
    .expect("writes artifact");

    let mut group = c.benchmark_group("e17_quotient_layer");
    group.bench_function(BenchmarkId::new("batch_fill", "explicit"), |b| {
        b.iter(|| black_box(fill(explicit_engine, model, &explicit_ids).cached_formulas()));
    });
    group.bench_function(BenchmarkId::new("batch_fill", "quotient"), |b| {
        b.iter(|| black_box(fill(quotient_engine, model, &quotient_ids).cached_formulas()));
    });
    group.finish();

    report_table(
        "E17 quotient-first fill of one wide layer (expected: bit-identical sets; timings in BENCH_quotient.json)",
        &["guard", "worlds", "quotient", "equal"],
        &table,
    );
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
