//! E6 — Common knowledge as the limit of `E_G^k`: reproduce the strictly
//! descending everyone-knows chain converging to `C_G`, then measure the
//! `C_G` fixpoint on growing random S5 models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, report_table};
use kbp_kripke::{S5Builder, S5Model};
use kbp_logic::{Agent, AgentSet, Formula, PropId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const AGENTS: usize = 3;

/// A random S5 model: `n` worlds, random prop valuation, each agent's
/// partition built from `n / cell_size` random classes.
fn random_model(seed: u64, n: usize, classes: usize) -> S5Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = S5Builder::new(AGENTS, 1);
    let mut keys: Vec<Vec<u32>> = (0..AGENTS).map(|_| Vec::with_capacity(n)).collect();
    for _ in 0..n {
        // p true on ~95% of worlds so knowledge chains are nontrivial.
        let props = if rng.gen_ratio(19, 20) {
            vec![PropId::new(0)]
        } else {
            vec![]
        };
        b.add_world(props);
        for ks in &mut keys {
            ks.push(rng.gen_range(0..classes as u32));
        }
    }
    for (i, ks) in keys.iter().enumerate() {
        let ks = ks.clone();
        b.partition_by_key(Agent::new(i), move |w| ks[w.index()]);
    }
    b.build()
}

fn reproduce() {
    let m = random_model(7, 4000, 80);
    let g = AgentSet::all(AGENTS);
    let p = Formula::prop(PropId::new(0));
    let mut rows = Vec::new();
    let mut f = p.clone();
    let mut prev = m.satisfying(&p).expect("evaluable").count();
    rows.push(vec![cell("p"), cell(prev)]);
    for k in 1..=4 {
        f = Formula::Everyone(g, Box::new(f));
        let count = m.satisfying(&f).expect("evaluable").count();
        assert!(count <= prev, "E^k chain must be descending");
        prev = count;
        rows.push(vec![cell(format!("E^{k} p")), cell(count)]);
    }
    let c = m
        .satisfying(&Formula::common(g, p))
        .expect("evaluable")
        .count();
    assert!(c <= prev, "C p is below every E^k p");
    rows.push(vec![cell("C p"), cell(c)]);
    report_table(
        "E6 common knowledge (descending E^k chain, C below all of it; 4000 worlds)",
        &["formula", "worlds satisfying"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let g = AgentSet::all(AGENTS);
    let p = Formula::prop(PropId::new(0));
    let mut group = c.benchmark_group("e6_common_knowledge");
    for &n in &[1_000usize, 4_000, 16_000, 64_000] {
        let m = random_model(42, n, n / 50);
        let ck = Formula::common(g, p.clone());
        group.bench_with_input(BenchmarkId::new("C", n), &n, |b, _| {
            b.iter(|| m.satisfying(&ck).expect("evaluable"));
        });
        let e2 = Formula::Everyone(g, Box::new(Formula::Everyone(g, Box::new(p.clone()))));
        group.bench_with_input(BenchmarkId::new("EE", n), &n, |b, _| {
            b.iter(|| m.satisfying(&e2).expect("evaluable"));
        });
        let d = Formula::Distributed(g, Box::new(p.clone()));
        group.bench_with_input(BenchmarkId::new("D", n), &n, |b, _| {
            b.iter(|| m.satisfying(&d).expect("evaluable"));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
