//! E9 — Ablation: perfect recall vs observational local states.
//! Reproduce the structural difference (layer growth vs stabilisation)
//! and measure the cost difference on the transmission scenarios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, report_table};
use kbp_core::SyncSolver;
use kbp_scenarios::bit_transmission::{BitTransmission, Channel};
use kbp_systems::Recall;
use std::time::Duration;

fn reproduce() {
    let sc = BitTransmission::new(Channel::Lossy);
    let ctx = sc.context();
    let kbp = sc.kbp();
    let horizon = 8;
    let perfect = SyncSolver::new(&ctx, &kbp)
        .horizon(horizon)
        .solve()
        .expect("solves");
    let obs = SyncSolver::new(&ctx, &kbp)
        .horizon(horizon)
        .recall(Recall::Observational)
        .solve()
        .expect("solves");
    let mut rows = Vec::new();
    for t in 0..=horizon {
        rows.push(vec![
            cell(t),
            cell(perfect.system().layer(t).len()),
            cell(obs.system().layer(t).len()),
        ]);
    }
    rows.push(vec![
        cell("stab."),
        cell(format!("{:?}", perfect.stabilized())),
        cell(format!("{:?}", obs.stabilized())),
    ]);
    assert!(obs.stabilized().is_some(), "observational must stabilize");
    assert!(
        perfect.system().layer(horizon).len() > obs.system().layer(horizon).len(),
        "perfect recall must keep splitting histories"
    );
    report_table(
        "E9 recall ablation on bit transmission (layer sizes)",
        &["layer", "perfect", "observational"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e9_recall");
    for horizon in [4usize, 8, 12, 16] {
        let sc = BitTransmission::new(Channel::Lossy);
        let ctx = sc.context();
        let kbp = sc.kbp();
        group.bench_with_input(
            BenchmarkId::new("perfect", horizon),
            &horizon,
            |b, &horizon| {
                b.iter(|| {
                    SyncSolver::new(&ctx, &kbp)
                        .horizon(horizon)
                        .solve()
                        .expect("solves")
                });
            },
        );
        let sc2 = BitTransmission::new(Channel::Lossy);
        let ctx2 = sc2.context();
        let kbp2 = sc2.kbp();
        group.bench_with_input(
            BenchmarkId::new("observational", horizon),
            &horizon,
            |b, &horizon| {
                b.iter(|| {
                    SyncSolver::new(&ctx2, &kbp2)
                        .horizon(horizon)
                        .recall(Recall::Observational)
                        .solve()
                        .expect("solves")
                });
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
