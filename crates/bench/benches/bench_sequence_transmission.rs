//! E4 — Sequence transmission: reproduce the tagging × channel matrix
//! (the alternating-bit protocol's correctness and its untagged failure),
//! then measure solving against the sequence length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbp_bench::{cell, expect, report_table};
use kbp_core::SyncSolver;
use kbp_scenarios::sequence_transmission::{Channel, SequenceTransmission, Tagging};
use std::time::Duration;

fn reproduce() {
    let cases = [
        (Tagging::Alternating, Channel::Lossy, true, false),
        (Tagging::Alternating, Channel::Reliable, true, true),
        (Tagging::None, Channel::Lossy, false, false),
        (Tagging::None, Channel::Reliable, false, true),
    ];
    let mut rows = Vec::new();
    for (tagging, channel, exp_safe, exp_complete) in cases {
        let sc = SequenceTransmission::new(2, tagging, channel);
        let ctx = sc.context();
        let solution = SyncSolver::new(&ctx, &sc.kbp())
            .horizon(8)
            .solve()
            .expect("solves");
        let sys = solution.system();
        let safe = sys.holds_initially(&sc.prefix_safety()).expect("evaluable");
        let complete = sys.holds_initially(&sc.liveness()).expect("evaluable");
        rows.push(vec![
            cell(format!("{tagging:?}")),
            cell(format!("{channel:?}")),
            cell(safe),
            cell(complete),
            expect("prefix safety", exp_safe, safe),
            expect("completion", exp_complete, complete),
        ]);
    }
    report_table(
        "E4 sequence transmission (alternating-bit emerges; untagged corrupts)",
        &[
            "tagging",
            "channel",
            "safe",
            "completes",
            "safety",
            "liveness",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("e4_sequence_transmission_solve");
    for m in [1u32, 2] {
        group.bench_with_input(BenchmarkId::new("lossy", m), &m, |b, &m| {
            let sc = SequenceTransmission::new(m, Tagging::Alternating, Channel::Lossy);
            let ctx = sc.context();
            let kbp = sc.kbp();
            let horizon = (2 * m as usize) + 2;
            b.iter(|| {
                SyncSolver::new(&ctx, &kbp)
                    .horizon(horizon)
                    .solve()
                    .expect("solves")
            });
        });
    }
    for m in [1u32, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("reliable", m), &m, |b, &m| {
            let sc = SequenceTransmission::new(m, Tagging::Alternating, Channel::Reliable);
            let ctx = sc.context();
            let kbp = sc.kbp();
            let horizon = (2 * m as usize) + 2;
            b.iter(|| {
                SyncSolver::new(&ctx, &kbp)
                    .horizon(horizon)
                    .solve()
                    .expect("solves")
            });
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
