//! Shared helpers for the experiment/benchmark harness.
//!
//! The PODC'95 paper is a theory paper: it reports theorems and worked
//! examples rather than measured tables. Each bench target therefore does
//! two jobs:
//!
//! 1. **Reproduce** — print the qualitative result the paper states
//!    (derived protocol shape, yes-rounds, implementation counts, …),
//!    verified against expectations, as a table on stderr;
//! 2. **Measure** — criterion timings of the algorithms over parameter
//!    sweeps, which is what a tool paper for this system would report.
//!
//! `EXPERIMENTS.md` at the workspace root indexes the targets and records
//! expected-vs-measured rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a titled, aligned table to stderr (criterion owns stdout).
///
/// # Example
///
/// ```
/// kbp_bench::report_table(
///     "E2 muddy children",
///     &["n", "k", "yes round"],
///     &[vec!["3".into(), "2".into(), "2".into()]],
/// );
/// ```
pub fn report_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    eprintln!("\n== {title} ==");
    let fmt_row = |cells: Vec<String>| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(4)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    eprintln!(
        "{}",
        fmt_row(header.iter().map(|s| (*s).to_owned()).collect())
    );
    for row in rows {
        eprintln!("{}", fmt_row(row.clone()));
    }
}

/// Formats any displayable cell.
pub fn cell(x: impl Display) -> String {
    x.to_string()
}

/// Asserts a reproduced value against the paper's expectation, recording
/// the comparison in the table row.
///
/// Returns `"ok"` for the row; panics on mismatch so regressions are
/// caught even in bench runs.
///
/// # Panics
///
/// Panics when `expected != measured`.
pub fn expect<T: PartialEq + Display>(what: &str, expected: T, measured: T) -> String {
    assert!(
        expected == measured,
        "experiment regression: {what}: expected {expected}, measured {measured}"
    );
    "ok".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_passes_on_equal() {
        assert_eq!(expect("x", 3, 3), "ok");
    }

    #[test]
    #[should_panic(expected = "experiment regression")]
    fn expect_panics_on_mismatch() {
        let _ = expect("x", 3, 4);
    }

    #[test]
    fn table_renders_without_panic() {
        report_table(
            "demo",
            &["a", "b"],
            &[
                vec!["1".into(), "22".into()],
                vec!["333".into(), "4".into()],
            ],
        );
    }
}
