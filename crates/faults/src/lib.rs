//! Fault-injection combinators over any [`Context`](kbp_systems::Context).
//!
//! FHMV's framework puts *all* nondeterminism — message loss, crashes,
//! noise — inside the context `γ = (P_e, G_0, τ)`: faults are not a
//! different semantics, they are a different environment. This crate makes
//! that observation executable. A [`FaultSchedule`] is a deterministic,
//! seed-driven description of *which* faults occur *when*:
//!
//! * **environment faults** ([`EnvFault`]) — force or restrict the
//!   environment's move at a step (message loss as a scheduled event
//!   rather than a nondeterministic branch), deliver a step's effect twice
//!   ([`EnvFault::Duplicate`]), or stall the system for a window
//!   ([`EnvFault::Delay`]);
//! * **crash faults** ([`CrashKind`]) — crash-stop and crash-recovery per
//!   agent: a crashed agent's action is replaced by a designated no-op and
//!   its observation *freezes* at the crash-onset value (it learns nothing
//!   while down);
//! * **observation corruption** — an agent's observation collapses to a
//!   sentinel value for a step. The collapse is deliberately
//!   *non-injective*: every state looks the same through a corrupted
//!   sensor, which genuinely destroys knowledge (a bijective scrambling
//!   would leave the induced partitions — hence all knowledge — intact).
//!
//! [`FaultyContext`] applies a schedule to any context, yielding a new
//! context that can be handed to the same solver, enumerator and model
//! checker. When the schedule contains no faults the wrapper is an exact
//! pass-through — same states, same observations, bit-identical generated
//! systems — so fault-free operation costs nothing and is testable as an
//! identity.
//!
//! # Example
//!
//! ```
//! use kbp_faults::{FaultSchedule, FaultyContext, EnvFault};
//! use kbp_scenarios::bit_transmission::{BitTransmission, Channel};
//! use kbp_core::SyncSolver;
//! use kbp_systems::EnvActionId;
//!
//! let sc = BitTransmission::new(Channel::Lossy);
//! // Lose every message in both directions, forever.
//! let schedule = FaultSchedule::new(7).env_fault_always(EnvFault::Force(EnvActionId(3)));
//! let faulty = FaultyContext::new(sc.context(), schedule);
//! let solution = SyncSolver::new(&faulty, &sc.kbp()).horizon(4).solve()?;
//! // Nothing ever arrives: the receiver never learns the bit.
//! let sys = solution.system();
//! assert!(!sys.holds_initially(
//!     &kbp_logic::Formula::eventually(kbp_logic::Formula::prop(sc.receiver_has_bit()))
//! ).unwrap());
//! # Ok::<(), kbp_core::SolveError>(())
//! ```

// Robustness gate: the library surface must stay panic-free so malformed
// inputs (e.g. from the fault-injection layer) surface as typed errors.
// Tests and benches are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod schedule;

pub use context::{FaultyContext, CORRUPT_OBS};
pub use schedule::{loss_lattice, CrashKind, EnvFault, FaultSchedule};
