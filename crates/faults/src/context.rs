//! The fault-injecting context combinator.

use crate::schedule::{EnvFault, FaultSchedule};
use kbp_logic::{Agent, PropId, Vocabulary};
use kbp_systems::{ActionId, Context, ContextError, EnvActionId, GlobalState, JointAction, Obs};

/// The sentinel observation a corrupted sensor reports. Every state maps
/// to this one value while corruption is active — a non-injective
/// collapse, so corruption genuinely destroys information (a bijective
/// scrambling would leave every knowledge partition unchanged). Contexts
/// that legitimately emit `Obs(u64::MAX)` should not be combined with
/// observation corruption.
pub const CORRUPT_OBS: Obs = Obs(u64::MAX);

/// A [`Context`] that injects the faults of a [`FaultSchedule`] into a
/// wrapped context.
///
/// With a fault-free schedule the wrapper delegates every method verbatim
/// — same states, same observations, bit-identical generated systems.
/// With faults, the global state is extended by bookkeeping registers
/// (`[inner…, clock, per agent: frozen obs lo, hi]`): a clock for
/// time-indexed fault lookup, and the crash-onset observation of each
/// crashed agent (its senses freeze while it is down).
///
/// Crashed agents take a designated no-op action regardless of what their
/// protocol chooses — [`ActionId(0)`] unless overridden with
/// [`with_noop`](Self::with_noop).
pub struct FaultyContext<C> {
    inner: C,
    schedule: FaultSchedule,
    /// Register count of the wrapped context's states (faulty states
    /// carry extra registers after this prefix).
    inner_regs: usize,
    agents: usize,
    noop: Vec<ActionId>,
}

impl<C: Context> FaultyContext<C> {
    /// Wraps `inner`, injecting the faults of `schedule`.
    #[must_use]
    pub fn new(inner: C, schedule: FaultSchedule) -> Self {
        let inner_regs = inner.initial_states().first().map_or(0, GlobalState::len);
        let agents = inner.agent_count();
        FaultyContext {
            inner,
            schedule,
            inner_regs,
            agents,
            noop: vec![ActionId(0); agents],
        }
    }

    /// Sets the designated no-op action a crashed `agent` is forced to
    /// take (default: `ActionId(0)`). Out-of-range agents are ignored.
    #[must_use]
    pub fn with_noop(mut self, agent: Agent, action: ActionId) -> Self {
        if let Some(slot) = self.noop.get_mut(agent.index()) {
            *slot = action;
        }
        self
    }

    /// The wrapped context.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The fault schedule.
    #[must_use]
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    fn clock_idx(&self) -> usize {
        self.inner_regs
    }

    fn frozen_idx(&self, agent: usize) -> usize {
        self.inner_regs + 1 + 2 * agent
    }

    /// The time step encoded in a wrapped state's clock register.
    fn time_of(&self, state: &GlobalState) -> usize {
        state.reg(self.clock_idx()) as usize
    }

    /// The wrapped context's view of a faulty state (bookkeeping registers
    /// stripped). States reaching this context always carry them — they
    /// are produced by our own `initial_states` / `transition`.
    fn strip(&self, state: &GlobalState) -> GlobalState {
        GlobalState::new(state.regs()[..self.inner_regs].to_vec())
    }

    fn frozen_obs(&self, state: &GlobalState, agent: usize) -> Obs {
        let lo = u64::from(state.reg(self.frozen_idx(agent)));
        let hi = u64::from(state.reg(self.frozen_idx(agent) + 1));
        Obs(lo | (hi << 32))
    }

    /// Assembles the faulty successor state: inner registers, bumped
    /// clock, and frozen-observation registers (captured at crash onset,
    /// carried while down, cleared on recovery).
    fn wrap(&self, next_inner: GlobalState, t_next: usize, prev: &GlobalState) -> GlobalState {
        let mut regs = next_inner.regs().to_vec();
        regs.push(t_next as u32);
        for i in 0..self.agents {
            let agent = Agent::new(i);
            if self.schedule.is_crashed(agent, t_next) {
                let obs = if t_next > 0 && self.schedule.is_crashed(agent, t_next - 1) {
                    // Still down: carry the onset observation unchanged.
                    self.frozen_obs(prev, i)
                } else {
                    // Crash onset: the senses freeze at what the agent
                    // would have seen right now.
                    self.inner.observe(agent, &next_inner)
                };
                regs.push(obs.0 as u32);
                regs.push((obs.0 >> 32) as u32);
            } else {
                regs.push(0);
                regs.push(0);
            }
        }
        GlobalState::new(regs)
    }
}

impl<C: Context> Context for FaultyContext<C> {
    fn agent_count(&self) -> usize {
        self.inner.agent_count()
    }

    fn vocabulary(&self) -> &Vocabulary {
        self.inner.vocabulary()
    }

    fn initial_states(&self) -> Vec<GlobalState> {
        if !self.schedule.has_faults() {
            return self.inner.initial_states();
        }
        self.inner
            .initial_states()
            .into_iter()
            .map(|s| {
                let mut regs = s.regs().to_vec();
                regs.push(0); // clock
                for i in 0..self.agents {
                    let agent = Agent::new(i);
                    if self.schedule.is_crashed(agent, 0) {
                        let obs = self.inner.observe(agent, &s);
                        regs.push(obs.0 as u32);
                        regs.push((obs.0 >> 32) as u32);
                    } else {
                        regs.push(0);
                        regs.push(0);
                    }
                }
                GlobalState::new(regs)
            })
            .collect()
    }

    fn env_actions(&self, state: &GlobalState) -> Vec<EnvActionId> {
        if !self.schedule.has_faults() {
            return self.inner.env_actions(state);
        }
        let t = self.time_of(state);
        let s_in = self.strip(state);
        match self.schedule.env_fault(t) {
            Some(EnvFault::Force(a)) => vec![a],
            Some(EnvFault::Restrict(allowed)) => {
                let offer = self.inner.env_actions(&s_in);
                let narrowed: Vec<EnvActionId> = offer
                    .iter()
                    .copied()
                    .filter(|a| allowed.contains(a))
                    .collect();
                if narrowed.is_empty() {
                    offer
                } else {
                    narrowed
                }
            }
            // A stalled step ignores the environment's move entirely, so
            // offering more than one choice would only multiply identical
            // successors.
            Some(EnvFault::Delay { .. }) => self
                .inner
                .env_actions(&s_in)
                .first()
                .map_or_else(|| vec![EnvActionId(0)], |&a| vec![a]),
            Some(EnvFault::Duplicate) | None => self.inner.env_actions(&s_in),
        }
    }

    fn action_count(&self, agent: Agent) -> usize {
        self.inner.action_count(agent)
    }

    fn transition(&self, state: &GlobalState, joint: &JointAction) -> GlobalState {
        if !self.schedule.has_faults() {
            return self.inner.transition(state, joint);
        }
        let t = self.time_of(state);
        let s_in = self.strip(state);
        // Crashed agents act their designated no-op, whatever the
        // protocol chose.
        let mut acts = joint.acts.clone();
        for (i, act) in acts.iter_mut().enumerate() {
            if self.schedule.is_crashed(Agent::new(i), t) {
                *act = self.noop.get(i).copied().unwrap_or(ActionId(0));
            }
        }
        let adjusted = JointAction::new(joint.env, acts);
        let next_inner = match self.schedule.env_fault(t) {
            Some(EnvFault::Delay { .. }) => s_in.clone(),
            Some(EnvFault::Duplicate) => {
                let once = self.inner.transition(&s_in, &adjusted);
                self.inner.transition(&once, &adjusted)
            }
            _ => self.inner.transition(&s_in, &adjusted),
        };
        self.wrap(next_inner, t + 1, state)
    }

    fn observe(&self, agent: Agent, state: &GlobalState) -> Obs {
        if !self.schedule.has_faults() {
            return self.inner.observe(agent, state);
        }
        let t = self.time_of(state);
        if self.schedule.is_crashed(agent, t) {
            return self.frozen_obs(state, agent.index());
        }
        if self.schedule.corrupts(agent, t) {
            return CORRUPT_OBS;
        }
        self.inner.observe(agent, &self.strip(state))
    }

    fn prop_holds(&self, prop: PropId, state: &GlobalState) -> bool {
        if !self.schedule.has_faults() {
            return self.inner.prop_holds(prop, state);
        }
        self.inner.prop_holds(prop, &self.strip(state))
    }

    fn action_name(&self, agent: Agent, action: ActionId) -> String {
        self.inner.action_name(agent, action)
    }

    fn env_action_name(&self, action: EnvActionId) -> String {
        self.inner.env_action_name(action)
    }

    fn validate(&self) -> Result<(), ContextError> {
        self.inner.validate()
    }
}

impl<C: std::fmt::Debug> std::fmt::Debug for FaultyContext<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyContext")
            .field("inner", &self.inner)
            .field("schedule", &self.schedule)
            .field("inner_regs", &self.inner_regs)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::CrashKind;
    use kbp_systems::ContextBuilder;

    /// One agent with a counter it can increment and fully observe; the
    /// environment may add 0 or 10 per step.
    fn counter() -> impl Context {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("a");
        let big = voc.add_prop("big");
        ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["noop", "inc"])
            .env_actions(["calm", "gust"])
            .env_protocol(|_| vec![EnvActionId(0), EnvActionId(1)])
            .transition(|s, j| {
                let mut v = s.reg(0);
                if j.acts[0] == ActionId(1) {
                    v += 1;
                }
                if j.env == EnvActionId(1) {
                    v += 10;
                }
                s.with_reg(0, v)
            })
            .observe(|_, s| Obs(u64::from(s.reg(0))))
            .props(move |p, s| p == big && s.reg(0) >= 10)
            .build()
    }

    fn joint(env: u32, act: u32) -> JointAction {
        JointAction::new(EnvActionId(env), vec![ActionId(act)])
    }

    #[test]
    fn zero_fault_wrapper_is_transparent() {
        let plain = counter();
        let faulty = FaultyContext::new(counter(), FaultSchedule::new(123));
        assert_eq!(faulty.initial_states(), plain.initial_states());
        let s0 = &plain.initial_states()[0];
        assert_eq!(faulty.env_actions(s0), plain.env_actions(s0));
        let j = joint(1, 1);
        assert_eq!(faulty.transition(s0, &j), plain.transition(s0, &j));
        assert_eq!(
            faulty.observe(Agent::new(0), s0),
            plain.observe(Agent::new(0), s0)
        );
        assert!(faulty.validate().is_ok());
    }

    #[test]
    fn forced_env_action_overrides_the_offer() {
        let schedule = FaultSchedule::new(0).env_fault_at(0, EnvFault::Force(EnvActionId(0)));
        let faulty = FaultyContext::new(counter(), schedule);
        let s0 = &faulty.initial_states()[0];
        assert_eq!(faulty.env_actions(s0), vec![EnvActionId(0)]);
        // At time 1 the fault is gone: full offer again.
        let s1 = faulty.transition(s0, &joint(0, 0));
        assert_eq!(
            faulty.env_actions(&s1),
            vec![EnvActionId(0), EnvActionId(1)]
        );
    }

    #[test]
    fn restrict_intersects_and_never_empties() {
        let schedule = FaultSchedule::new(0)
            .env_fault_at(0, EnvFault::Restrict(vec![EnvActionId(1)]))
            .env_fault_at(1, EnvFault::Restrict(vec![EnvActionId(9)]));
        let faulty = FaultyContext::new(counter(), schedule);
        let s0 = &faulty.initial_states()[0];
        assert_eq!(faulty.env_actions(s0), vec![EnvActionId(1)]);
        // An impossible restriction falls back to the full offer.
        let s1 = faulty.transition(s0, &joint(1, 0));
        assert_eq!(
            faulty.env_actions(&s1),
            vec![EnvActionId(0), EnvActionId(1)]
        );
    }

    #[test]
    fn delay_stalls_the_inner_state() {
        let schedule = FaultSchedule::new(0).env_fault_at(0, EnvFault::Delay { hold: 2 });
        let faulty = FaultyContext::new(counter(), schedule);
        let s0 = faulty.initial_states()[0].clone();
        // The agent tries to increment; the stalled steps swallow it.
        let s1 = faulty.transition(&s0, &joint(1, 1));
        assert_eq!(s1.reg(0), 0, "stalled step must not change inner state");
        let s2 = faulty.transition(&s1, &joint(1, 1));
        assert_eq!(s2.reg(0), 0);
        // Third step runs normally.
        let s3 = faulty.transition(&s2, &joint(0, 1));
        assert_eq!(s3.reg(0), 1);
        // The clock still advanced through the stall.
        assert_eq!(faulty.time_of(&s3), 3);
    }

    #[test]
    fn duplicate_applies_the_step_twice() {
        let schedule = FaultSchedule::new(0).env_fault_at(0, EnvFault::Duplicate);
        let faulty = FaultyContext::new(counter(), schedule);
        let s0 = faulty.initial_states()[0].clone();
        let s1 = faulty.transition(&s0, &joint(1, 1));
        // inc + gust, twice: (1 + 10) * 2.
        assert_eq!(s1.reg(0), 22);
    }

    #[test]
    fn crashed_agent_noops_and_freezes() {
        let schedule =
            FaultSchedule::new(0).crash(Agent::new(0), CrashKind::Recovery { down: 1, up: 3 });
        let faulty = FaultyContext::new(counter(), schedule);
        let a = Agent::new(0);
        let s0 = faulty.initial_states()[0].clone();
        // t=0: running; increments apply.
        let s1 = faulty.transition(&s0, &joint(0, 1));
        assert_eq!(s1.reg(0), 1);
        // t=1: down. Its action is discarded; environment still acts.
        let s2 = faulty.transition(&s1, &joint(1, 1));
        assert_eq!(s2.reg(0), 11, "crashed agent's inc must be dropped");
        // Observation frozen at the crash-onset value (counter was 1).
        assert_eq!(faulty.observe(a, &s1), Obs(1));
        assert_eq!(faulty.observe(a, &s2), Obs(1), "senses frozen while down");
        // t=3: recovered — sees the current counter again.
        let s3 = faulty.transition(&s2, &joint(0, 1));
        assert_eq!(faulty.observe(a, &s3), Obs(u64::from(s3.reg(0))));
        assert_eq!(s3.reg(0), 11, "still down at t=2");
    }

    #[test]
    fn corruption_collapses_observations() {
        let schedule = FaultSchedule::new(0).corrupt_observation_at(Agent::new(0), 1);
        let faulty = FaultyContext::new(counter(), schedule);
        let a = Agent::new(0);
        let s0 = faulty.initial_states()[0].clone();
        let s1a = faulty.transition(&s0, &joint(0, 0));
        let s1b = faulty.transition(&s0, &joint(1, 1));
        assert_ne!(s1a.reg(0), s1b.reg(0));
        // Distinct states, one corrupted observation: non-injective.
        assert_eq!(faulty.observe(a, &s1a), CORRUPT_OBS);
        assert_eq!(faulty.observe(a, &s1b), CORRUPT_OBS);
        assert_ne!(faulty.observe(a, &s0), CORRUPT_OBS);
    }
}
