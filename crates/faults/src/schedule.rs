//! Deterministic, seed-driven fault schedules.

use kbp_logic::Agent;
use kbp_systems::EnvActionId;
use std::collections::BTreeMap;
use std::fmt;

/// A fault applied to the environment's move at one time step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvFault {
    /// The environment is forced to take exactly this action (e.g. the
    /// "lose the message" move). The action must be meaningful to the
    /// wrapped context's transition function.
    Force(EnvActionId),
    /// The environment's choice is restricted to the given set
    /// (intersection with the context's own offer; if the intersection is
    /// empty the restriction is ignored rather than wedging the system).
    Restrict(Vec<EnvActionId>),
    /// The step's effect is applied twice: the transition runs two times
    /// with the same joint action (a duplicated delivery).
    Duplicate,
    /// The system stalls for `hold` consecutive steps starting here: the
    /// global state does not change (messages in flight are delayed).
    Delay {
        /// Number of consecutive stalled steps.
        hold: usize,
    },
}

impl fmt::Display for EnvFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvFault::Force(a) => write!(f, "force {a}"),
            EnvFault::Restrict(set) => write!(f, "restrict to {} action(s)", set.len()),
            EnvFault::Duplicate => write!(f, "duplicate delivery"),
            EnvFault::Delay { hold } => write!(f, "delay {hold} step(s)"),
        }
    }
}

/// How an agent crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Crash-stop: down from time `at` onwards, never recovers.
    Stop {
        /// First time step at which the agent is down.
        at: usize,
    },
    /// Crash-recovery: down during `down..up`, running again from `up`.
    Recovery {
        /// First time step at which the agent is down.
        down: usize,
        /// First time step at which the agent runs again.
        up: usize,
    },
}

impl CrashKind {
    /// Whether the agent is down at time `t`.
    #[must_use]
    pub fn is_down(&self, t: usize) -> bool {
        match *self {
            CrashKind::Stop { at } => t >= at,
            CrashKind::Recovery { down, up } => t >= down && t < up,
        }
    }
}

/// SplitMix64-style avalanche of a composite key. Deterministic across
/// runs and platforms; this is what makes a seeded schedule replayable.
fn mix(seed: u64, domain: u64, time: u64, agent: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(domain.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(time.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(agent.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault schedule: given the seed and the configured
/// rules, whether a fault is active at time `t` is a pure function —
/// running the same schedule twice yields the *same* faulty context,
/// hence the same generated system and the same (partial) solution.
///
/// An empty schedule ([`FaultSchedule::new`] with no rules added) has
/// [`has_faults`](Self::has_faults)` == false` and makes
/// [`FaultyContext`](crate::FaultyContext) an exact pass-through.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    seed: u64,
    env_at: BTreeMap<usize, EnvFault>,
    env_always: Option<EnvFault>,
    /// Seeded random env faults: applied at `t` when
    /// `mix(seed, domain, t) % 1000 < rate`.
    env_random: Vec<(EnvFault, u16)>,
    crashes: Vec<(Agent, CrashKind)>,
    corrupt_at: Vec<(Agent, usize)>,
    corrupt_random: Vec<(Agent, u16)>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule with the given seed. The seed only
    /// matters once a `random_*` rule is added.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            ..FaultSchedule::default()
        }
    }

    /// The seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules an environment fault at exactly time `t`.
    #[must_use]
    pub fn env_fault_at(mut self, t: usize, fault: EnvFault) -> Self {
        self.env_at.insert(t, fault);
        self
    }

    /// Schedules an environment fault at *every* time step (e.g. unbounded
    /// message loss: `Force(lose_everything)` forever).
    #[must_use]
    pub fn env_fault_always(mut self, fault: EnvFault) -> Self {
        self.env_always = Some(fault);
        self
    }

    /// Schedules a seeded random environment fault: at each time step the
    /// fault fires with probability `per_mille / 1000`, decided by hashing
    /// `(seed, rule, t)` — deterministic for a fixed seed.
    #[must_use]
    pub fn random_env_fault(mut self, fault: EnvFault, per_mille: u16) -> Self {
        self.env_random.push((fault, per_mille.min(1000)));
        self
    }

    /// Schedules a crash for `agent`.
    #[must_use]
    pub fn crash(mut self, agent: Agent, kind: CrashKind) -> Self {
        self.crashes.push((agent, kind));
        self
    }

    /// Corrupts `agent`'s observation at exactly time `t` (collapsed to
    /// the [`CORRUPT_OBS`](crate::CORRUPT_OBS) sentinel).
    #[must_use]
    pub fn corrupt_observation_at(mut self, agent: Agent, t: usize) -> Self {
        self.corrupt_at.push((agent, t));
        self
    }

    /// Corrupts `agent`'s observation at each step with probability
    /// `per_mille / 1000`, seeded like [`random_env_fault`](Self::random_env_fault).
    #[must_use]
    pub fn random_observation_corruption(mut self, agent: Agent, per_mille: u16) -> Self {
        self.corrupt_random.push((agent, per_mille.min(1000)));
        self
    }

    /// Whether any fault rule is configured. When `false`,
    /// [`FaultyContext`](crate::FaultyContext) is an exact pass-through.
    #[must_use]
    pub fn has_faults(&self) -> bool {
        !self.env_at.is_empty()
            || self.env_always.is_some()
            || !self.env_random.is_empty()
            || !self.crashes.is_empty()
            || !self.corrupt_at.is_empty()
            || !self.corrupt_random.is_empty()
    }

    /// The environment fault active at time `t`, if any. Resolution
    /// order: an explicit fault at `t`, a [`EnvFault::Delay`] window
    /// covering `t`, the always-on fault, then seeded random rules in the
    /// order they were added.
    #[must_use]
    pub fn env_fault(&self, t: usize) -> Option<EnvFault> {
        if let Some(f) = self.env_at.get(&t) {
            return Some(f.clone());
        }
        for (&t0, f) in &self.env_at {
            if let EnvFault::Delay { hold } = f {
                if t0 <= t && t < t0 + hold {
                    return Some(f.clone());
                }
            }
        }
        if let Some(f) = &self.env_always {
            return Some(f.clone());
        }
        for (rule, (f, rate)) in self.env_random.iter().enumerate() {
            if mix(self.seed, 0x10 + rule as u64, t as u64, 0) % 1000 < u64::from(*rate) {
                return Some(f.clone());
            }
        }
        None
    }

    /// Whether `agent` is crashed (down) at time `t`.
    #[must_use]
    pub fn is_crashed(&self, agent: Agent, t: usize) -> bool {
        self.crashes
            .iter()
            .any(|(a, k)| *a == agent && k.is_down(t))
    }

    /// Whether `agent`'s observation is corrupted at time `t`.
    #[must_use]
    pub fn corrupts(&self, agent: Agent, t: usize) -> bool {
        if self.corrupt_at.iter().any(|&(a, ct)| a == agent && ct == t) {
            return true;
        }
        self.corrupt_random
            .iter()
            .enumerate()
            .any(|(rule, (a, rate))| {
                *a == agent
                    && mix(
                        self.seed,
                        0x100 + rule as u64,
                        t as u64,
                        agent.index() as u64,
                    ) % 1000
                        < u64::from(*rate)
            })
    }

    /// A stable digest of the concrete fault pattern over times
    /// `0..=horizon` for `agents` agents: two schedules that inject the
    /// same faults at the same times agree; schedules that differ anywhere
    /// in the window (e.g. the same rules under a different seed)
    /// disagree with overwhelming probability. Used by replay tests.
    #[must_use]
    pub fn signature(&self, horizon: usize, agents: usize) -> u64 {
        let mut acc = 0xCBF2_9CE4_8422_2325u64;
        let mut absorb = |x: u64| {
            acc = mix(acc, 0, x, 0);
        };
        for t in 0..=horizon {
            match self.env_fault(t) {
                None => absorb(0),
                Some(EnvFault::Force(a)) => absorb(1 | (u64::from(a.0) << 8)),
                Some(EnvFault::Restrict(set)) => {
                    absorb(2);
                    for a in set {
                        absorb(u64::from(a.0));
                    }
                }
                Some(EnvFault::Duplicate) => absorb(3),
                Some(EnvFault::Delay { hold }) => absorb(4 | ((hold as u64) << 8)),
            }
            for i in 0..agents {
                let a = Agent::new(i);
                absorb(u64::from(self.is_crashed(a, t)) | (u64::from(self.corrupts(a, t)) << 1));
            }
        }
        acc
    }
}

/// The standard four-point fault lattice for a scenario whose environment
/// has a "lose everything" move: no faults, unbounded message loss,
/// crash-stop of one agent, and both at once. Every entry is built from
/// the same seed, so the lattice is replayable.
#[must_use]
pub fn loss_lattice(
    seed: u64,
    lose: EnvActionId,
    crash_agent: Agent,
    crash_at: usize,
) -> Vec<(&'static str, FaultSchedule)> {
    vec![
        ("none", FaultSchedule::new(seed)),
        (
            "loss",
            FaultSchedule::new(seed).env_fault_always(EnvFault::Force(lose)),
        ),
        (
            "crash-stop",
            FaultSchedule::new(seed).crash(crash_agent, CrashKind::Stop { at: crash_at }),
        ),
        (
            "loss+crash-stop",
            FaultSchedule::new(seed)
                .env_fault_always(EnvFault::Force(lose))
                .crash(crash_agent, CrashKind::Stop { at: crash_at }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_has_no_faults() {
        let s = FaultSchedule::new(42);
        assert!(!s.has_faults());
        for t in 0..32 {
            assert_eq!(s.env_fault(t), None);
            assert!(!s.is_crashed(Agent::new(0), t));
            assert!(!s.corrupts(Agent::new(0), t));
        }
    }

    #[test]
    fn explicit_faults_are_time_precise() {
        let s = FaultSchedule::new(0)
            .env_fault_at(2, EnvFault::Force(EnvActionId(1)))
            .corrupt_observation_at(Agent::new(1), 3);
        assert!(s.has_faults());
        assert_eq!(s.env_fault(1), None);
        assert_eq!(s.env_fault(2), Some(EnvFault::Force(EnvActionId(1))));
        assert_eq!(s.env_fault(3), None);
        assert!(!s.corrupts(Agent::new(1), 2));
        assert!(s.corrupts(Agent::new(1), 3));
        assert!(!s.corrupts(Agent::new(0), 3));
    }

    #[test]
    fn delay_covers_a_window() {
        let s = FaultSchedule::new(0).env_fault_at(2, EnvFault::Delay { hold: 3 });
        assert_eq!(s.env_fault(1), None);
        for t in 2..5 {
            assert_eq!(s.env_fault(t), Some(EnvFault::Delay { hold: 3 }), "t={t}");
        }
        assert_eq!(s.env_fault(5), None);
    }

    #[test]
    fn crash_kinds() {
        let stop = CrashKind::Stop { at: 2 };
        assert!(!stop.is_down(1));
        assert!(stop.is_down(2));
        assert!(stop.is_down(100));
        let rec = CrashKind::Recovery { down: 1, up: 3 };
        assert!(!rec.is_down(0));
        assert!(rec.is_down(1));
        assert!(rec.is_down(2));
        assert!(!rec.is_down(3));
    }

    #[test]
    fn random_faults_are_deterministic_per_seed() {
        let mk =
            |seed| FaultSchedule::new(seed).random_env_fault(EnvFault::Force(EnvActionId(1)), 500);
        let a = mk(1);
        let b = mk(1);
        let c = mk(2);
        assert_eq!(a.signature(32, 1), b.signature(32, 1));
        assert_ne!(a.signature(32, 1), c.signature(32, 1));
        // Rate 500/1000 over 33 steps: some steps fire, some don't.
        let fired = (0..=32).filter(|&t| a.env_fault(t).is_some()).count();
        assert!(fired > 0 && fired < 33, "fired {fired}/33");
    }

    #[test]
    fn lattice_has_four_rungs() {
        let lat = loss_lattice(9, EnvActionId(3), Agent::new(0), 1);
        assert_eq!(lat.len(), 4);
        assert!(!lat[0].1.has_faults());
        assert!(lat[1].1.env_fault(7).is_some());
        assert!(lat[2].1.is_crashed(Agent::new(0), 5));
        let (_, both) = &lat[3];
        assert!(both.env_fault(0).is_some() && both.is_crashed(Agent::new(0), 1));
    }
}
