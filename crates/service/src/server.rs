//! The network front end: `kbpd --listen` over TCP.
//!
//! One [`Server`] owns a `TcpListener`, a shared bounded [`JobQueue`]
//! and a worker pool sized by the service config. Connections are
//! served by the event-driven plane in [`crate::plane`]: a single
//! readiness loop over nonblocking sockets frames lines (push-mode
//! [`FrameDecoder`](crate::framing::FrameDecoder), same grammar as the
//! pull reader), answers monitoring ops inline, admits jobs to the
//! shared queue, and pours completed responses back through a
//! per-connection reorder buffer — so responses come back in
//! per-connection request order no matter how the pool schedules.
//!
//! # Thread inventory
//!
//! PR 6 spent `2 + workers + 2·connections` threads (accept loop,
//! stdin watcher, pool, and a reader/writer pair per connection), so
//! the connection cap was really a thread budget. Now the count is
//! `1 + workers` (the plane runs inline on the serving thread) plus
//! whatever the embedding binary adds — independent of how many
//! connections are open. Idle connections cost one map entry.
//!
//! Admission control is layered and fully typed: the shared queue
//! rejects with [`QueueFull`] when the daemon is saturated, the
//! tenant-scoped pending quota (keyed by the request's optional
//! `client` token, falling back to the peer address) rejects with
//! `quota_exceeded`, the connection cap refuses with
//! `too_many_connections`, and the plane's protection policies (idle
//! timeout, read deadline, write budget, write stall) close with a
//! best-effort typed notice and a metrics counter. A client is never
//! silently dropped.
//!
//! # Drain-on-shutdown argument
//!
//! Every admitted job increments a global in-flight count that only
//! the plane decrements, on receipt of the worker's completion — even
//! when the owning connection was force-closed meanwhile (the response
//! is then counted `responses_dropped` instead of delivered).
//! [`ServerHandle::shutdown`] flips the plane into draining mode: stop
//! accepting, admit nothing new, read-and-discard inbound bytes (so a
//! close cannot RST away buffered responses), flush what is owed, and
//! exit exactly when no connections and no in-flight jobs remain. Then
//! the queue is closed, workers join, and the artifact cache persists.
//! So "run returned" *is* the proof that every accepted request was
//! answered or explicitly counted dropped.
//!
//! The stdin/stdout compatibility mode ([`serve_stream`]) keeps PR 6's
//! channel-based drain: the ordering writer's receive loop ends exactly
//! when the reader and every in-flight job have dropped their senders.

use crate::framing::{LineOutcome, LineReader};
use crate::job::{id_hint, parse_request, JobRequest, Request};
use crate::plane::{run_plane, Completion, PendingTable, PlaneShared};
use crate::queue::JobQueue;
use crate::service::{
    error_response, frame_error_response, quota_response, reject_response, Service,
};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Where a worker sends a finished response: the stdin writer's channel
/// or the plane's completion queue. Unifies the pool across both front
/// ends — a worker neither knows nor cares which one admitted the job.
pub(crate) enum ResponseSink {
    /// stdin/stdout mode: the per-stream ordering writer.
    Stream(mpsc::Sender<(usize, String)>),
    /// `--listen` mode: the plane's completion queue, tagged with the
    /// owning connection.
    Plane {
        /// The completion queue / wakeup token.
        shared: Arc<PlaneShared>,
        /// Owning connection id.
        conn: u64,
    },
}

impl ResponseSink {
    fn deliver(self, index: usize, line: String) {
        match self {
            ResponseSink::Stream(tx) => {
                let _ = tx.send((index, line));
            }
            ResponseSink::Plane { shared, conn } => {
                shared.deliver(Completion { conn, index, line });
            }
        }
    }
}

/// A job admitted to the shared queue, labelled with everything the
/// worker needs to answer it: the response sink, the per-connection
/// request index (reorder key), and the client identity whose quota
/// slot to return.
pub(crate) struct QueuedJob {
    pub(crate) job: JobRequest,
    pub(crate) index: usize,
    pub(crate) sink: ResponseSink,
    pub(crate) client: String,
    pub(crate) pending: Arc<PendingTable>,
}

/// The TCP front end. Bind with [`Server::bind`], then [`Server::run`]
/// until a [`ServerHandle::shutdown`] (or listener error).
#[derive(Debug)]
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

/// A cloneable shutdown handle for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with `--listen 127.0.0.1:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: the server stops accepting, drains
    /// every admitted job (delivering where the connection survives,
    /// counting drops where it does not), and persists the cache before
    /// [`Server::run`] returns. Idempotent. The plane notices the flag
    /// on its next tick — no wake-up connection needed.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener and takes ownership of the service.
    ///
    /// # Errors
    ///
    /// Any `TcpListener::bind` failure (address in use, permission, …).
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Service) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            service: Arc::new(service),
            listener,
            local_addr,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown handle usable from any thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr,
        }
    }

    /// Serves until shutdown. Consumes the server; when this returns,
    /// every accepted request has been answered (or counted dropped
    /// against a force-closed connection), all threads are joined, and
    /// the artifact cache has been persisted (when a store is
    /// configured).
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection and per-line problems
    /// are typed responses or counted closes, never a dead server.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            service,
            listener,
            local_addr: _,
            stop,
        } = self;
        let config = service.config().clone();
        let queue: Arc<JobQueue<QueuedJob>> =
            Arc::new(JobQueue::new(config.queue_capacity, config.retry_after_ms));
        let shared = Arc::new(PlaneShared::new());
        let pending = Arc::new(PendingTable::new());
        let workers = spawn_workers(&service, &queue, config.workers);
        // The plane runs inline: this thread IS the connection plane.
        let result = run_plane(&service, &queue, &listener, &shared, &pending, &stop);
        // The plane has exited with zero in-flight jobs: nothing new
        // can be admitted. Close the queue so workers drain and exit.
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        service.persist();
        result
    }
}

/// Serves the line protocol over an arbitrary byte stream pair with its
/// own worker pool — `kbpd`'s stdin/stdout compatibility mode. Returns
/// after EOF once every accepted request has been answered in order and
/// the cache persisted.
pub fn serve_stream<R: Read, W: Write + Send + 'static>(service: Service, input: R, output: W) {
    let config = service.config().clone();
    let service = Arc::new(service);
    let queue: Arc<JobQueue<QueuedJob>> =
        Arc::new(JobQueue::new(config.queue_capacity, config.retry_after_ms));
    let workers = spawn_workers(&service, &queue, config.workers);
    // A single stdin client owns the whole admission window, so the
    // per-client quota is moot here; the queue bound still applies.
    drive(&service, &queue, input, output, usize::MAX);
    queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    service.persist();
}

fn spawn_workers(
    service: &Arc<Service>,
    queue: &Arc<JobQueue<QueuedJob>>,
    count: usize,
) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|_| {
            let service = Arc::clone(service);
            let queue = Arc::clone(queue);
            std::thread::spawn(move || {
                while let Some(queued) = queue.pop() {
                    let QueuedJob {
                        job,
                        index,
                        sink,
                        client,
                        pending,
                    } = queued;
                    let line = service.execute(&job).to_line();
                    // Deliver first, then return the quota slot: the
                    // slot frees only once the answer is on its way.
                    sink.deliver(index, line);
                    pending.release(&client);
                }
            })
        })
        .collect()
}

/// The stdin identity in the pending table (one tenant, infinite quota).
const LOCAL_CLIENT: &str = "local";

/// One stdin stream: frames lines, parses, admits, answers. Spawns the
/// ordering writer, runs the reader inline, joins the writer before
/// returning — so returning means "fully drained".
fn drive<R: Read, W: Write + Send + 'static>(
    service: &Arc<Service>,
    queue: &Arc<JobQueue<QueuedJob>>,
    input: R,
    output: W,
    quota: usize,
) {
    let (tx, rx) = mpsc::channel::<(usize, String)>();
    let writer = std::thread::spawn(move || write_in_order(output, rx));
    let pending = Arc::new(PendingTable::new());
    let mut reader = LineReader::new(input, service.config().max_line);
    let mut index = 0usize;
    // A transport error (`Err`) ends the read loop like EOF does: stop
    // admitting, drain what was already accepted.
    while let Ok(outcome) = reader.next_line() {
        let response = match outcome {
            LineOutcome::Eof => break,
            LineOutcome::Malformed(frame) => frame_error_response(&frame),
            LineOutcome::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Ok(Request::Job(job)) => match pending.try_acquire(LOCAL_CLIENT, quota) {
                        Err(held) => {
                            service.note_quota_rejection();
                            quota_response(Some(job.id), held, quota)
                        }
                        Ok(()) => {
                            let queued = QueuedJob {
                                job,
                                index,
                                sink: ResponseSink::Stream(tx.clone()),
                                client: LOCAL_CLIENT.to_string(),
                                pending: Arc::clone(&pending),
                            };
                            match queue.try_submit(queued) {
                                Ok(()) => {
                                    index += 1;
                                    continue;
                                }
                                Err((rejected, full)) => {
                                    pending.release(LOCAL_CLIENT);
                                    service.note_rejection();
                                    reject_response(Some(rejected.job.id), full)
                                }
                            }
                        }
                    },
                    Ok(Request::Stats { id }) => service.stats_response(id),
                    Ok(Request::Health { id }) => service.health_response(id),
                    Ok(Request::Metrics { id }) => service.metrics_response(id, queue.len()),
                    Ok(Request::Define(req)) => service.define_response(&req, LOCAL_CLIENT),
                    // The id is echoed whenever the line was at least
                    // parseable JSON with a usable id field.
                    Err(e) => error_response(id_hint(&line), &e),
                }
            }
        };
        let _ = tx.send((index, response.to_line()));
        index += 1;
    }
    // Drop the reader's sender; the writer now ends exactly when every
    // in-flight job has been answered (drain argument, module docs).
    drop(tx);
    let _ = writer.join();
}

/// The per-stream ordering writer: a reorder buffer keyed by request
/// index, flushed contiguously from 0.
fn write_in_order<W: Write>(mut output: W, rx: mpsc::Receiver<(usize, String)>) {
    let mut buffered: BTreeMap<usize, String> = BTreeMap::new();
    let mut next = 0usize;
    for (index, line) in rx {
        buffered.insert(index, line);
        while let Some(line) = buffered.remove(&next) {
            if writeln!(output, "{line}")
                .and_then(|()| output.flush())
                .is_err()
            {
                return; // client hung up; responses have nowhere to go
            }
            next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse as parse_json, Json};
    use crate::service::ServiceConfig;
    use std::io::{BufRead, BufReader};
    use std::net::{Shutdown, TcpStream};
    use std::time::Duration;

    fn start(config: ServiceConfig) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
        let server = Server::bind("127.0.0.1:0", Service::new(config)).expect("bind");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        (handle, thread)
    }

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for line in lines {
            writeln!(stream, "{line}").expect("write");
        }
        stream.shutdown(Shutdown::Write).expect("half-close");
        BufReader::new(stream)
            .lines()
            .collect::<Result<Vec<_>, _>>()
            .expect("read responses")
    }

    #[test]
    fn serves_jobs_in_request_order_over_tcp() {
        let (handle, thread) = start(ServiceConfig::new().workers(3).cache(false));
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"id":10,"kind":"solve","scenario":"zoo_plain"}"#,
                r#"{"id":11,"kind":"solve","scenario":"bit_transmission"}"#,
                r#"{"kind":"health"}"#,
                r#"{"id":12,"kind":"solve","scenario":"zoo_plain"}"#,
            ],
        );
        let ids: Vec<Option<u64>> = responses
            .iter()
            .map(|line| {
                parse_json(line)
                    .expect("json")
                    .get("id")
                    .and_then(Json::as_u64)
            })
            .collect();
        assert_eq!(ids, vec![Some(10), Some(11), None, Some(12)]);
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn two_clients_interleave_without_crosstalk() {
        let (handle, thread) = start(ServiceConfig::new().workers(4).cache(false));
        let addr = handle.addr();
        let a = std::thread::spawn(move || {
            send_lines(
                addr,
                &[
                    r#"{"id":1,"kind":"solve","scenario":"zoo_plain"}"#,
                    r#"{"id":2,"kind":"solve","scenario":"muddy_children_3"}"#,
                ],
            )
        });
        let b = std::thread::spawn(move || {
            send_lines(
                addr,
                &[
                    r#"{"id":100,"kind":"solve","scenario":"bit_transmission"}"#,
                    r#"{"id":101,"kind":"solve","scenario":"zoo_plain"}"#,
                ],
            )
        });
        let a = a.join().expect("client a");
        let b = b.join().expect("client b");
        let ids = |lines: &[String]| -> Vec<u64> {
            lines
                .iter()
                .map(|l| {
                    parse_json(l)
                        .expect("json")
                        .get("id")
                        .and_then(Json::as_u64)
                        .expect("id")
                })
                .collect()
        };
        assert_eq!(ids(&a), vec![1, 2], "client a sees only its ids, in order");
        assert_eq!(ids(&b), vec![100, 101], "client b likewise");
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn malformed_lines_get_typed_responses_with_id_hints() {
        let (handle, thread) = start(ServiceConfig::new().workers(1).cache(false).max_line(256));
        let big = format!(
            r#"{{"id":1,"kind":"solve","scenario":"{}"}}"#,
            "x".repeat(400)
        );
        let responses = send_lines(
            handle.addr(),
            &[
                "this is not json",
                r#"{"id":77,"kind":"dance","scenario":"zoo_plain"}"#,
                &big,
                r#"{"id":5,"kind":"solve","scenario":"zoo_plain"}"#,
            ],
        );
        assert_eq!(responses.len(), 4, "every line is answered: {responses:?}");
        let parsed: Vec<Json> = responses
            .iter()
            .map(|l| parse_json(l).expect("json"))
            .collect();
        assert_eq!(parsed[0].get("id"), Some(&Json::Null));
        let kind = |v: &Json| v.get("error").and_then(|e| e.get("kind").cloned());
        assert_eq!(kind(&parsed[0]), Some(Json::Str("parse".into())));
        // Parseable JSON with a bad field: the id comes back.
        assert_eq!(parsed[1].get("id").and_then(Json::as_u64), Some(77));
        assert_eq!(kind(&parsed[1]), Some(Json::Str("unknown_kind".into())));
        assert_eq!(kind(&parsed[2]), Some(Json::Str("oversized".into())));
        assert_eq!(parsed[3].get("ok"), Some(&Json::Bool(true)));
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn quota_rejections_are_typed_and_the_connection_survives() {
        // One worker, quota 1, and a queue big enough that only the
        // quota can reject: the first job occupies the quota slot while
        // burst jobs arrive, so at least one burst job must be rejected
        // with quota_exceeded — and later requests still get answers.
        let (handle, thread) = start(
            ServiceConfig::new()
                .workers(1)
                .cache(false)
                .queue_capacity(64)
                .client_pending(1),
        );
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        for id in 0..8 {
            writeln!(
                stream,
                r#"{{"id":{id},"kind":"solve","scenario":"muddy_children_3"}}"#
            )
            .expect("write");
        }
        stream.shutdown(Shutdown::Write).expect("half-close");
        let responses: Vec<String> = BufReader::new(stream)
            .lines()
            .collect::<Result<Vec<_>, _>>()
            .expect("read");
        assert_eq!(responses.len(), 8, "no request goes unanswered");
        let parsed: Vec<Json> = responses
            .iter()
            .map(|l| parse_json(l).expect("json"))
            .collect();
        for (i, response) in parsed.iter().enumerate() {
            assert_eq!(
                response.get("id").and_then(Json::as_u64),
                Some(i as u64),
                "per-connection order"
            );
        }
        let rejected: Vec<&Json> = parsed
            .iter()
            .filter(|r| {
                r.get("error")
                    .and_then(|e| e.get("kind"))
                    .is_some_and(|k| k == &Json::Str("quota_exceeded".into()))
            })
            .collect();
        assert!(
            !rejected.is_empty(),
            "an 8-deep burst against quota 1 must trip the quota: {responses:?}"
        );
        for r in &rejected {
            let error = r.get("error").expect("error");
            assert_eq!(error.get("limit").and_then(Json::as_u64), Some(1));
        }
        assert!(
            parsed
                .iter()
                .any(|r| r.get("ok") == Some(&Json::Bool(true))),
            "the quota slot itself is served"
        );
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn connection_cap_refuses_with_a_typed_line() {
        let (handle, thread) = start(
            ServiceConfig::new()
                .workers(1)
                .cache(false)
                .max_connections(1),
        );
        // Occupy the single slot with an idle connection.
        let holder = TcpStream::connect(handle.addr()).expect("connect holder");
        // Give the accept loop a moment to register it.
        std::thread::sleep(Duration::from_millis(100));
        let refused = TcpStream::connect(handle.addr()).expect("connect refused");
        let mut lines = BufReader::new(refused).lines();
        let line = lines.next().expect("refusal line").expect("read");
        let parsed = parse_json(&line).expect("json");
        assert_eq!(
            parsed.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("too_many_connections".into()))
        );
        assert!(lines.next().is_none(), "refused connection is closed");
        drop(holder);
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn shutdown_drains_inflight_jobs() {
        let (handle, thread) = start(ServiceConfig::new().workers(1).cache(false));
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        for id in 0..5 {
            writeln!(
                stream,
                r#"{{"id":{id},"kind":"solve","scenario":"bit_transmission"}}"#
            )
            .expect("write");
        }
        stream.flush().expect("flush");
        // Shut down while jobs are (likely) still queued behind the
        // single worker. Every admitted job must still be answered.
        std::thread::sleep(Duration::from_millis(50));
        handle.shutdown();
        thread.join().expect("join").expect("run");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let responses: Vec<String> = BufReader::new(stream)
            .lines()
            .collect::<Result<Vec<_>, _>>()
            .expect("read");
        assert_eq!(
            responses.len(),
            5,
            "drain answered everything: {responses:?}"
        );
        for (i, line) in responses.iter().enumerate() {
            let parsed = parse_json(line).expect("json");
            assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        }
    }
}
