//! The network front end: `kbpd --listen` over TCP.
//!
//! One [`Server`] owns a `TcpListener`, a shared bounded [`JobQueue`]
//! and a worker pool sized by the service config. Each accepted
//! connection gets two light threads:
//!
//! * a **reader** that frames lines with [`LineReader`] (bounded,
//!   resynchronizing; see [`crate::framing`]), parses requests, answers
//!   monitoring ops inline, and admits jobs to the *shared* queue;
//! * a **writer** that drains the connection's response channel through
//!   a reorder buffer keyed by request index — so responses come back
//!   in per-connection request order no matter how the pool schedules.
//!
//! Admission control is layered: the shared queue rejects with
//! [`QueueFull`] when the whole daemon is saturated, and a per-client
//! pending quota rejects with `quota_exceeded` when one connection
//! hogs the window. Both are typed `ok:false` responses — a client is
//! never silently dropped.
//!
//! # Drain-on-shutdown argument
//!
//! Every admitted job carries a clone of its connection's response
//! sender. The writer's receive loop ends exactly when all senders are
//! gone: the reader's copy (dropped at EOF) and one copy per
//! in-flight job (dropped after the worker sends the response). So
//! "writer exited" *is* the proof that every accepted request was
//! answered and flushed in index order — no separate bookkeeping, and
//! no window where a drained job's response is lost.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) runs the same
//! argument daemon-wide: stop accepting, half-close every client
//! socket (readers see EOF and stop admitting), join readers, close
//! the queue (workers drain what was admitted), join workers and
//! writers, then persist the artifact cache.

use crate::framing::{LineOutcome, LineReader};
use crate::job::{id_hint, parse_request, JobRequest, Request};
use crate::queue::JobQueue;
use crate::service::{
    error_response, frame_error_response, quota_response, reject_response,
    too_many_connections_response, Service,
};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A job admitted to the shared queue, labelled with everything the
/// worker needs to answer it: the connection's response channel, the
/// per-connection request index (reorder key) and the client's pending
/// counter.
struct QueuedJob {
    job: JobRequest,
    index: usize,
    tx: mpsc::Sender<(usize, String)>,
    pending: Arc<AtomicUsize>,
}

/// The TCP front end. Bind with [`Server::bind`], then [`Server::run`]
/// until a [`ServerHandle::shutdown`] (or listener error).
#[derive(Debug)]
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

/// A cloneable shutdown handle for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with `--listen 127.0.0.1:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: the server stops accepting,
    /// half-closes live connections, drains every admitted job, and
    /// persists the cache before [`Server::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; if the
        // listener is already gone, there is nothing left to wake.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

impl Server {
    /// Binds the listener and takes ownership of the service.
    ///
    /// # Errors
    ///
    /// Any `TcpListener::bind` failure (address in use, permission, …).
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Service) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            service: Arc::new(service),
            listener,
            local_addr,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown handle usable from any thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr,
        }
    }

    /// Serves until shutdown. Consumes the server; when this returns,
    /// every accepted request has been answered, all threads are
    /// joined, and the artifact cache has been persisted (when a store
    /// is configured).
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection and per-line problems
    /// are typed responses, never a dead server.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            service,
            listener,
            local_addr: _,
            stop,
        } = self;
        let config = service.config().clone();
        let queue: Arc<JobQueue<QueuedJob>> =
            Arc::new(JobQueue::new(config.queue_capacity, config.retry_after_ms));
        let workers = spawn_workers(&service, &queue, config.workers);

        // Live connections, keyed by a monotone id so shutdown can
        // half-close them; entries remove themselves when done.
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn: u64 = 0;

        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break; // the wake-up connection (or a late client) is dropped
            }
            let Ok(stream) = stream else { continue };
            if active.load(Ordering::SeqCst) >= config.max_connections {
                // A typed one-line refusal, then close: the client can
                // tell "daemon at capacity" from "daemon dead".
                let line = too_many_connections_response(config.max_connections).to_line();
                let mut refused = stream;
                let _ = writeln!(refused, "{line}");
                let _ = refused.flush();
                continue;
            }
            let (Ok(write_half), Ok(register_half)) = (stream.try_clone(), stream.try_clone())
            else {
                continue;
            };
            let conn_id = next_conn;
            next_conn += 1;
            active.fetch_add(1, Ordering::SeqCst);
            if let Ok(mut map) = connections.lock() {
                map.insert(conn_id, register_half);
            }
            let service = Arc::clone(&service);
            let queue = Arc::clone(&queue);
            let connections = Arc::clone(&connections);
            let active = Arc::clone(&active);
            let quota = config.client_pending;
            conn_threads.push(std::thread::spawn(move || {
                drive(&service, &queue, stream, write_half, quota);
                if let Ok(mut map) = connections.lock() {
                    map.remove(&conn_id);
                }
                active.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        drop(listener); // further connects are refused by the OS

        // Half-close every live connection: readers see EOF, stop
        // admitting, and the per-connection drain argument (module
        // docs) finishes each one.
        if let Ok(mut map) = connections.lock() {
            for (_, conn) in map.drain() {
                let _ = conn.shutdown(Shutdown::Read);
            }
        }
        for thread in conn_threads {
            let _ = thread.join();
        }
        // All readers are gone: nothing new can be admitted. Close the
        // queue so workers drain the remainder and exit.
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        service.persist();
        Ok(())
    }
}

/// Serves the line protocol over an arbitrary byte stream pair with its
/// own worker pool — `kbpd`'s stdin/stdout compatibility mode. Returns
/// after EOF once every accepted request has been answered in order and
/// the cache persisted.
pub fn serve_stream<R: Read, W: Write + Send + 'static>(service: Service, input: R, output: W) {
    let config = service.config().clone();
    let service = Arc::new(service);
    let queue: Arc<JobQueue<QueuedJob>> =
        Arc::new(JobQueue::new(config.queue_capacity, config.retry_after_ms));
    let workers = spawn_workers(&service, &queue, config.workers);
    // A single stdin client owns the whole admission window, so the
    // per-client quota is moot here; the queue bound still applies.
    drive(&service, &queue, input, output, usize::MAX);
    queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    service.persist();
}

fn spawn_workers(
    service: &Arc<Service>,
    queue: &Arc<JobQueue<QueuedJob>>,
    count: usize,
) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|_| {
            let service = Arc::clone(service);
            let queue = Arc::clone(queue);
            std::thread::spawn(move || {
                while let Some(queued) = queue.pop() {
                    let line = service.execute(&queued.job).to_line();
                    let _ = queued.tx.send((queued.index, line));
                    queued.pending.fetch_sub(1, Ordering::Relaxed);
                    // Dropping `queued` drops its sender clone — the
                    // writer's drain barrier (module docs).
                }
            })
        })
        .collect()
}

/// One connection (or the stdin stream): frames lines, parses, admits,
/// answers. Spawns the ordering writer, runs the reader inline, joins
/// the writer before returning — so returning means "fully drained".
fn drive<R: Read, W: Write + Send + 'static>(
    service: &Arc<Service>,
    queue: &Arc<JobQueue<QueuedJob>>,
    input: R,
    output: W,
    quota: usize,
) {
    let (tx, rx) = mpsc::channel::<(usize, String)>();
    let writer = std::thread::spawn(move || write_in_order(output, rx));
    let pending = Arc::new(AtomicUsize::new(0));
    let mut reader = LineReader::new(input, service.config().max_line);
    let mut index = 0usize;
    // A transport error (`Err`) ends the read loop like EOF does: stop
    // admitting, drain what was already accepted.
    while let Ok(outcome) = reader.next_line() {
        let response = match outcome {
            LineOutcome::Eof => break,
            LineOutcome::Malformed(frame) => frame_error_response(&frame),
            LineOutcome::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Ok(Request::Job(job)) => {
                        let held = pending.fetch_add(1, Ordering::Relaxed);
                        if held >= quota {
                            pending.fetch_sub(1, Ordering::Relaxed);
                            service.note_quota_rejection();
                            quota_response(Some(job.id), held, quota)
                        } else {
                            match queue.try_submit(QueuedJob {
                                job,
                                index,
                                tx: tx.clone(),
                                pending: Arc::clone(&pending),
                            }) {
                                Ok(()) => {
                                    index += 1;
                                    continue;
                                }
                                Err((rejected, full)) => {
                                    pending.fetch_sub(1, Ordering::Relaxed);
                                    service.note_rejection();
                                    reject_response(Some(rejected.job.id), full)
                                }
                            }
                        }
                    }
                    Ok(Request::Stats { id }) => service.stats_response(id),
                    Ok(Request::Health { id }) => service.health_response(id),
                    Ok(Request::Metrics { id }) => service.metrics_response(id, queue.len()),
                    // The id is echoed whenever the line was at least
                    // parseable JSON with a usable id field.
                    Err(e) => error_response(id_hint(&line), &e),
                }
            }
        };
        let _ = tx.send((index, response.to_line()));
        index += 1;
    }
    // Drop the reader's sender; the writer now ends exactly when every
    // in-flight job has been answered (drain argument, module docs).
    drop(tx);
    let _ = writer.join();
}

/// The per-connection ordering writer: a reorder buffer keyed by
/// request index, flushed contiguously from 0.
fn write_in_order<W: Write>(mut output: W, rx: mpsc::Receiver<(usize, String)>) {
    let mut buffered: BTreeMap<usize, String> = BTreeMap::new();
    let mut next = 0usize;
    for (index, line) in rx {
        buffered.insert(index, line);
        while let Some(line) = buffered.remove(&next) {
            if writeln!(output, "{line}")
                .and_then(|()| output.flush())
                .is_err()
            {
                return; // client hung up; responses have nowhere to go
            }
            next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse as parse_json, Json};
    use crate::service::ServiceConfig;
    use std::io::{BufRead, BufReader};

    fn start(config: ServiceConfig) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
        let server = Server::bind("127.0.0.1:0", Service::new(config)).expect("bind");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        (handle, thread)
    }

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for line in lines {
            writeln!(stream, "{line}").expect("write");
        }
        stream.shutdown(Shutdown::Write).expect("half-close");
        BufReader::new(stream)
            .lines()
            .collect::<Result<Vec<_>, _>>()
            .expect("read responses")
    }

    #[test]
    fn serves_jobs_in_request_order_over_tcp() {
        let (handle, thread) = start(ServiceConfig::new().workers(3).cache(false));
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"id":10,"kind":"solve","scenario":"zoo_plain"}"#,
                r#"{"id":11,"kind":"solve","scenario":"bit_transmission"}"#,
                r#"{"kind":"health"}"#,
                r#"{"id":12,"kind":"solve","scenario":"zoo_plain"}"#,
            ],
        );
        let ids: Vec<Option<u64>> = responses
            .iter()
            .map(|line| {
                parse_json(line)
                    .expect("json")
                    .get("id")
                    .and_then(Json::as_u64)
            })
            .collect();
        assert_eq!(ids, vec![Some(10), Some(11), None, Some(12)]);
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn two_clients_interleave_without_crosstalk() {
        let (handle, thread) = start(ServiceConfig::new().workers(4).cache(false));
        let addr = handle.addr();
        let a = std::thread::spawn(move || {
            send_lines(
                addr,
                &[
                    r#"{"id":1,"kind":"solve","scenario":"zoo_plain"}"#,
                    r#"{"id":2,"kind":"solve","scenario":"muddy_children_3"}"#,
                ],
            )
        });
        let b = std::thread::spawn(move || {
            send_lines(
                addr,
                &[
                    r#"{"id":100,"kind":"solve","scenario":"bit_transmission"}"#,
                    r#"{"id":101,"kind":"solve","scenario":"zoo_plain"}"#,
                ],
            )
        });
        let a = a.join().expect("client a");
        let b = b.join().expect("client b");
        let ids = |lines: &[String]| -> Vec<u64> {
            lines
                .iter()
                .map(|l| {
                    parse_json(l)
                        .expect("json")
                        .get("id")
                        .and_then(Json::as_u64)
                        .expect("id")
                })
                .collect()
        };
        assert_eq!(ids(&a), vec![1, 2], "client a sees only its ids, in order");
        assert_eq!(ids(&b), vec![100, 101], "client b likewise");
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn malformed_lines_get_typed_responses_with_id_hints() {
        let (handle, thread) = start(ServiceConfig::new().workers(1).cache(false).max_line(256));
        let big = format!(
            r#"{{"id":1,"kind":"solve","scenario":"{}"}}"#,
            "x".repeat(400)
        );
        let responses = send_lines(
            handle.addr(),
            &[
                "this is not json",
                r#"{"id":77,"kind":"dance","scenario":"zoo_plain"}"#,
                &big,
                r#"{"id":5,"kind":"solve","scenario":"zoo_plain"}"#,
            ],
        );
        assert_eq!(responses.len(), 4, "every line is answered: {responses:?}");
        let parsed: Vec<Json> = responses
            .iter()
            .map(|l| parse_json(l).expect("json"))
            .collect();
        assert_eq!(parsed[0].get("id"), Some(&Json::Null));
        let kind = |v: &Json| v.get("error").and_then(|e| e.get("kind").cloned());
        assert_eq!(kind(&parsed[0]), Some(Json::Str("parse".into())));
        // Parseable JSON with a bad field: the id comes back.
        assert_eq!(parsed[1].get("id").and_then(Json::as_u64), Some(77));
        assert_eq!(kind(&parsed[1]), Some(Json::Str("unknown_kind".into())));
        assert_eq!(kind(&parsed[2]), Some(Json::Str("oversized".into())));
        assert_eq!(parsed[3].get("ok"), Some(&Json::Bool(true)));
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn quota_rejections_are_typed_and_the_connection_survives() {
        // One worker, quota 1, and a queue big enough that only the
        // quota can reject: the first job occupies the quota slot while
        // burst jobs arrive, so at least one burst job must be rejected
        // with quota_exceeded — and later requests still get answers.
        let (handle, thread) = start(
            ServiceConfig::new()
                .workers(1)
                .cache(false)
                .queue_capacity(64)
                .client_pending(1),
        );
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        for id in 0..8 {
            writeln!(
                stream,
                r#"{{"id":{id},"kind":"solve","scenario":"muddy_children_3"}}"#
            )
            .expect("write");
        }
        stream.shutdown(Shutdown::Write).expect("half-close");
        let responses: Vec<String> = BufReader::new(stream)
            .lines()
            .collect::<Result<Vec<_>, _>>()
            .expect("read");
        assert_eq!(responses.len(), 8, "no request goes unanswered");
        let parsed: Vec<Json> = responses
            .iter()
            .map(|l| parse_json(l).expect("json"))
            .collect();
        for (i, response) in parsed.iter().enumerate() {
            assert_eq!(
                response.get("id").and_then(Json::as_u64),
                Some(i as u64),
                "per-connection order"
            );
        }
        let rejected: Vec<&Json> = parsed
            .iter()
            .filter(|r| {
                r.get("error")
                    .and_then(|e| e.get("kind"))
                    .is_some_and(|k| k == &Json::Str("quota_exceeded".into()))
            })
            .collect();
        assert!(
            !rejected.is_empty(),
            "an 8-deep burst against quota 1 must trip the quota: {responses:?}"
        );
        for r in &rejected {
            let error = r.get("error").expect("error");
            assert_eq!(error.get("limit").and_then(Json::as_u64), Some(1));
        }
        assert!(
            parsed
                .iter()
                .any(|r| r.get("ok") == Some(&Json::Bool(true))),
            "the quota slot itself is served"
        );
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn connection_cap_refuses_with_a_typed_line() {
        let (handle, thread) = start(
            ServiceConfig::new()
                .workers(1)
                .cache(false)
                .max_connections(1),
        );
        // Occupy the single slot with an idle connection.
        let holder = TcpStream::connect(handle.addr()).expect("connect holder");
        // Give the accept loop a moment to register it.
        std::thread::sleep(Duration::from_millis(100));
        let refused = TcpStream::connect(handle.addr()).expect("connect refused");
        let mut lines = BufReader::new(refused).lines();
        let line = lines.next().expect("refusal line").expect("read");
        let parsed = parse_json(&line).expect("json");
        assert_eq!(
            parsed.get("error").and_then(|e| e.get("kind")),
            Some(&Json::Str("too_many_connections".into()))
        );
        assert!(lines.next().is_none(), "refused connection is closed");
        drop(holder);
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    #[test]
    fn shutdown_drains_inflight_jobs() {
        let (handle, thread) = start(ServiceConfig::new().workers(1).cache(false));
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        for id in 0..5 {
            writeln!(
                stream,
                r#"{{"id":{id},"kind":"solve","scenario":"bit_transmission"}}"#
            )
            .expect("write");
        }
        stream.flush().expect("flush");
        // Shut down while jobs are (likely) still queued behind the
        // single worker. Every admitted job must still be answered.
        std::thread::sleep(Duration::from_millis(50));
        handle.shutdown();
        thread.join().expect("join").expect("run");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let responses: Vec<String> = BufReader::new(stream)
            .lines()
            .collect::<Result<Vec<_>, _>>()
            .expect("read");
        assert_eq!(
            responses.len(),
            5,
            "drain answered everything: {responses:?}"
        );
        for (i, line) in responses.iter().enumerate() {
            let parsed = parse_json(line).expect("json");
            assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        }
    }
}
