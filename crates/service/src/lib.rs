//! `kbp-service` — a persistent batch-solving service for
//! knowledge-based programs.
//!
//! One process invocation of the solver amortizes work *within* a solve
//! (interned guards, per-layer caches, carry-forward). This crate is the
//! layer that amortizes work *across* requests:
//!
//! * a typed job API ([`JobRequest`]: `solve`, `enumerate`, `check`,
//!   `fault_lattice`) with a JSON line protocol ([`json`]);
//! * a bounded [`JobQueue`] with explicit admission control — a full
//!   queue rejects with a typed [`QueueFull`] carrying a retry-after
//!   hint instead of stalling the reader;
//! * a `std::thread::scope` worker pool sized by `KBP_SERVICE_WORKERS`
//!   ([`Service::run_batch`]);
//! * a cross-request [`ArtifactCache`]: per-context-fingerprint
//!   [`kbp_core::EngineSession`]s whose interned arenas and per-layer
//!   satisfaction-set snapshots make repeated solves of a scenario
//!   family hit warm sat-sets.
//!
//! Responses are **bit-identical** regardless of worker count and cache
//! state, and are emitted in submission order; see the determinism
//! argument in [`service`]. The `kbpd` binary speaks the line protocol
//! over stdin/stdout.
//!
//! # Example
//!
//! ```
//! use kbp_service::{parse_request, Request, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig::new().workers(2));
//! let Ok(Request::Job(job)) =
//!     parse_request(r#"{"id":1,"kind":"solve","scenario":"zoo_plain"}"#)
//! else {
//!     unreachable!()
//! };
//! let cold = service.execute(&job).to_line();
//! let warm = service.execute(&job).to_line();
//! assert_eq!(cold, warm); // warm solves answer bit-identically
//! ```

// Robustness gate: the library surface must stay panic-free so malformed
// requests surface as typed error responses, never as a dead worker.
// Tests and the binary's top level are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod cache;
mod framing;
mod job;
pub mod persist;
mod plane;
mod queue;
mod registry;
mod server;
mod service;

pub use cache::{ArtifactCache, CacheStats};
pub use framing::{FrameDecoder, FrameError, LineOutcome, LineReader, DEFAULT_MAX_LINE};
pub use job::{id_hint, parse_request, DefineRequest, JobKind, JobRequest, Request, RequestError};
pub use persist::{Compaction, DefinitionRecord, PersistError, SessionKey, SessionStore};
pub use queue::{JobQueue, QueueFull};
pub use registry::{find, registry, LatticeSpec, ScenarioEntry};
pub use server::{serve_stream, Server, ServerHandle};
pub use service::{
    disconnect_response, error_response, frame_error_response, quota_response, reject_response,
    too_many_connections_response, ConfigError, DisconnectKind, EvalStats, PlaneSnapshot, Service,
    ServiceConfig, ServiceStats, CACHE_DIR_ENV, CACHE_ENV, CACHE_SESSIONS_ENV,
    CLIENT_DEFINITIONS_ENV, CLIENT_PENDING_ENV, DEFAULT_CACHE_SESSIONS, DEFAULT_CLIENT_DEFINITIONS,
    DEFAULT_CLIENT_PENDING, DEFAULT_IDLE_TIMEOUT_MS, DEFAULT_MAX_CONNECTIONS,
    DEFAULT_WRITE_BUDGET_BYTES, DEFAULT_WRITE_STALL_MS, IDLE_TIMEOUT_ENV, MAX_CONNECTIONS_ENV,
    MAX_LINE_ENV, QUEUE_ENV, WORKERS_ENV, WRITE_BUDGET_ENV, WRITE_STALL_ENV,
};
