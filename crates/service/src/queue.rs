//! A bounded MPMC job queue with admission control.
//!
//! `std`-only: a `Mutex<VecDeque>` plus two `Condvar`s. Admission is
//! explicit — [`JobQueue::try_submit`] rejects with a typed
//! [`QueueFull`] (carrying a retry-after hint) instead of blocking, which
//! is what lets the service shed load deterministically instead of
//! stalling its reader thread.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Rejection by a full queue: backpressure made visible to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The queue's capacity (which was fully in use).
    pub capacity: usize,
    /// Suggested client-side delay before retrying, in milliseconds.
    /// A hint, not a reservation: the queue does not hold a slot.
    pub retry_after_ms: u64,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue full (capacity {}); retry after {} ms",
            self.capacity, self.retry_after_ms
        )
    }
}

impl std::error::Error for QueueFull {}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. `T` is the job payload; the service uses
/// `(submission index, JobRequest)` so workers can label results for
/// deterministic reordering.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the queue closes.
    takers: Condvar,
    /// Signalled when capacity frees up.
    givers: Condvar,
    capacity: usize,
    retry_after_ms: u64,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    #[must_use]
    pub fn new(capacity: usize, retry_after_ms: u64) -> Self {
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            givers: Condvar::new(),
            capacity: capacity.max(1),
            retry_after_ms,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for monitoring).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().map_or(0, |s| s.items.len())
    }

    /// Whether the queue is currently empty (racy by nature).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues the job, or rejects it with
    /// [`QueueFull`] when at capacity (or closed).
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue is at capacity or already closed;
    /// the job is returned to the caller untouched via the error's
    /// pairing with `job` not being consumed — the caller still owns
    /// nothing queued.
    pub fn try_submit(&self, job: T) -> Result<(), (T, QueueFull)> {
        let full = QueueFull {
            capacity: self.capacity,
            retry_after_ms: self.retry_after_ms,
        };
        let Ok(mut state) = self.state.lock() else {
            return Err((job, full));
        };
        if state.closed || state.items.len() >= self.capacity {
            return Err((job, full));
        }
        state.items.push_back(job);
        drop(state);
        self.takers.notify_one();
        Ok(())
    }

    /// Blocking admission: waits for capacity. Returns `false` if the
    /// queue closed while waiting (the job is dropped).
    pub fn submit(&self, job: T) -> bool {
        let Ok(mut state) = self.state.lock() else {
            return false;
        };
        while !state.closed && state.items.len() >= self.capacity {
            match self.givers.wait(state) {
                Ok(s) => state = s,
                Err(_) => return false,
            }
        }
        if state.closed {
            return false;
        }
        state.items.push_back(job);
        drop(state);
        self.takers.notify_one();
        true
    }

    /// Blocking take: the next job, or `None` once the queue is closed
    /// *and* drained.
    pub fn pop(&self) -> Option<T> {
        let Ok(mut state) = self.state.lock() else {
            return None;
        };
        loop {
            if let Some(job) = state.items.pop_front() {
                drop(state);
                self.givers.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            match self.takers.wait(state) {
                Ok(s) => state = s,
                Err(_) => return None,
            }
        }
    }

    /// Closes the queue: no further admissions; workers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.takers.notify_all();
        self.givers.notify_all();
    }
}

impl<T> fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_bounded_and_typed() {
        let q = JobQueue::new(2, 40);
        assert!(q.try_submit(1).is_ok());
        assert!(q.try_submit(2).is_ok());
        let (job, full) = q.try_submit(3).unwrap_err();
        assert_eq!(job, 3);
        assert_eq!(full.capacity, 2);
        assert_eq!(full.retry_after_ms, 40);
        // Draining frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_submit(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(4, 1);
        assert!(q.try_submit("a").is_ok());
        q.close();
        assert!(q.try_submit("b").is_err(), "closed queue admits nothing");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn workers_drain_across_threads() {
        let q = JobQueue::new(8, 1);
        let drained = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(n) = q.pop() {
                        drained.lock().unwrap().push(n);
                    }
                });
            }
            for n in 0..20 {
                q.submit(n);
            }
            q.close();
        });
        let mut got = drained.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
