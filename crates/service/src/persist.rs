//! Warm-restart persistence for the artifact cache: [`EngineSession`]s
//! serialized to one file per context fingerprint under a cache
//! directory, written on eviction and shutdown, reloaded at startup.
//!
//! # Format
//!
//! Each file is `<fingerprint as 16 lowercase hex digits>.kbps` holding
//!
//! ```text
//! magic    [u8; 8]   b"KBPSESS1"
//! version  u64 LE    FORMAT_VERSION
//! scenario u64 LE length + bytes     ┐ provenance key: what produced
//! fault    u8 tag (0 none / 1 some)  │ this fingerprint ([`SessionKey`])
//!   rung   u64 LE length + bytes     │ (present only when tag = 1)
//!   seed   u64 LE                    ┘
//! body     bytes     EngineSession through the positional binary codec
//! ```
//!
//! The provenance key exists because fingerprints alone are opaque:
//! they hash `(scenario, recall, fault rung, seed)` and the seed makes
//! the valid set non-enumerable, so "is this file still something the
//! registry can produce?" is unanswerable from the file name. The key
//! records the producing inputs; [`SessionStore::compact`] re-derives
//! the fingerprint from the *current* registry and garbage-collects
//! files the registry no longer produces (renamed scenarios, removed
//! rungs, stale formats) instead of letting them accumulate forever.
//!
//! The body uses the same positional encoding the workspace's serde
//! round-trip tests pin down: `u64` little-endian for every integer,
//! length-prefixed byte strings, enums as variant indexes, structs and
//! tuples positional. The encoding is **canonical** — snapshot maps
//! serialize key-sorted (see `EvalCacheSnapshot`'s serde) — so equal
//! sessions produce equal files, which is what lets the restart
//! determinism suite compare artifacts byte-for-byte.
//!
//! # Versioning
//!
//! `FORMAT_VERSION` is bumped whenever any persisted type changes shape
//! (arena node variants, snapshot fields, session layout). A version or
//! magic mismatch is *not* an error at load time: the file is skipped
//! and the context simply solves cold, exactly as if the cache had been
//! evicted. Corrupt or truncated files degrade the same way. Persistence
//! must never be able to take the daemon down.

use kbp_core::EngineSession;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Leading bytes of every session file.
pub const MAGIC: &[u8; 8] = b"KBPSESS1";

/// Leading bytes of every persisted scenario definition.
pub const DEF_MAGIC: &[u8; 8] = b"KBPDEF01";

/// File extension of persisted scenario definitions.
pub const DEF_EXTENSION: &str = "kbpdef";

/// Body format version; bump on any persisted-type shape change.
/// Version 2 added the provenance key ([`SessionKey`]) to the header.
pub const FORMAT_VERSION: u64 = 2;

/// File extension of persisted sessions.
pub const EXTENSION: &str = "kbps";

/// Why a session file could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error (create/rename/read/write).
    Io(std::io::Error),
    /// The payload could not be encoded or decoded.
    Codec(String),
    /// The file is not a session file (bad magic) or from an
    /// incompatible format version.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "session file I/O failed: {e}"),
            PersistError::Codec(e) => write!(f, "session payload invalid: {e}"),
            PersistError::Format(e) => write!(f, "session file format mismatch: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The provenance key written into every session-file header: the
/// registry inputs whose fingerprint names the file. Store compaction
/// replays these inputs through the *current* registry to decide whether
/// a file is still producible (see [`SessionStore::compact`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKey {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Fault rung name and schedule seed, for faulty contexts.
    pub fault: Option<(String, u64)>,
}

impl SessionKey {
    /// A key for a fault-free context of `scenario`.
    #[must_use]
    pub fn plain(scenario: &str) -> Self {
        SessionKey {
            scenario: scenario.to_string(),
            fault: None,
        }
    }

    /// A key for `scenario` under the named fault rung and seed.
    #[must_use]
    pub fn faulty(scenario: &str, rung: &str, seed: u64) -> Self {
        SessionKey {
            scenario: scenario.to_string(),
            fault: Some((rung.to_string(), seed)),
        }
    }

    /// The fault component as borrowed parts (the shape
    /// [`crate::registry::ScenarioEntry::fingerprint`] takes).
    #[must_use]
    pub fn fault_ref(&self) -> Option<(&str, u64)> {
        self.fault
            .as_ref()
            .map(|(rung, seed)| (rung.as_str(), *seed))
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.scenario.len() as u64).to_le_bytes());
        out.extend_from_slice(self.scenario.as_bytes());
        match &self.fault {
            None => out.push(0),
            Some((rung, seed)) => {
                out.push(1);
                out.extend_from_slice(&(rung.len() as u64).to_le_bytes());
                out.extend_from_slice(rung.as_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
        }
    }
}

/// Serializes `session` under its provenance `key` to the versioned
/// on-disk byte layout.
///
/// # Errors
///
/// Returns [`PersistError::Codec`] if the session fails to encode
/// (cannot happen for sessions produced by the solver; kept typed for
/// the panic-free gate).
pub fn encode_session(key: &SessionKey, session: &EngineSession) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    key.encode_into(&mut out);
    let mut ser = codec::Encoder { out: &mut out };
    serde::Serialize::serialize(session, &mut ser).map_err(|e| PersistError::Codec(e.0))?;
    Ok(out)
}

/// Parses magic, version and the provenance key; returns the key and the
/// offset where the session body starts.
fn decode_header(bytes: &[u8]) -> Result<(SessionKey, usize), PersistError> {
    let Some(header) = bytes.get(..MAGIC.len()) else {
        return Err(PersistError::Format("file shorter than magic".into()));
    };
    if header != MAGIC {
        return Err(PersistError::Format("bad magic".into()));
    }
    let Some(ver_bytes) = bytes.get(MAGIC.len()..MAGIC.len() + 8) else {
        return Err(PersistError::Format("file shorter than version".into()));
    };
    let mut ver = [0u8; 8];
    ver.copy_from_slice(ver_bytes);
    let version = u64::from_le_bytes(ver);
    if version != FORMAT_VERSION {
        return Err(PersistError::Format(format!(
            "format version {version}, expected {FORMAT_VERSION}"
        )));
    }
    let mut pos = MAGIC.len() + 8;
    let take = |bytes: &[u8], pos: &mut usize, n: usize| -> Result<Vec<u8>, PersistError> {
        let end = pos
            .checked_add(n)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| PersistError::Format("truncated provenance key".into()))?;
        let out = bytes[*pos..end].to_vec();
        *pos = end;
        Ok(out)
    };
    let take_u64 = |bytes: &[u8], pos: &mut usize| -> Result<u64, PersistError> {
        let raw = take(bytes, pos, 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&raw);
        Ok(u64::from_le_bytes(b))
    };
    let take_string = |bytes: &[u8], pos: &mut usize| -> Result<String, PersistError> {
        let len = usize::try_from(take_u64(bytes, pos)?)
            .map_err(|_| PersistError::Format("key length exceeds address space".into()))?;
        if len > bytes.len() - *pos {
            return Err(PersistError::Format("truncated provenance key".into()));
        }
        String::from_utf8(take(bytes, pos, len)?)
            .map_err(|_| PersistError::Format("provenance key is not UTF-8".into()))
    };
    let scenario = take_string(bytes, &mut pos)?;
    let fault = match take(bytes, &mut pos, 1)?[0] {
        0 => None,
        1 => {
            let rung = take_string(bytes, &mut pos)?;
            let seed = take_u64(bytes, &mut pos)?;
            Some((rung, seed))
        }
        other => {
            return Err(PersistError::Format(format!(
                "invalid fault tag {other} in provenance key"
            )))
        }
    };
    Ok((SessionKey { scenario, fault }, pos))
}

/// Decodes a session (and its provenance key) from the on-disk byte
/// layout, validating magic, version, and the arena/snapshot invariants
/// re-checked by the typed deserializers.
///
/// # Errors
///
/// Returns [`PersistError::Format`] on a magic, version or key mismatch
/// and [`PersistError::Codec`] on a truncated or invalid body.
pub fn decode_session(bytes: &[u8]) -> Result<(SessionKey, EngineSession), PersistError> {
    let (key, body_start) = decode_header(bytes)?;
    let body = &bytes[body_start..];
    let mut de = codec::Decoder {
        input: body,
        pos: 0,
    };
    let session: EngineSession =
        serde::Deserialize::deserialize(&mut de).map_err(|e| PersistError::Codec(e.0))?;
    if de.pos != body.len() {
        return Err(PersistError::Codec(format!(
            "{} trailing bytes after session body",
            body.len() - de.pos
        )));
    }
    Ok((key, session))
}

/// A client-registered DSL scenario as persisted next to the session
/// files: everything needed to rebuild the definition at startup (the
/// daemon re-compiles the source rather than trusting a serialized
/// compilation, so a format change in the compiler can never resurrect
/// a stale lowering).
///
/// # Format
///
/// Each file is `def-<fingerprint as 16 lowercase hex digits>.kbpdef`
/// holding
///
/// ```text
/// magic   [u8; 8]   b"KBPDEF01"
/// name    u64 LE length + bytes
/// owner   u64 LE length + bytes
/// source  u64 LE length + bytes
/// ```
///
/// Corrupt, truncated or mis-fingerprinted files are skipped at load —
/// like session files, definition persistence must never be able to
/// take the daemon down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefinitionRecord {
    /// Wire name the scenario is registered under.
    pub name: String,
    /// Client identity that owns the definition.
    pub owner: String,
    /// The `.kbp` source text, re-compiled at load.
    pub source: String,
}

impl DefinitionRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            DEF_MAGIC.len() + 24 + self.name.len() + self.owner.len() + self.source.len(),
        );
        out.extend_from_slice(DEF_MAGIC);
        for field in [&self.name, &self.owner, &self.source] {
            out.extend_from_slice(&(field.len() as u64).to_le_bytes());
            out.extend_from_slice(field.as_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<DefinitionRecord, PersistError> {
        let Some(header) = bytes.get(..DEF_MAGIC.len()) else {
            return Err(PersistError::Format("file shorter than magic".into()));
        };
        if header != DEF_MAGIC {
            return Err(PersistError::Format("bad definition magic".into()));
        }
        let mut pos = DEF_MAGIC.len();
        let mut take_string = || -> Result<String, PersistError> {
            let raw = bytes
                .get(pos..pos + 8)
                .ok_or_else(|| PersistError::Format("truncated definition".into()))?;
            let mut b = [0u8; 8];
            b.copy_from_slice(raw);
            pos += 8;
            let len = usize::try_from(u64::from_le_bytes(b))
                .map_err(|_| PersistError::Format("length exceeds address space".into()))?;
            let raw = bytes
                .get(pos..pos.saturating_add(len))
                .ok_or_else(|| PersistError::Format("truncated definition".into()))?;
            pos += len;
            String::from_utf8(raw.to_vec())
                .map_err(|_| PersistError::Format("definition is not UTF-8".into()))
        };
        let name = take_string()?;
        let owner = take_string()?;
        let source = take_string()?;
        if pos != bytes.len() {
            return Err(PersistError::Format(format!(
                "{} trailing bytes after definition",
                bytes.len() - pos
            )));
        }
        Ok(DefinitionRecord {
            name,
            owner,
            source,
        })
    }
}

/// What a [`SessionStore::compact`] pass did: how many stale files were
/// removed, and how many removals failed (still on disk, retried next
/// compaction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Compaction {
    /// Files removed because the registry no longer produces their
    /// fingerprint (or the file was unreadable/from an old format).
    pub removed: usize,
    /// Removals that failed at the filesystem level.
    pub failures: usize,
}

/// A directory of persisted sessions, one file per context fingerprint.
#[derive(Debug, Clone)]
pub struct SessionStore {
    dir: PathBuf,
}

impl SessionStore {
    /// Opens (creating if necessary) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<SessionStore, PersistError> {
        fs::create_dir_all(dir)?;
        Ok(SessionStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory backing this store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.{EXTENSION}"))
    }

    /// Writes `session` for `fingerprint` under its provenance `key`,
    /// atomically replacing any previous file (write to a dot-prefixed
    /// temporary in the same directory, then rename — a crashed writer
    /// leaves the old file intact and the temporary is invisible to
    /// [`list`](Self::list)).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if encoding or any filesystem step
    /// fails. Callers treat persistence as best-effort.
    pub fn save(
        &self,
        fingerprint: u64,
        key: &SessionKey,
        session: &EngineSession,
    ) -> Result<(), PersistError> {
        let bytes = encode_session(key, session)?;
        let tmp = self.dir.join(format!(".{fingerprint:016x}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        match fs::rename(&tmp, self.path_for(fingerprint)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(PersistError::Io(e))
            }
        }
    }

    /// Loads the session (and its provenance key) persisted for
    /// `fingerprint`, or `None` when no file exists.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for unreadable, corrupt, or
    /// version-mismatched files; callers degrade to a cold solve.
    pub fn load(
        &self,
        fingerprint: u64,
    ) -> Result<Option<(SessionKey, EngineSession)>, PersistError> {
        let path = self.path_for(fingerprint);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(PersistError::Io(e)),
        };
        decode_session(&bytes).map(Some)
    }

    /// Reads only the provenance key of the file for `fingerprint`,
    /// without decoding the (much larger) session body.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for missing, unreadable or corrupt
    /// headers.
    pub fn read_key(&self, fingerprint: u64) -> Result<SessionKey, PersistError> {
        let bytes = fs::read(self.path_for(fingerprint))?;
        decode_header(&bytes).map(|(key, _)| key)
    }

    /// Garbage-collects files whose fingerprints the current registry no
    /// longer produces: for every listed file, the provenance key is
    /// read back and judged by `live(key, fingerprint)` — typically a
    /// registry replay checking the key still fingerprints to the file's
    /// name. Files failing the check, plus files whose header cannot be
    /// read at all (corrupt, truncated, pre-provenance formats), are
    /// removed. Without compaction these accumulate forever: every
    /// `(rung, seed)` combination ever solved leaves a file, and renamed
    /// scenarios orphan theirs.
    pub fn compact(&self, live: impl Fn(&SessionKey, u64) -> bool) -> Compaction {
        let mut outcome = Compaction::default();
        let Ok(fingerprints) = self.list() else {
            return outcome;
        };
        for fp in fingerprints {
            let keep = match self.read_key(fp) {
                Ok(key) => live(&key, fp),
                Err(_) => false,
            };
            if keep {
                continue;
            }
            match self.remove(fp) {
                Ok(()) => outcome.removed += 1,
                Err(_) => outcome.failures += 1,
            }
        }
        outcome
    }

    /// The fingerprints with a persisted file, ascending — a stable
    /// order so preloading under a capacity bound is deterministic.
    ///
    /// Unparseable file names are ignored (they cannot have been written
    /// by [`save`](Self::save)).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the directory cannot be listed.
    pub fn list(&self) -> Result<Vec<u64>, PersistError> {
        let mut fingerprints = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(&format!(".{EXTENSION}")) else {
                continue;
            };
            if stem.len() != 16 {
                continue;
            }
            if let Ok(fp) = u64::from_str_radix(stem, 16) {
                fingerprints.push(fp);
            }
        }
        fingerprints.sort_unstable();
        Ok(fingerprints)
    }

    /// Removes the persisted file for `fingerprint`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure other than the
    /// file already being gone.
    pub fn remove(&self, fingerprint: u64) -> Result<(), PersistError> {
        match fs::remove_file(self.path_for(fingerprint)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(PersistError::Io(e)),
        }
    }

    fn def_path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir
            .join(format!("def-{fingerprint:016x}.{DEF_EXTENSION}"))
    }

    /// Writes the scenario definition named by `fingerprint`, atomically
    /// replacing any previous file (same dot-prefixed-temporary-then-
    /// rename discipline as [`save`](Self::save)).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if any filesystem step fails.
    /// Callers treat definition persistence as best-effort.
    pub fn save_definition(
        &self,
        fingerprint: u64,
        record: &DefinitionRecord,
    ) -> Result<(), PersistError> {
        let bytes = record.encode();
        let tmp = self.dir.join(format!(".def-{fingerprint:016x}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        match fs::rename(&tmp, self.def_path_for(fingerprint)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(PersistError::Io(e))
            }
        }
    }

    /// Loads every persisted scenario definition, ascending by
    /// fingerprint (a stable order so restore under a quota is
    /// deterministic). Corrupt, truncated or unreadable files are
    /// skipped — the caller additionally re-verifies each record's
    /// fingerprint against its file name before trusting it.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the directory cannot be listed.
    pub fn load_definitions(&self) -> Result<Vec<(u64, DefinitionRecord)>, PersistError> {
        let mut defs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("def-")
                .and_then(|rest| rest.strip_suffix(&format!(".{DEF_EXTENSION}")))
            else {
                continue;
            };
            if stem.len() != 16 {
                continue;
            }
            let Ok(fp) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let Ok(bytes) = fs::read(entry.path()) else {
                continue;
            };
            if let Ok(record) = DefinitionRecord::decode(&bytes) {
                defs.push((fp, record));
            }
        }
        defs.sort_unstable_by_key(|(fp, _)| *fp);
        Ok(defs)
    }

    /// Removes the persisted definition for `fingerprint`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure other than the
    /// file already being gone.
    pub fn remove_definition(&self, fingerprint: u64) -> Result<(), PersistError> {
        match fs::remove_file(self.def_path_for(fingerprint)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(PersistError::Io(e)),
        }
    }
}

/// The positional binary codec behind the session files: the minimal
/// encoder/decoder pair over the vendored serde data model. Integers are
/// `u64` little-endian, strings and byte slices length-prefixed, enums
/// variant-indexed, structs and tuples positional (field names never hit
/// the wire — the typed `Deserialize` impls define the layout).
mod codec {
    /// Codec error carrying a human-readable message.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for Error {}
    impl serde::ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }
    impl serde::de::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    pub struct Encoder<'a> {
        pub out: &'a mut Vec<u8>,
    }

    impl Encoder<'_> {
        fn put_u64(&mut self, v: u64) {
            self.out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_bytes(&mut self, b: &[u8]) {
            self.put_u64(b.len() as u64);
            self.out.extend_from_slice(b);
        }
    }

    macro_rules! enc_int {
        ($name:ident, $t:ty) => {
            fn $name(self, v: $t) -> Result<(), Error> {
                #[allow(clippy::cast_sign_loss)]
                self.put_u64(v as u64);
                Ok(())
            }
        };
    }

    impl serde::ser::Serializer for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push(u8::from(v));
            Ok(())
        }
        enc_int!(serialize_i8, i8);
        enc_int!(serialize_i16, i16);
        enc_int!(serialize_i32, i32);
        enc_int!(serialize_i64, i64);
        enc_int!(serialize_u8, u8);
        enc_int!(serialize_u16, u16);
        enc_int!(serialize_u32, u32);
        enc_int!(serialize_u64, u64);
        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.put_u64(u64::from(v.to_bits()));
            Ok(())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            self.put_u64(v.to_bits());
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            self.put_u64(u64::from(v));
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            self.put_bytes(v.as_bytes());
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
            self.put_bytes(v);
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push(0);
            Ok(())
        }
        fn serialize_some<T: ?Sized + serde::Serialize>(self, value: &T) -> Result<(), Error> {
            self.out.push(1);
            value.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            idx: u32,
            _: &'static str,
        ) -> Result<(), Error> {
            self.put_u64(u64::from(idx));
            Ok(())
        }
        fn serialize_newtype_struct<T: ?Sized + serde::Serialize>(
            self,
            _: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + serde::Serialize>(
            self,
            _: &'static str,
            idx: u32,
            _: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.put_u64(u64::from(idx));
            value.serialize(self)
        }
        fn serialize_seq(self, len: Option<usize>) -> Result<Self, Error> {
            let len = len.ok_or_else(|| Error("sequence length required".into()))?;
            self.put_u64(len as u64);
            Ok(self)
        }
        fn serialize_tuple(self, _: usize) -> Result<Self, Error> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _: &'static str, _: usize) -> Result<Self, Error> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            idx: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self, Error> {
            self.put_u64(u64::from(idx));
            Ok(self)
        }
        fn serialize_map(self, len: Option<usize>) -> Result<Self, Error> {
            let len = len.ok_or_else(|| Error("map length required".into()))?;
            self.put_u64(len as u64);
            Ok(self)
        }
        fn serialize_struct(self, _: &'static str, _: usize) -> Result<Self, Error> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            idx: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self, Error> {
            self.put_u64(u64::from(idx));
            Ok(self)
        }
    }

    macro_rules! enc_compound {
        ($trait:ident, $fn:ident) => {
            impl serde::ser::$trait for &mut Encoder<'_> {
                type Ok = ();
                type Error = Error;
                fn $fn<T: ?Sized + serde::Serialize>(&mut self, value: &T) -> Result<(), Error> {
                    value.serialize(&mut **self)
                }
                fn end(self) -> Result<(), Error> {
                    Ok(())
                }
            }
        };
    }
    enc_compound!(SerializeSeq, serialize_element);
    enc_compound!(SerializeTuple, serialize_element);
    enc_compound!(SerializeTupleStruct, serialize_field);
    enc_compound!(SerializeTupleVariant, serialize_field);

    impl serde::ser::SerializeMap for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: ?Sized + serde::Serialize>(&mut self, key: &T) -> Result<(), Error> {
            key.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + serde::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl serde::ser::SerializeStruct for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + serde::Serialize>(
            &mut self,
            _: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }
    impl serde::ser::SerializeStructVariant for &mut Encoder<'_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: ?Sized + serde::Serialize>(
            &mut self,
            _: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Error> {
            Ok(())
        }
    }

    pub struct Decoder<'de> {
        pub input: &'de [u8],
        pub pos: usize,
    }

    impl<'de> Decoder<'de> {
        fn take(&mut self, n: usize) -> Result<&'de [u8], Error> {
            let end = self
                .pos
                .checked_add(n)
                .ok_or_else(|| Error("length overflow".into()))?;
            if end > self.input.len() {
                return Err(Error("unexpected end of session body".into()));
            }
            let s = &self.input[self.pos..end];
            self.pos = end;
            Ok(s)
        }
        fn get_u64(&mut self) -> Result<u64, Error> {
            let b = self.take(8)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(b);
            Ok(u64::from_le_bytes(raw))
        }
        fn get_bytes(&mut self) -> Result<&'de [u8], Error> {
            let len = usize::try_from(self.get_u64()?)
                .map_err(|_| Error("length exceeds address space".into()))?;
            self.take(len)
        }
    }

    macro_rules! dec_int {
        ($name:ident, $visit:ident, $t:ty) => {
            fn $name<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let v = self.get_u64()?;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                visitor.$visit(v as $t)
            }
        };
    }

    impl<'de> serde::de::Deserializer<'de> for &mut Decoder<'de> {
        type Error = Error;

        fn deserialize_any<V: serde::de::Visitor<'de>>(self, _: V) -> Result<V::Value, Error> {
            Err(Error("format is not self-describing".into()))
        }
        fn deserialize_bool<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let b = self.take(1)?[0];
            visitor.visit_bool(b != 0)
        }
        dec_int!(deserialize_i8, visit_i8, i8);
        dec_int!(deserialize_i16, visit_i16, i16);
        dec_int!(deserialize_i32, visit_i32, i32);
        dec_int!(deserialize_i64, visit_i64, i64);
        dec_int!(deserialize_u8, visit_u8, u8);
        dec_int!(deserialize_u16, visit_u16, u16);
        dec_int!(deserialize_u32, visit_u32, u32);
        dec_int!(deserialize_u64, visit_u64, u64);
        fn deserialize_f32<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let v = self.get_u64()?;
            #[allow(clippy::cast_possible_truncation)]
            visitor.visit_f32(f32::from_bits(v as u32))
        }
        fn deserialize_f64<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let v = self.get_u64()?;
            visitor.visit_f64(f64::from_bits(v))
        }
        fn deserialize_char<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let v = self.get_u64()?;
            let c = u32::try_from(v)
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| Error("invalid char scalar".into()))?;
            visitor.visit_char(c)
        }
        fn deserialize_str<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let b = self.get_bytes()?;
            visitor.visit_str(std::str::from_utf8(b).map_err(|e| Error(e.to_string()))?)
        }
        fn deserialize_string<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            self.deserialize_str(visitor)
        }
        fn deserialize_bytes<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let b = self.get_bytes()?;
            visitor.visit_bytes(b)
        }
        fn deserialize_byte_buf<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            self.deserialize_bytes(visitor)
        }
        fn deserialize_option<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let tag = self.take(1)?[0];
            match tag {
                0 => visitor.visit_none(),
                1 => visitor.visit_some(self),
                other => Err(Error(format!("invalid option tag {other}"))),
            }
        }
        fn deserialize_unit<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_unit()
        }
        fn deserialize_unit_struct<V: serde::de::Visitor<'de>>(
            self,
            _: &'static str,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_unit()
        }
        fn deserialize_newtype_struct<V: serde::de::Visitor<'de>>(
            self,
            _: &'static str,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_newtype_struct(self)
        }
        fn deserialize_seq<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let len = usize::try_from(self.get_u64()?)
                .map_err(|_| Error("length exceeds address space".into()))?;
            // Every element costs ≥ 1 byte, so a declared count beyond
            // the remaining bytes is corrupt; reject before the visitor
            // can turn `size_hint` into a huge allocation.
            if len > self.input.len() - self.pos {
                return Err(Error(format!(
                    "declared {len} elements with {} bytes left",
                    self.input.len() - self.pos
                )));
            }
            visitor.visit_seq(Counted {
                de: self,
                left: len,
            })
        }
        fn deserialize_tuple<V: serde::de::Visitor<'de>>(
            self,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_seq(Counted {
                de: self,
                left: len,
            })
        }
        fn deserialize_tuple_struct<V: serde::de::Visitor<'de>>(
            self,
            _: &'static str,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Error> {
            self.deserialize_tuple(len, visitor)
        }
        fn deserialize_map<V: serde::de::Visitor<'de>>(
            self,
            visitor: V,
        ) -> Result<V::Value, Error> {
            let len = usize::try_from(self.get_u64()?)
                .map_err(|_| Error("length exceeds address space".into()))?;
            if len > self.input.len() - self.pos {
                return Err(Error(format!(
                    "declared {len} entries with {} bytes left",
                    self.input.len() - self.pos
                )));
            }
            visitor.visit_map(Counted {
                de: self,
                left: len,
            })
        }
        fn deserialize_struct<V: serde::de::Visitor<'de>>(
            self,
            _: &'static str,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_seq(Counted {
                de: self,
                left: fields.len(),
            })
        }
        fn deserialize_enum<V: serde::de::Visitor<'de>>(
            self,
            _: &'static str,
            _: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_enum(Enum { de: self })
        }
        fn deserialize_identifier<V: serde::de::Visitor<'de>>(
            self,
            _: V,
        ) -> Result<V::Value, Error> {
            Err(Error("identifiers are positional".into()))
        }
        fn deserialize_ignored_any<V: serde::de::Visitor<'de>>(
            self,
            _: V,
        ) -> Result<V::Value, Error> {
            Err(Error("cannot skip in positional format".into()))
        }
    }

    struct Counted<'a, 'de> {
        de: &'a mut Decoder<'de>,
        left: usize,
    }

    impl<'de> serde::de::SeqAccess<'de> for Counted<'_, 'de> {
        type Error = Error;
        fn next_element_seed<T: serde::de::DeserializeSeed<'de>>(
            &mut self,
            seed: T,
        ) -> Result<Option<T::Value>, Error> {
            if self.left == 0 {
                return Ok(None);
            }
            self.left -= 1;
            seed.deserialize(&mut *self.de).map(Some)
        }
        fn size_hint(&self) -> Option<usize> {
            Some(self.left)
        }
    }

    impl<'de> serde::de::MapAccess<'de> for Counted<'_, 'de> {
        type Error = Error;
        fn next_key_seed<K: serde::de::DeserializeSeed<'de>>(
            &mut self,
            seed: K,
        ) -> Result<Option<K::Value>, Error> {
            if self.left == 0 {
                return Ok(None);
            }
            self.left -= 1;
            seed.deserialize(&mut *self.de).map(Some)
        }
        fn next_value_seed<V: serde::de::DeserializeSeed<'de>>(
            &mut self,
            seed: V,
        ) -> Result<V::Value, Error> {
            seed.deserialize(&mut *self.de)
        }
    }

    struct Enum<'a, 'de> {
        de: &'a mut Decoder<'de>,
    }

    impl<'de> serde::de::EnumAccess<'de> for Enum<'_, 'de> {
        type Error = Error;
        type Variant = Self;
        fn variant_seed<V: serde::de::DeserializeSeed<'de>>(
            self,
            seed: V,
        ) -> Result<(V::Value, Self), Error> {
            let idx = u32::try_from(self.de.get_u64()?)
                .map_err(|_| Error("variant index exceeds u32".into()))?;
            let val = seed.deserialize(serde::de::value::U32Deserializer::new(idx))?;
            Ok((val, self))
        }
    }

    impl<'de> serde::de::VariantAccess<'de> for Enum<'_, 'de> {
        type Error = Error;
        fn unit_variant(self) -> Result<(), Error> {
            Ok(())
        }
        fn newtype_variant_seed<T: serde::de::DeserializeSeed<'de>>(
            self,
            seed: T,
        ) -> Result<T::Value, Error> {
            seed.deserialize(self.de)
        }
        fn tuple_variant<V: serde::de::Visitor<'de>>(
            self,
            len: usize,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_seq(Counted {
                de: self.de,
                left: len,
            })
        }
        fn struct_variant<V: serde::de::Visitor<'de>>(
            self,
            fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_seq(Counted {
                de: self.de,
                left: fields.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm_session() -> EngineSession {
        // Run a real solve through a session so the persisted artifact
        // carries a non-trivial arena and layer snapshots.
        let sc = kbp_scenarios::muddy_children::MuddyChildren::new(3);
        let ctx = sc.context();
        let kbp = sc.kbp();
        let mut session = EngineSession::new();
        let _ = kbp_core::SyncSolver::new(&ctx, &kbp)
            .horizon(4)
            .solve_budgeted_with(&mut session)
            .expect("solves");
        session
    }

    fn test_key() -> SessionKey {
        SessionKey::plain("muddy_children_3")
    }

    #[test]
    fn encode_decode_roundtrips_a_warm_session() {
        let session = warm_session();
        assert!(session.snapshot_layers() > 0, "solve produced snapshots");
        let bytes = encode_session(&test_key(), &session).unwrap();
        assert_eq!(&bytes[..MAGIC.len()], MAGIC);
        let (key, back) = decode_session(&bytes).unwrap();
        assert_eq!(key, test_key());
        assert_eq!(back.snapshot_layers(), session.snapshot_layers());
        // Canonical encoding: re-encoding the decoded session is
        // byte-identical (maps travel key-sorted).
        assert_eq!(encode_session(&key, &back).unwrap(), bytes);
        // Faulty keys roundtrip too.
        let faulty = SessionKey::faulty("bit_transmission", "loss", 7);
        let bytes = encode_session(&faulty, &session).unwrap();
        let (key, _) = decode_session(&bytes).unwrap();
        assert_eq!(key, faulty);
        assert_eq!(key.fault_ref(), Some(("loss", 7)));
    }

    #[test]
    fn header_mismatches_are_typed_format_errors() {
        let session = warm_session();
        let bytes = encode_session(&test_key(), &session).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_session(&bad_magic),
            Err(PersistError::Format(_))
        ));

        let mut bad_version = bytes.clone();
        bad_version[MAGIC.len()] ^= 0xFF;
        assert!(matches!(
            decode_session(&bad_version),
            Err(PersistError::Format(_))
        ));

        assert!(matches!(
            decode_session(&bytes[..4]),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn corrupt_bodies_are_codec_errors_not_panics() {
        let session = warm_session();
        let bytes = encode_session(&test_key(), &session).unwrap();
        // Truncating inside the provenance key is a typed Format error.
        assert!(matches!(
            decode_session(&bytes[..MAGIC.len() + 12]),
            Err(PersistError::Format(_))
        ));
        // Truncate the body at several depths.
        let body_start = MAGIC.len() + 8 + 8 + test_key().scenario.len() + 1;
        for cut in [body_start, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(decode_session(&bytes[..cut]), Err(PersistError::Codec(_))),
                "cut at {cut} must fail typed"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_session(&padded),
            Err(PersistError::Codec(_))
        ));
        // Flip a byte inside the arena region: either a typed error or a
        // differing-but-valid session, never a panic.
        let mut flipped = bytes;
        let mid = body_start + 16;
        if mid < flipped.len() {
            flipped[mid] ^= 0x01;
            let _ = decode_session(&flipped);
        }
    }

    #[test]
    fn store_saves_lists_loads_and_removes() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-persist-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).unwrap();
        assert!(store.list().unwrap().is_empty());

        let session = warm_session();
        store.save(7, &test_key(), &session).unwrap();
        store.save(3, &test_key(), &session).unwrap();
        assert_eq!(store.list().unwrap(), vec![3, 7]);

        let (key, back) = store.load(7).unwrap().expect("file exists");
        assert_eq!(key, test_key());
        assert_eq!(back.snapshot_layers(), session.snapshot_layers());
        assert_eq!(store.read_key(7).unwrap(), test_key());
        assert!(store.load(99).unwrap().is_none());

        // A corrupt file is a typed error, and unrelated names are not
        // listed.
        std::fs::write(dir.join(format!("{:016x}.{EXTENSION}", 5u64)), b"junk").unwrap();
        std::fs::write(dir.join("README.txt"), b"not a session").unwrap();
        assert!(store.load(5).is_err());
        assert!(store.read_key(5).is_err());
        assert_eq!(store.list().unwrap(), vec![3, 5, 7]);

        store.remove(7).unwrap();
        store.remove(7).unwrap(); // idempotent
        assert_eq!(store.list().unwrap(), vec![3, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_removes_what_the_registry_no_longer_produces() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-persist-compact-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).unwrap();
        let session = warm_session();

        // A live file, a file whose key the "registry" disowns, a
        // corrupt file, and a pre-provenance (version 1) file.
        store.save(10, &test_key(), &session).unwrap();
        store
            .save(20, &SessionKey::plain("renamed_away"), &session)
            .unwrap();
        std::fs::write(dir.join(format!("{:016x}.{EXTENSION}", 30u64)), b"junk").unwrap();
        let mut old = encode_session(&test_key(), &session).unwrap();
        old[MAGIC.len()] = 1; // version 2 → 1
        std::fs::write(dir.join(format!("{:016x}.{EXTENSION}", 40u64)), &old).unwrap();
        assert_eq!(store.list().unwrap(), vec![10, 20, 30, 40]);

        let outcome = store.compact(|key, fp| fp == 10 && key == &test_key());
        assert_eq!(
            outcome,
            Compaction {
                removed: 3,
                failures: 0
            }
        );
        assert_eq!(
            store.list().unwrap(),
            vec![10],
            "only the live file survives"
        );

        // Idempotent: nothing left to collect.
        assert_eq!(store.compact(|_, _| true), Compaction::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn definitions_roundtrip_and_coexist_with_sessions() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-persist-def-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).unwrap();
        assert!(store.load_definitions().unwrap().is_empty());

        let rec = DefinitionRecord {
            name: "ring_election".into(),
            owner: "10.0.0.7:55012".into(),
            source: "scenario ring_election {\n  agents a\n}\n".into(),
        };
        let other = DefinitionRecord {
            name: "two_generals".into(),
            owner: "local".into(),
            source: String::new(),
        };
        store.save_definition(9, &rec).unwrap();
        store.save_definition(4, &other).unwrap();
        assert_eq!(
            store.load_definitions().unwrap(),
            vec![(4, other), (9, rec.clone())],
            "sorted ascending by fingerprint"
        );

        // Definition files are invisible to the session listing, and
        // session files are invisible to the definition listing.
        let session = warm_session();
        store.save(9, &test_key(), &session).unwrap();
        assert_eq!(store.list().unwrap(), vec![9]);
        assert_eq!(store.load_definitions().unwrap().len(), 2);

        // Corrupt and truncated definition files are skipped, not fatal.
        std::fs::write(
            dir.join(format!("def-{:016x}.{DEF_EXTENSION}", 2u64)),
            b"junk",
        )
        .unwrap();
        let truncated = &rec.encode()[..DEF_MAGIC.len() + 11];
        std::fs::write(
            dir.join(format!("def-{:016x}.{DEF_EXTENSION}", 3u64)),
            truncated,
        )
        .unwrap();
        let loaded = store.load_definitions().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].1, rec);

        // Trailing garbage after a valid record is rejected too.
        let mut padded = rec.encode();
        padded.push(0);
        assert!(matches!(
            DefinitionRecord::decode(&padded),
            Err(PersistError::Format(_))
        ));

        // Removal is idempotent and scoped to definitions.
        store.remove_definition(9).unwrap();
        store.remove_definition(9).unwrap();
        assert_eq!(store.load_definitions().unwrap().len(), 1);
        assert_eq!(store.list().unwrap(), vec![9], "session file untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
