//! Byte-level line framing for the daemon's request streams.
//!
//! `BufRead::lines` has two failure modes a long-running daemon cannot
//! afford: a line of invalid UTF-8 surfaces as an `io::Error`
//! indistinguishable from a dead socket (so naive loops hang up, silently
//! dropping everything after it), and there is no line-length bound (so
//! one hostile client can balloon resident memory). [`LineReader`] reads
//! raw bytes instead and makes both conditions *per-line outcomes*:
//!
//! * a line that is not UTF-8 yields [`FrameError::InvalidUtf8`] — the
//!   reader stays usable and the next line parses normally;
//! * a line longer than the configured bound yields
//!   [`FrameError::Oversized`] while consuming (and discarding) the rest
//!   of the line, never buffering more than the bound plus one read
//!   chunk;
//! * an unterminated final line (EOF without `\n`) is still delivered —
//!   a client that forgets the trailing newline gets an answer, not a
//!   drop;
//! * only genuine transport errors surface as `io::Error`.
//!
//! The caller (stdin loop or TCP reader thread) maps each [`FrameError`]
//! to a typed `ok:false` response line, keeping the "every accepted line
//! is answered" invariant of the wire protocol.
//!
//! Two front ends share one grammar: the pull-based [`LineReader`] wraps
//! any blocking `Read` (stdin mode), and the push-based [`FrameDecoder`]
//! accepts whatever bytes a nonblocking socket had ready (the TCP
//! connection plane). `LineReader` is implemented *on top of*
//! `FrameDecoder`, so the bound/resync/CRLF/EOF semantics cannot drift
//! between the two modes — the chunking-invariance tests below pin both
//! at once.

use std::collections::VecDeque;
use std::fmt;
use std::io::Read;

/// Default per-line byte bound (1 MiB): far above any legitimate request
/// (the largest registry job line is under 1 KiB) while bounding what a
/// misbehaving client can make the daemon buffer.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// A malformed frame (one line), reported per line — the stream
/// continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line exceeded the configured byte bound; the overflow was
    /// discarded up to the next newline.
    Oversized {
        /// The configured bound the line broke.
        limit: usize,
    },
    /// The line is not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            FrameError::InvalidUtf8 => write!(f, "request line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One step of the framed stream.
#[derive(Debug, PartialEq, Eq)]
pub enum LineOutcome {
    /// A complete line (without its terminator). The final line is
    /// delivered even if the stream ended without `\n`.
    Line(String),
    /// A malformed line; the reader has already resynchronized to the
    /// next line.
    Malformed(FrameError),
    /// End of stream.
    Eof,
}

/// The push-based half of the framing grammar: feed it whatever bytes
/// arrived, pop complete [`LineOutcome`]s.
///
/// This is what the nonblocking connection plane uses — a readiness
/// loop cannot block inside `Read`, so the decoder accepts partial
/// lines across any number of `feed` calls and holds at most
/// `max_line + 1` pending bytes (an overflowing line is discarded, not
/// buffered). [`LineOutcome::Eof`] is never produced here; the caller
/// owns the transport and calls [`finish`](Self::finish) when the peer
/// half-closes, which delivers an unterminated final line exactly like
/// [`LineReader`] does.
#[derive(Debug)]
pub struct FrameDecoder {
    max_line: usize,
    /// Bytes of the current (incomplete) line.
    line: Vec<u8>,
    /// The current line already broke the bound; discard until newline.
    overflowing: bool,
    /// Completed outcomes not yet popped.
    ready: VecDeque<LineOutcome>,
}

impl FrameDecoder {
    /// A decoder with a per-line bound of `max_line` bytes (clamped to
    /// at least 1).
    #[must_use]
    pub fn new(max_line: usize) -> Self {
        FrameDecoder {
            max_line: max_line.max(1),
            line: Vec::new(),
            overflowing: false,
            ready: VecDeque::new(),
        }
    }

    /// Feeds a chunk of raw bytes; completed lines become poppable via
    /// [`pop`](Self::pop). Carriage returns immediately before the
    /// newline are stripped (`\r\n` clients work transparently).
    pub fn feed(&mut self, mut chunk: &[u8]) {
        while let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            let (head, rest) = chunk.split_at(nl);
            chunk = &rest[1..];
            if self.overflowing || self.line.len() + head.len() > self.max_line {
                self.overflowing = false;
                self.line.clear();
                self.ready
                    .push_back(LineOutcome::Malformed(FrameError::Oversized {
                        limit: self.max_line,
                    }));
                continue;
            }
            self.line.extend_from_slice(head);
            let bytes = std::mem::take(&mut self.line);
            self.ready.push_back(Self::complete(bytes));
        }
        // Tail without a newline: fold into the pending line, or tip the
        // line into (unbuffered) overflow.
        if !self.overflowing {
            if self.line.len() + chunk.len() > self.max_line {
                self.overflowing = true;
                self.line.clear();
            } else {
                self.line.extend_from_slice(chunk);
            }
        }
    }

    /// The next completed outcome, if any.
    pub fn pop(&mut self) -> Option<LineOutcome> {
        self.ready.pop_front()
    }

    /// Ends the stream: delivers the unterminated final line (or its
    /// oversize error), or `None` when nothing was pending.
    pub fn finish(&mut self) -> Option<LineOutcome> {
        if self.overflowing {
            self.overflowing = false;
            return Some(LineOutcome::Malformed(FrameError::Oversized {
                limit: self.max_line,
            }));
        }
        if self.line.is_empty() {
            return None;
        }
        let bytes = std::mem::take(&mut self.line);
        Some(Self::complete(bytes))
    }

    /// Whether the decoder holds a partial line (bytes arrived since the
    /// last newline). Distinguishes "idle between requests" from "went
    /// quiet mid-request" — the connection plane's read-deadline signal.
    #[must_use]
    pub fn mid_line(&self) -> bool {
        self.overflowing || !self.line.is_empty()
    }

    fn complete(mut bytes: Vec<u8>) -> LineOutcome {
        if bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
        match String::from_utf8(bytes) {
            Ok(s) => LineOutcome::Line(s),
            Err(_) => LineOutcome::Malformed(FrameError::InvalidUtf8),
        }
    }
}

/// A bounded, resynchronizing line reader over any byte stream — the
/// pull-based shell around [`FrameDecoder`] used by the stdin front end.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    decoder: FrameDecoder,
    eof: bool,
    finished: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with a per-line bound of `max_line` bytes (clamped
    /// to at least 1).
    pub fn new(inner: R, max_line: usize) -> Self {
        LineReader {
            inner,
            decoder: FrameDecoder::new(max_line),
            eof: false,
            finished: false,
        }
    }

    /// Reads the next line.
    ///
    /// Carriage returns immediately before the newline are stripped, so
    /// `\r\n`-terminated clients work transparently.
    ///
    /// # Errors
    ///
    /// Only genuine transport errors (`io::Error` from the underlying
    /// reader); malformed lines come back as
    /// [`LineOutcome::Malformed`].
    pub fn next_line(&mut self) -> std::io::Result<LineOutcome> {
        loop {
            if let Some(outcome) = self.decoder.pop() {
                return Ok(outcome);
            }
            if self.eof {
                if self.finished {
                    return Ok(LineOutcome::Eof);
                }
                self.finished = true;
                return Ok(self.decoder.finish().unwrap_or(LineOutcome::Eof));
            }
            let mut buf = [0u8; 8 * 1024];
            match self.inner.read(&mut buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out its input in fixed-size dribbles,
    /// simulating partial writes / small TCP segments.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn outcomes(data: &[u8], chunk: usize, max_line: usize) -> Vec<LineOutcome> {
        let mut reader = LineReader::new(
            Dribble {
                data,
                pos: 0,
                chunk,
            },
            max_line,
        );
        let mut out = Vec::new();
        loop {
            let step = reader.next_line().expect("no transport errors");
            let done = step == LineOutcome::Eof;
            out.push(step);
            if done {
                return out;
            }
        }
    }

    fn line(s: &str) -> LineOutcome {
        LineOutcome::Line(s.to_string())
    }

    #[test]
    fn plain_lines_in_any_chunking() {
        let data = b"alpha\nbeta\ngamma\n";
        for chunk in [1, 2, 3, 5, 64] {
            assert_eq!(
                outcomes(data, chunk, 1024),
                vec![line("alpha"), line("beta"), line("gamma"), LineOutcome::Eof],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn unterminated_final_line_is_delivered() {
        assert_eq!(
            outcomes(b"alpha\nbeta", 3, 1024),
            vec![line("alpha"), line("beta"), LineOutcome::Eof]
        );
        // A lone unterminated line too.
        assert_eq!(
            outcomes(b"solo", 1, 1024),
            vec![line("solo"), LineOutcome::Eof]
        );
    }

    #[test]
    fn crlf_is_stripped() {
        assert_eq!(
            outcomes(b"alpha\r\nbeta\r\n", 4, 1024),
            vec![line("alpha"), line("beta"), LineOutcome::Eof]
        );
    }

    #[test]
    fn invalid_utf8_poisons_one_line_only() {
        // 0xFF is never valid UTF-8; split across reads (chunk=2) the
        // line must still fail as a unit while its neighbours parse.
        let data = b"ok1\nbad\xFF\xFEline\nok2\n";
        for chunk in [1, 2, 7, 64] {
            assert_eq!(
                outcomes(data, chunk, 1024),
                vec![
                    line("ok1"),
                    LineOutcome::Malformed(FrameError::InvalidUtf8),
                    line("ok2"),
                    LineOutcome::Eof
                ],
                "chunk={chunk}"
            );
        }
        // Invalid UTF-8 on an unterminated final line is also reported.
        assert_eq!(
            outcomes(b"ok\nbad\xFF", 3, 1024),
            vec![
                line("ok"),
                LineOutcome::Malformed(FrameError::InvalidUtf8),
                LineOutcome::Eof
            ]
        );
    }

    #[test]
    fn oversized_lines_are_rejected_and_skipped() {
        // Limit 8: the 12-byte line must come back Oversized, and the
        // reader must resynchronize to the next line.
        let data = b"tiny\nAAAAAAAAAAAA\nafter\n";
        for chunk in [1, 3, 64] {
            assert_eq!(
                outcomes(data, chunk, 8),
                vec![
                    line("tiny"),
                    LineOutcome::Malformed(FrameError::Oversized { limit: 8 }),
                    line("after"),
                    LineOutcome::Eof
                ],
                "chunk={chunk}"
            );
        }
        // Oversized *unterminated* final line: reported, then EOF.
        assert_eq!(
            outcomes(b"ok\nAAAAAAAAAAAA", 4, 8),
            vec![
                line("ok"),
                LineOutcome::Malformed(FrameError::Oversized { limit: 8 }),
                LineOutcome::Eof
            ]
        );
        // Memory bound: a huge line is discarded, not buffered. (The
        // buffer never holds more than the bound + one chunk; asserting
        // behaviour, not internals: outcome is one error, then EOF.)
        let huge = vec![b'x'; 1 << 16];
        assert_eq!(
            outcomes(&huge, 8192, 64),
            vec![
                LineOutcome::Malformed(FrameError::Oversized { limit: 64 }),
                LineOutcome::Eof
            ]
        );
    }

    #[test]
    fn empty_lines_and_empty_stream() {
        assert_eq!(outcomes(b"", 4, 64), vec![LineOutcome::Eof]);
        assert_eq!(
            outcomes(b"\n\n", 4, 64),
            vec![line(""), line(""), LineOutcome::Eof]
        );
    }

    /// Drives the push decoder directly with a fixed chunking, returning
    /// every outcome including the finish-time one.
    fn decode(data: &[u8], chunk: usize, max_line: usize) -> Vec<LineOutcome> {
        let mut decoder = FrameDecoder::new(max_line);
        let mut out = Vec::new();
        for piece in data.chunks(chunk.max(1)) {
            decoder.feed(piece);
            while let Some(outcome) = decoder.pop() {
                out.push(outcome);
            }
        }
        if let Some(last) = decoder.finish() {
            out.push(last);
        }
        out
    }

    #[test]
    fn push_decoder_matches_the_pull_reader() {
        // The decoder is the reader's engine, but pin the equivalence
        // anyway: same outcomes (minus Eof) on shared inputs, for every
        // chunking.
        let cases: &[(&[u8], usize)] = &[
            (b"alpha\nbeta\ngamma\n", 1024),
            (b"alpha\nbeta", 1024),
            (b"alpha\r\nbeta\r\n", 1024),
            (b"ok1\nbad\xFF\xFEline\nok2\n", 1024),
            (b"tiny\nAAAAAAAAAAAA\nafter\n", 8),
            (b"ok\nAAAAAAAAAAAA", 8),
            (b"\n\n", 64),
        ];
        for &(data, max_line) in cases {
            for chunk in [1, 2, 3, 7, 64] {
                let mut pulled = outcomes(data, chunk, max_line);
                assert_eq!(pulled.pop(), Some(LineOutcome::Eof));
                assert_eq!(
                    decode(data, chunk, max_line),
                    pulled,
                    "data={data:?} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn push_decoder_tracks_partial_lines() {
        let mut decoder = FrameDecoder::new(64);
        assert!(!decoder.mid_line(), "fresh decoder is between lines");
        decoder.feed(b"half a requ");
        assert!(decoder.mid_line(), "bytes since the last newline");
        decoder.feed(b"est\n");
        assert!(!decoder.mid_line(), "newline completes the line");
        assert_eq!(decoder.pop(), Some(line("half a request")));
        assert_eq!(decoder.pop(), None);
        // An overflowing (discarded) line still counts as mid-line: the
        // peer owes us its terminating newline.
        decoder.feed(&vec![b'x'; 100]);
        assert!(decoder.mid_line());
        assert_eq!(
            decoder.finish(),
            Some(LineOutcome::Malformed(FrameError::Oversized { limit: 64 }))
        );
        assert!(!decoder.mid_line(), "finish drains the overflow state");
    }
}
