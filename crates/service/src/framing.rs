//! Byte-level line framing for the daemon's request streams.
//!
//! `BufRead::lines` has two failure modes a long-running daemon cannot
//! afford: a line of invalid UTF-8 surfaces as an `io::Error`
//! indistinguishable from a dead socket (so naive loops hang up, silently
//! dropping everything after it), and there is no line-length bound (so
//! one hostile client can balloon resident memory). [`LineReader`] reads
//! raw bytes instead and makes both conditions *per-line outcomes*:
//!
//! * a line that is not UTF-8 yields [`FrameError::InvalidUtf8`] — the
//!   reader stays usable and the next line parses normally;
//! * a line longer than the configured bound yields
//!   [`FrameError::Oversized`] while consuming (and discarding) the rest
//!   of the line, never buffering more than the bound plus one read
//!   chunk;
//! * an unterminated final line (EOF without `\n`) is still delivered —
//!   a client that forgets the trailing newline gets an answer, not a
//!   drop;
//! * only genuine transport errors surface as `io::Error`.
//!
//! The caller (stdin loop or TCP reader thread) maps each [`FrameError`]
//! to a typed `ok:false` response line, keeping the "every accepted line
//! is answered" invariant of the wire protocol.

use std::fmt;
use std::io::Read;

/// Default per-line byte bound (1 MiB): far above any legitimate request
/// (the largest registry job line is under 1 KiB) while bounding what a
/// misbehaving client can make the daemon buffer.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// A malformed frame (one line), reported per line — the stream
/// continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line exceeded the configured byte bound; the overflow was
    /// discarded up to the next newline.
    Oversized {
        /// The configured bound the line broke.
        limit: usize,
    },
    /// The line is not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            FrameError::InvalidUtf8 => write!(f, "request line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One step of the framed stream.
#[derive(Debug, PartialEq, Eq)]
pub enum LineOutcome {
    /// A complete line (without its terminator). The final line is
    /// delivered even if the stream ended without `\n`.
    Line(String),
    /// A malformed line; the reader has already resynchronized to the
    /// next line.
    Malformed(FrameError),
    /// End of stream.
    Eof,
}

/// A bounded, resynchronizing line reader over any byte stream.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    max_line: usize,
    /// Raw bytes read but not yet consumed (suffix of the last chunk).
    buf: Vec<u8>,
    /// Start of unconsumed bytes within `buf`.
    start: usize,
    /// Bytes of the current line accumulated so far across chunks.
    line: Vec<u8>,
    /// The current line already broke the bound; discard until newline.
    overflowing: bool,
    /// Bytes seen for the current (overflowing) line, for diagnostics.
    eof: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with a per-line bound of `max_line` bytes (clamped
    /// to at least 1).
    pub fn new(inner: R, max_line: usize) -> Self {
        LineReader {
            inner,
            max_line: max_line.max(1),
            buf: Vec::new(),
            start: 0,
            line: Vec::new(),
            overflowing: false,
            eof: false,
        }
    }

    /// Reads the next line.
    ///
    /// Carriage returns immediately before the newline are stripped, so
    /// `\r\n`-terminated clients work transparently.
    ///
    /// # Errors
    ///
    /// Only genuine transport errors (`io::Error` from the underlying
    /// reader); malformed lines come back as
    /// [`LineOutcome::Malformed`].
    pub fn next_line(&mut self) -> std::io::Result<LineOutcome> {
        loop {
            // Scan what we already have for a newline.
            if self.start < self.buf.len() {
                let chunk = &self.buf[self.start..];
                if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
                    let (head, _) = chunk.split_at(nl);
                    if self.overflowing {
                        self.start += nl + 1;
                        self.overflowing = false;
                        self.line.clear();
                        return Ok(LineOutcome::Malformed(FrameError::Oversized {
                            limit: self.max_line,
                        }));
                    }
                    if self.line.len() + head.len() > self.max_line {
                        self.start += nl + 1;
                        self.line.clear();
                        return Ok(LineOutcome::Malformed(FrameError::Oversized {
                            limit: self.max_line,
                        }));
                    }
                    self.line.extend_from_slice(head);
                    self.start += nl + 1;
                    return Ok(self.finish_line());
                }
                // No newline yet: fold the chunk into the pending line.
                if !self.overflowing {
                    if self.line.len() + chunk.len() > self.max_line {
                        self.overflowing = true;
                        self.line.clear();
                    } else {
                        self.line.extend_from_slice(chunk);
                    }
                }
                self.start = self.buf.len();
            }

            if self.eof {
                if self.overflowing {
                    self.overflowing = false;
                    return Ok(LineOutcome::Malformed(FrameError::Oversized {
                        limit: self.max_line,
                    }));
                }
                if self.line.is_empty() {
                    return Ok(LineOutcome::Eof);
                }
                // Unterminated final line: deliver it.
                return Ok(self.finish_line());
            }

            // Refill.
            self.buf.resize(8 * 1024, 0);
            self.start = 0;
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    self.buf.clear();
                    self.eof = true;
                }
                Ok(n) => {
                    self.buf.truncate(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.buf.clear();
                }
                Err(e) => {
                    self.buf.clear();
                    return Err(e);
                }
            }
        }
    }

    fn finish_line(&mut self) -> LineOutcome {
        let mut bytes = std::mem::take(&mut self.line);
        if bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
        match String::from_utf8(bytes) {
            Ok(s) => LineOutcome::Line(s),
            Err(_) => LineOutcome::Malformed(FrameError::InvalidUtf8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out its input in fixed-size dribbles,
    /// simulating partial writes / small TCP segments.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn outcomes(data: &[u8], chunk: usize, max_line: usize) -> Vec<LineOutcome> {
        let mut reader = LineReader::new(
            Dribble {
                data,
                pos: 0,
                chunk,
            },
            max_line,
        );
        let mut out = Vec::new();
        loop {
            let step = reader.next_line().expect("no transport errors");
            let done = step == LineOutcome::Eof;
            out.push(step);
            if done {
                return out;
            }
        }
    }

    fn line(s: &str) -> LineOutcome {
        LineOutcome::Line(s.to_string())
    }

    #[test]
    fn plain_lines_in_any_chunking() {
        let data = b"alpha\nbeta\ngamma\n";
        for chunk in [1, 2, 3, 5, 64] {
            assert_eq!(
                outcomes(data, chunk, 1024),
                vec![line("alpha"), line("beta"), line("gamma"), LineOutcome::Eof],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn unterminated_final_line_is_delivered() {
        assert_eq!(
            outcomes(b"alpha\nbeta", 3, 1024),
            vec![line("alpha"), line("beta"), LineOutcome::Eof]
        );
        // A lone unterminated line too.
        assert_eq!(
            outcomes(b"solo", 1, 1024),
            vec![line("solo"), LineOutcome::Eof]
        );
    }

    #[test]
    fn crlf_is_stripped() {
        assert_eq!(
            outcomes(b"alpha\r\nbeta\r\n", 4, 1024),
            vec![line("alpha"), line("beta"), LineOutcome::Eof]
        );
    }

    #[test]
    fn invalid_utf8_poisons_one_line_only() {
        // 0xFF is never valid UTF-8; split across reads (chunk=2) the
        // line must still fail as a unit while its neighbours parse.
        let data = b"ok1\nbad\xFF\xFEline\nok2\n";
        for chunk in [1, 2, 7, 64] {
            assert_eq!(
                outcomes(data, chunk, 1024),
                vec![
                    line("ok1"),
                    LineOutcome::Malformed(FrameError::InvalidUtf8),
                    line("ok2"),
                    LineOutcome::Eof
                ],
                "chunk={chunk}"
            );
        }
        // Invalid UTF-8 on an unterminated final line is also reported.
        assert_eq!(
            outcomes(b"ok\nbad\xFF", 3, 1024),
            vec![
                line("ok"),
                LineOutcome::Malformed(FrameError::InvalidUtf8),
                LineOutcome::Eof
            ]
        );
    }

    #[test]
    fn oversized_lines_are_rejected_and_skipped() {
        // Limit 8: the 12-byte line must come back Oversized, and the
        // reader must resynchronize to the next line.
        let data = b"tiny\nAAAAAAAAAAAA\nafter\n";
        for chunk in [1, 3, 64] {
            assert_eq!(
                outcomes(data, chunk, 8),
                vec![
                    line("tiny"),
                    LineOutcome::Malformed(FrameError::Oversized { limit: 8 }),
                    line("after"),
                    LineOutcome::Eof
                ],
                "chunk={chunk}"
            );
        }
        // Oversized *unterminated* final line: reported, then EOF.
        assert_eq!(
            outcomes(b"ok\nAAAAAAAAAAAA", 4, 8),
            vec![
                line("ok"),
                LineOutcome::Malformed(FrameError::Oversized { limit: 8 }),
                LineOutcome::Eof
            ]
        );
        // Memory bound: a huge line is discarded, not buffered. (The
        // buffer never holds more than the bound + one chunk; asserting
        // behaviour, not internals: outcome is one error, then EOF.)
        let huge = vec![b'x'; 1 << 16];
        assert_eq!(
            outcomes(&huge, 8192, 64),
            vec![
                LineOutcome::Malformed(FrameError::Oversized { limit: 64 }),
                LineOutcome::Eof
            ]
        );
    }

    #[test]
    fn empty_lines_and_empty_stream() {
        assert_eq!(outcomes(b"", 4, 64), vec![LineOutcome::Eof]);
        assert_eq!(
            outcomes(b"\n\n", 4, 64),
            vec![line(""), line(""), LineOutcome::Eof]
        );
    }
}
