//! The typed job API and its JSON-line encoding.
//!
//! One request per line, one response per line; a request is an object:
//!
//! ```json
//! {"id":1,"kind":"solve","scenario":"bit_transmission","horizon":5,
//!  "fault":"loss","fault_seed":7,
//!  "budget":{"deadline_ms":1000,"max_guard_evaluations":100000}}
//! ```
//!
//! `id` and `kind` are mandatory; everything else has scenario defaults.
//! Three monitoring requests bypass the queue and are answered from the
//! service's counters: `{"op":"stats"}`, `{"kind":"health"}` and
//! `{"kind":"metrics"}` (each accepts either the `op` or the `kind`
//! spelling, and an optional `id` to echo).

use crate::json::Json;
use kbp_core::Budget;
use std::fmt;
use std::time::Duration;

/// What a job asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Run the inductive solver; return protocol + stats.
    Solve,
    /// Enumerate all bounded implementations.
    Enumerate,
    /// Solve, then verify the fixed point with the implementation
    /// checker.
    Check,
    /// Solve the scenario on every rung of its fault lattice.
    FaultLattice,
}

impl JobKind {
    /// The wire name of the kind.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            JobKind::Solve => "solve",
            JobKind::Enumerate => "enumerate",
            JobKind::Check => "check",
            JobKind::FaultLattice => "fault_lattice",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "solve" => Some(JobKind::Solve),
            "enumerate" => Some(JobKind::Enumerate),
            "check" => Some(JobKind::Check),
            "fault_lattice" => Some(JobKind::FaultLattice),
            _ => None,
        }
    }
}

/// One parsed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen id, echoed on the response.
    pub id: u64,
    /// What to do.
    pub kind: JobKind,
    /// Registry name of the scenario.
    pub scenario: String,
    /// Horizon override; the registry default when absent.
    pub horizon: Option<usize>,
    /// Fault-lattice rung name (`none`, `loss`, `crash-stop`,
    /// `loss+crash-stop`); fault-free when absent. Ignored by
    /// `fault_lattice` jobs, which always run the whole lattice.
    pub fault: Option<String>,
    /// Seed for the fault schedule (default 0).
    pub fault_seed: u64,
    /// Resource budget for the solve.
    pub budget: Budget,
    /// Enumeration: stop after this many implementations.
    pub max_solutions: Option<usize>,
    /// Enumeration: cap on explored branches.
    pub max_branches: Option<usize>,
    /// Optional client identity token. In `--listen` mode the pending
    /// quota and per-client metrics are scoped by this token, so one
    /// tenant's connections share an admission window; anonymous
    /// requests fall back to the connection's peer address. Never echoed
    /// on responses (job responses stay pure functions of the job).
    pub client: Option<String>,
}

/// A `{"op":"define",...}` request: register a `.kbp` scenario under a
/// wire name so later jobs can solve it by name. Answered inline (the
/// DSL compiler is fast and never solves anything), never queued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefineRequest {
    /// Client-chosen id, echoed on the response.
    pub id: u64,
    /// Wire name to register under; defaults to the name declared in
    /// the source's `scenario` header.
    pub name: Option<String>,
    /// The `.kbp` source text.
    pub source: String,
    /// Optional client identity token; definitions are owned and
    /// quota'd per client, falling back to the connection identity.
    pub client: Option<String>,
}

/// A request the service could not accept, reported on the response
/// line with `ok: false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line is not valid JSON.
    Parse(String),
    /// A required field is missing or has the wrong type.
    BadField {
        /// The offending field.
        field: &'static str,
        /// What was expected of it.
        expected: &'static str,
    },
    /// The `kind` is not one of the four job kinds.
    UnknownKind(String),
    /// The scenario name is not in the registry.
    UnknownScenario(String),
    /// The job kind does not apply to the scenario (e.g. `solve` on a
    /// future-referring program, or a lattice job on a scenario without
    /// a lossy environment).
    Unsupported(&'static str),
    /// The named fault rung does not exist for the scenario.
    UnknownFault(String),
    /// A `define` tried to take a name the registry owns, or one that
    /// another client already defined.
    NameReserved(String),
    /// A `define` would exceed the client's definition quota.
    DefinitionQuota {
        /// Definitions the client currently holds.
        held: usize,
        /// The configured per-client limit.
        limit: usize,
    },
}

impl RequestError {
    /// Short machine-readable discriminator for the wire.
    #[must_use]
    pub fn wire_kind(&self) -> &'static str {
        match self {
            RequestError::Parse(_) => "parse",
            RequestError::BadField { .. } => "bad_field",
            RequestError::UnknownKind(_) => "unknown_kind",
            RequestError::UnknownScenario(_) => "unknown_scenario",
            RequestError::Unsupported(_) => "unsupported",
            RequestError::UnknownFault(_) => "unknown_fault",
            RequestError::NameReserved(_) => "name_reserved",
            RequestError::DefinitionQuota { .. } => "definition_quota",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Parse(e) => write!(f, "invalid JSON: {e}"),
            RequestError::BadField { field, expected } => {
                write!(f, "field '{field}': expected {expected}")
            }
            RequestError::UnknownKind(k) => write!(
                f,
                "unknown kind '{k}' (expected solve|enumerate|check|fault_lattice)"
            ),
            RequestError::UnknownScenario(s) => write!(f, "unknown scenario '{s}'"),
            RequestError::Unsupported(why) => write!(f, "unsupported: {why}"),
            RequestError::UnknownFault(r) => write!(
                f,
                "unknown fault rung '{r}' (expected none|loss|crash-stop|loss+crash-stop)"
            ),
            RequestError::NameReserved(n) => {
                write!(f, "scenario name '{n}' is reserved by another owner")
            }
            RequestError::DefinitionQuota { held, limit } => write!(
                f,
                "definition quota exceeded: client holds {held} of {limit} definitions"
            ),
        }
    }
}

impl std::error::Error for RequestError {}

/// A parsed request line: a job, or one of the monitoring ops that are
/// answered inline without entering the queue.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A job to queue.
    Job(JobRequest),
    /// `{"op":"stats"}` — answer with service counters.
    Stats {
        /// Echoed id, if the client sent one.
        id: Option<u64>,
    },
    /// `{"kind":"health"}` — liveness probe; answered immediately.
    Health {
        /// Echoed id, if the client sent one.
        id: Option<u64>,
    },
    /// `{"kind":"metrics"}` — queue depth, worker utilization, cache
    /// hit/eviction counters; answered immediately.
    Metrics {
        /// Echoed id, if the client sent one.
        id: Option<u64>,
    },
    /// `{"op":"define",...}` — compile and register a DSL scenario;
    /// answered inline (compilation never solves anything).
    Define(DefineRequest),
}

/// Parses one request line.
///
/// # Errors
///
/// Any malformed line yields a [`RequestError`] describing the first
/// problem; the caller turns it into an `ok: false` response.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = crate::json::parse(line).map_err(|e| RequestError::Parse(e.to_string()))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(RequestError::BadField {
            field: "(root)",
            expected: "an object",
        });
    }
    if let Some(op) = value.get("op") {
        let op = op.as_str().ok_or(RequestError::BadField {
            field: "op",
            expected: "a string",
        })?;
        if let Some(req) = monitor_request(op, &value)? {
            return Ok(req);
        }
        if op == "define" {
            return parse_define(&value).map(Request::Define);
        }
        return Err(RequestError::UnknownKind(op.to_string()));
    }
    // Monitoring ops are also accepted under the `kind` spelling
    // (`{"kind":"health"}`), and — unlike jobs — need no id.
    if let Some(kind) = value.get("kind").and_then(Json::as_str) {
        if let Some(req) = monitor_request(kind, &value)? {
            return Ok(req);
        }
    }

    let id = value
        .get("id")
        .and_then(Json::as_u64)
        .ok_or(RequestError::BadField {
            field: "id",
            expected: "a non-negative integer",
        })?;
    let kind_str = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or(RequestError::BadField {
            field: "kind",
            expected: "a string",
        })?;
    let kind =
        JobKind::parse(kind_str).ok_or_else(|| RequestError::UnknownKind(kind_str.to_string()))?;
    let scenario = value
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or(RequestError::BadField {
            field: "scenario",
            expected: "a string",
        })?
        .to_string();

    let horizon = opt_usize(&value, "horizon")?;
    let fault = match value.get("fault") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => {
            return Err(RequestError::BadField {
                field: "fault",
                expected: "a string",
            })
        }
    };
    let fault_seed = match value.get("fault_seed") {
        None | Some(Json::Null) => 0,
        Some(v) => v.as_u64().ok_or(RequestError::BadField {
            field: "fault_seed",
            expected: "a non-negative integer",
        })?,
    };
    let budget = parse_budget(value.get("budget"))?;
    let max_solutions = opt_usize(&value, "max_solutions")?;
    let max_branches = opt_usize(&value, "max_branches")?;
    let client = match value.get("client") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => {
            return Err(RequestError::BadField {
                field: "client",
                expected: "a string",
            })
        }
    };

    Ok(Request::Job(JobRequest {
        id,
        kind,
        scenario,
        horizon,
        fault,
        fault_seed,
        budget,
        max_solutions,
        max_branches,
        client,
    }))
}

/// Parses the body of a `{"op":"define"}` request. Unlike the
/// monitoring ops, `id` is mandatory — a define mutates service state
/// and the client must be able to correlate the answer.
fn parse_define(value: &Json) -> Result<DefineRequest, RequestError> {
    let id = value
        .get("id")
        .and_then(Json::as_u64)
        .ok_or(RequestError::BadField {
            field: "id",
            expected: "a non-negative integer",
        })?;
    let source = value
        .get("source")
        .and_then(Json::as_str)
        .ok_or(RequestError::BadField {
            field: "source",
            expected: "a string of .kbp source",
        })?
        .to_string();
    let name = match value.get("name") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => {
            return Err(RequestError::BadField {
                field: "name",
                expected: "a string",
            })
        }
    };
    let client = match value.get("client") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => {
            return Err(RequestError::BadField {
                field: "client",
                expected: "a string",
            })
        }
    };
    Ok(DefineRequest {
        id,
        name,
        source,
        client,
    })
}

/// Recognizes the monitoring ops (`stats`, `health`, `metrics`) under
/// either the `op` or `kind` spelling; `Ok(None)` means "not one of
/// them" and the caller decides whether that is an error.
fn monitor_request(name: &str, value: &Json) -> Result<Option<Request>, RequestError> {
    let id = match value.get("id") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or(RequestError::BadField {
            field: "id",
            expected: "a non-negative integer",
        })?),
    };
    Ok(match name {
        "stats" => Some(Request::Stats { id }),
        "health" => Some(Request::Health { id }),
        "metrics" => Some(Request::Metrics { id }),
        _ => None,
    })
}

/// Best-effort extraction of the client id from a line that failed
/// [`parse_request`], so the error response can still echo it. Returns
/// `None` when the line is not JSON, not an object, or carries no
/// usable `id` — the response then says `"id":null`.
#[must_use]
pub fn id_hint(line: &str) -> Option<u64> {
    let value = crate::json::parse(line).ok()?;
    if !matches!(value, Json::Obj(_)) {
        return None;
    }
    value.get("id").and_then(Json::as_u64)
}

fn opt_usize(value: &Json, field: &'static str) -> Result<Option<usize>, RequestError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_usize().map(Some).ok_or(RequestError::BadField {
            field,
            expected: "a non-negative integer",
        }),
    }
}

fn parse_budget(value: Option<&Json>) -> Result<Budget, RequestError> {
    let mut budget = Budget::new();
    let Some(value) = value else {
        return Ok(budget);
    };
    if matches!(value, Json::Null) {
        return Ok(budget);
    }
    if !matches!(value, Json::Obj(_)) {
        return Err(RequestError::BadField {
            field: "budget",
            expected: "an object",
        });
    }
    if let Some(ms) = value.get("deadline_ms") {
        let ms = ms.as_u64().ok_or(RequestError::BadField {
            field: "budget.deadline_ms",
            expected: "a non-negative integer",
        })?;
        budget = budget.deadline(Duration::from_millis(ms));
    }
    if let Some(n) = opt_usize(value, "max_layer_points")? {
        budget = budget.max_layer_points(n);
    }
    if let Some(n) = opt_usize(value, "max_guard_evaluations")? {
        budget = budget.max_guard_evaluations(n);
    }
    if let Some(n) = opt_usize(value, "max_memory_bytes")? {
        budget = budget.max_memory_bytes(n);
    }
    Ok(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_job() {
        let req = parse_request(r#"{"id":3,"kind":"solve","scenario":"robot"}"#).unwrap();
        let Request::Job(job) = req else {
            panic!("expected a job")
        };
        assert_eq!(job.id, 3);
        assert_eq!(job.kind, JobKind::Solve);
        assert_eq!(job.scenario, "robot");
        assert_eq!(job.horizon, None);
        assert_eq!(job.fault, None);
        assert_eq!(job.fault_seed, 0);
        assert_eq!(job.client, None);
    }

    #[test]
    fn parses_and_validates_the_client_token() {
        let req =
            parse_request(r#"{"id":3,"kind":"solve","scenario":"robot","client":"tenant-a"}"#)
                .unwrap();
        let Request::Job(job) = req else {
            panic!("expected a job")
        };
        assert_eq!(job.client.as_deref(), Some("tenant-a"));
        // Null is "absent", non-strings are typed errors.
        let Request::Job(job) =
            parse_request(r#"{"id":3,"kind":"solve","scenario":"robot","client":null}"#).unwrap()
        else {
            panic!("expected a job")
        };
        assert_eq!(job.client, None);
        assert!(matches!(
            parse_request(r#"{"id":3,"kind":"solve","scenario":"robot","client":7}"#),
            Err(RequestError::BadField {
                field: "client",
                ..
            })
        ));
    }

    #[test]
    fn parses_a_full_job() {
        let req = parse_request(
            r#"{"id":9,"kind":"fault_lattice","scenario":"bit_transmission","horizon":4,
               "fault":"loss","fault_seed":77,
               "budget":{"deadline_ms":500,"max_layer_points":100,
                         "max_guard_evaluations":5000,"max_memory_bytes":1000000},
               "max_solutions":2,"max_branches":64}"#,
        )
        .unwrap();
        let Request::Job(job) = req else {
            panic!("expected a job")
        };
        assert_eq!(job.kind, JobKind::FaultLattice);
        assert_eq!(job.horizon, Some(4));
        assert_eq!(job.fault.as_deref(), Some("loss"));
        assert_eq!(job.fault_seed, 77);
        assert_eq!(job.max_solutions, Some(2));
        assert_eq!(job.max_branches, Some(64));
    }

    #[test]
    fn parses_the_stats_op() {
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats","id":5}"#).unwrap(),
            Request::Stats { id: Some(5) }
        );
    }

    #[test]
    fn parses_health_and_metrics_under_both_spellings() {
        for spelling in ["op", "kind"] {
            assert_eq!(
                parse_request(&format!(r#"{{"{spelling}":"health"}}"#)).unwrap(),
                Request::Health { id: None },
                "spelling={spelling}"
            );
            assert_eq!(
                parse_request(&format!(r#"{{"{spelling}":"metrics","id":7}}"#)).unwrap(),
                Request::Metrics { id: Some(7) },
                "spelling={spelling}"
            );
        }
        // Stats under `kind` as well, for symmetry.
        assert_eq!(
            parse_request(r#"{"kind":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        );
    }

    #[test]
    fn parses_the_define_op() {
        let req = parse_request(
            r#"{"op":"define","id":4,"name":"my_ring","client":"tenant-a",
               "source":"scenario my_ring { agents a }"}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Define(DefineRequest {
                id: 4,
                name: Some("my_ring".into()),
                source: "scenario my_ring { agents a }".into(),
                client: Some("tenant-a".into()),
            })
        );
        // Name and client are optional; id and source are not.
        let Request::Define(req) =
            parse_request(r#"{"op":"define","id":1,"source":"scenario x {}"}"#).unwrap()
        else {
            panic!("expected a define")
        };
        assert_eq!(req.name, None);
        assert_eq!(req.client, None);
        assert!(matches!(
            parse_request(r#"{"op":"define","source":"scenario x {}"}"#),
            Err(RequestError::BadField { field: "id", .. })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"define","id":1}"#),
            Err(RequestError::BadField {
                field: "source",
                ..
            })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"define","id":1,"source":7}"#),
            Err(RequestError::BadField {
                field: "source",
                ..
            })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"define","id":1,"source":"s","name":7}"#),
            Err(RequestError::BadField { field: "name", .. })
        ));
    }

    #[test]
    fn define_errors_have_stable_wire_kinds() {
        assert_eq!(
            RequestError::NameReserved("robot".into()).wire_kind(),
            "name_reserved"
        );
        assert_eq!(
            RequestError::DefinitionQuota { held: 8, limit: 8 }.wire_kind(),
            "definition_quota"
        );
        let msg = RequestError::DefinitionQuota { held: 8, limit: 8 }.to_string();
        assert!(msg.contains("8 of 8"), "{msg}");
    }

    #[test]
    fn id_hint_recovers_ids_from_bad_requests() {
        // Valid JSON, bad fields: id is recoverable.
        assert_eq!(id_hint(r#"{"id":42,"kind":"dance"}"#), Some(42));
        assert_eq!(id_hint(r#"{"id":42}"#), Some(42));
        // Not JSON / not an object / no usable id: no hint.
        assert_eq!(id_hint("not json"), None);
        assert_eq!(id_hint("[1,2]"), None);
        assert_eq!(id_hint(r#"{"id":"forty-two","kind":"solve"}"#), None);
        assert_eq!(id_hint(r#"{"kind":"solve"}"#), None);
    }

    #[test]
    fn rejects_malformed_requests_with_typed_errors() {
        assert!(matches!(
            parse_request("not json"),
            Err(RequestError::Parse(_))
        ));
        assert!(matches!(
            parse_request("[1,2]"),
            Err(RequestError::BadField {
                field: "(root)",
                ..
            })
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"solve","scenario":"robot"}"#),
            Err(RequestError::BadField { field: "id", .. })
        ));
        assert!(matches!(
            parse_request(r#"{"id":1,"kind":"dance","scenario":"robot"}"#),
            Err(RequestError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_request(r#"{"id":1,"kind":"solve","scenario":"robot","horizon":"big"}"#),
            Err(RequestError::BadField {
                field: "horizon",
                ..
            })
        ));
        assert!(matches!(
            parse_request(r#"{"id":1,"kind":"solve","scenario":"robot","budget":7}"#),
            Err(RequestError::BadField {
                field: "budget",
                ..
            })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"selfdestruct"}"#),
            Err(RequestError::UnknownKind(_))
        ));
    }
}
