//! A minimal, dependency-free JSON value with a parser and a compact
//! writer.
//!
//! The service's wire format must be *bit-identical* across worker
//! counts and cache configurations, so the writer is deliberately
//! boring: objects keep insertion order, strings escape the minimum
//! JSON requires, integers are written exactly (`I64`/`U64` are kept
//! apart so a `u64` fingerprint or seed round-trips without passing
//! through floating point), and nothing ever depends on a hash map's
//! iteration order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `I64` semantics (seeds,
    /// fingerprints, signatures).
    U64(u64),
    /// A floating-point number (only produced by the parser for inputs
    /// with a fraction or exponent; the service never writes one).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (order is part of the wire format).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` on missing key or non-object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as a `usize` if it is a non-negative integer that fits.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value compactly (no whitespace).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Convenience: build an object from `(key, value)` pairs.
#[must_use]
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::I64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::U64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Json::F64(x) => {
            if x.is_finite() {
                let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth the parser accepts (requests are flat; this
/// bounds stack use on adversarial input).
const MAX_DEPTH: usize = 64;

/// Parses one JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            message: "trailing characters",
            at: pos,
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError {
            message: "nesting too deep",
            at: *pos,
        });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            message: "unexpected end of input",
            at: *pos,
        }),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            message: "expected ',' or ']'",
                            at: *pos,
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        message: "expected ':'",
                        at: *pos,
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(JsonError {
                            message: "expected ',' or '}'",
                            at: *pos,
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            message: "invalid literal",
            at: *pos,
        })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            message: "expected string",
            at: *pos,
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    message: "unterminated string",
                    at: *pos,
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                message: "invalid \\u escape",
                                at: *pos,
                            })?;
                        // Surrogates collapse to the replacement character;
                        // requests are ASCII in practice.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            message: "invalid escape",
                            at: *pos,
                        })
                    }
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(JsonError {
                    message: "control character in string",
                    at: *pos,
                })
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is valid UTF-8: it came
                // from a &str).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                if let Ok(s) = std::str::from_utf8(&bytes[start..*pos]) {
                    out.push_str(s);
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        message: "invalid number",
        at: start,
    })?;
    if text.is_empty() || text == "-" {
        return Err(JsonError {
            message: "expected value",
            at: start,
        });
    }
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::U64(n));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
        message: "invalid number",
        at: start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_structures() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "18446744073709551615",
            "\"hi\\n\\\"there\\\"\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ];
        for case in cases {
            let v = parse(case).unwrap();
            assert_eq!(v.to_line(), case, "roundtrip of {case}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(v.to_line(), "{\"z\":1,\"a\":2}");
        assert_eq!(v.get("z"), Some(&Json::I64(1)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_integers_do_not_pass_through_floats() {
        let v = parse("12345678901234567890").unwrap();
        assert_eq!(v, Json::U64(12_345_678_901_234_567_890));
        assert_eq!(v.as_u64(), Some(12_345_678_901_234_567_890));
    }

    #[test]
    fn rejects_garbage_with_positions() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn parses_floats_but_never_writes_nan() {
        assert_eq!(parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::F64(f64::NAN).to_line(), "null");
    }
}
