//! The scenario registry: every paper scenario the service can solve,
//! with its default configuration, optional fault-lattice wiring, and a
//! stable context fingerprint for artifact-cache keying.

use kbp_core::Kbp;
use kbp_faults::{loss_lattice, FaultSchedule, FaultyContext};
use kbp_logic::Agent;
use kbp_scenarios::bit_transmission::{BitTransmission, Channel};
use kbp_scenarios::coordinated_attack::CoordinatedAttack;
use kbp_scenarios::fixed_point_zoo;
use kbp_scenarios::muddy_children::MuddyChildren;
use kbp_scenarios::robot::Robot;
use kbp_scenarios::sequence_transmission::{SequenceTransmission, Tagging};
use kbp_systems::{EnvActionId, FnContext, Recall};

/// How to build the standard four-point fault lattice for a scenario:
/// which environment action loses every message, and which agent the
/// crash rungs take down.
#[derive(Debug, Clone, Copy)]
pub struct LatticeSpec {
    /// The "lose everything" environment action.
    pub lose: EnvActionId,
    /// Index of the agent crashed by the crash-stop rungs
    /// (`Agent::new` is not `const`, so the registry stores the index).
    pub crash_agent: usize,
    /// First time step at which the crashed agent is down.
    pub crash_at: usize,
}

/// One scenario the service can serve.
pub struct ScenarioEntry {
    /// Wire name of the scenario.
    pub name: &'static str,
    /// Horizon used when a request does not specify one.
    pub default_horizon: usize,
    /// Recall discipline of the generated system.
    pub recall: Recall,
    /// Whether the program is past-determined (solvable by the inductive
    /// solver). Future-referring zoo programs support only `enumerate`.
    pub solvable: bool,
    /// Fault-lattice wiring, for scenarios with a lossy environment.
    pub lattice: Option<LatticeSpec>,
    build: fn() -> (FnContext, Kbp),
}

impl ScenarioEntry {
    /// Builds the fault-free context and program.
    #[must_use]
    pub fn build(&self) -> (FnContext, Kbp) {
        (self.build)()
    }

    /// Builds the context wrapped in a fault schedule, plus the program.
    #[must_use]
    pub fn build_faulty(&self, schedule: FaultSchedule) -> (FaultyContext<FnContext>, Kbp) {
        let (ctx, kbp) = self.build();
        (FaultyContext::new(ctx, schedule), kbp)
    }

    /// The named rung of this scenario's fault lattice, if both the
    /// lattice and the rung exist. Rung names are those of
    /// [`kbp_faults::loss_lattice`]: `none`, `loss`, `crash-stop`,
    /// `loss+crash-stop`.
    #[must_use]
    pub fn fault_schedule(&self, rung: &str, seed: u64) -> Option<FaultSchedule> {
        let spec = self.lattice?;
        loss_lattice(seed, spec.lose, Agent::new(spec.crash_agent), spec.crash_at)
            .into_iter()
            .find(|(name, _)| *name == rung)
            .map(|(_, schedule)| schedule)
    }

    /// The full fault lattice for this scenario, if it has one.
    #[must_use]
    pub fn fault_lattice(&self, seed: u64) -> Option<Vec<(&'static str, FaultSchedule)>> {
        let spec = self.lattice?;
        Some(loss_lattice(
            seed,
            spec.lose,
            Agent::new(spec.crash_agent),
            spec.crash_at,
        ))
    }

    /// Stable fingerprint of the `(context, program, recall)` triple this
    /// entry denotes under an optional fault rung. Jobs with equal
    /// fingerprints may share an artifact-cache session; the horizon and
    /// budget deliberately do not participate (a session serves any
    /// horizon of the same context).
    #[must_use]
    pub fn fingerprint(&self, fault: Option<(&str, u64)>) -> u64 {
        let mut h = Fnv::new();
        h.write(self.name.as_bytes());
        h.write(&[match self.recall {
            Recall::Perfect => 1,
            Recall::Observational => 2,
        }]);
        match fault {
            None => h.write(&[0]),
            Some((rung, seed)) => {
                h.write(rung.as_bytes());
                h.write(&seed.to_le_bytes());
            }
        }
        h.finish()
    }
}

impl std::fmt::Debug for ScenarioEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEntry")
            .field("name", &self.name)
            .field("default_horizon", &self.default_horizon)
            .field("recall", &self.recall)
            .field("solvable", &self.solvable)
            .finish_non_exhaustive()
    }
}

/// Stable fingerprint of a client-*defined* scenario: the registry
/// stream (`name`, recall byte, fault-free tag) extended with the DSL
/// source text. Including the source means a redefinition under the same
/// name but different behaviour gets a fresh fingerprint, so persisted
/// sessions of the old program can never be replayed against the new
/// one — they just become unproducible and are garbage-collected at the
/// next compaction.
#[must_use]
pub(crate) fn definition_fingerprint(name: &str, recall: Recall, source: &str) -> u64 {
    let mut h = Fnv::new();
    h.write(name.as_bytes());
    h.write(&[match recall {
        Recall::Perfect => 1,
        Recall::Observational => 2,
    }]);
    h.write(&[0]);
    h.write(source.as_bytes());
    h.finish()
}

/// FNV-1a, hand-rolled: `std`'s `DefaultHasher` is not guaranteed stable
/// across releases, and cache keys must never change meaning between a
/// server and its clients.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn muddy_children() -> (FnContext, Kbp) {
    let sc = MuddyChildren::new(3);
    (sc.context(), sc.kbp())
}

fn bit_transmission() -> (FnContext, Kbp) {
    let sc = BitTransmission::new(Channel::Lossy);
    (sc.context(), sc.kbp())
}

fn sequence_transmission() -> (FnContext, Kbp) {
    let sc = SequenceTransmission::new(2, Tagging::Alternating, Channel::Lossy);
    (sc.context(), sc.kbp())
}

fn robot() -> (FnContext, Kbp) {
    let sc = Robot::new(7, 3, 5);
    (sc.context(), sc.kbp())
}

fn coordinated_attack() -> (FnContext, Kbp) {
    let sc = CoordinatedAttack::new(Channel::Lossy);
    (sc.context(), sc.kbp())
}

fn zoo_plain() -> (FnContext, Kbp) {
    (
        fixed_point_zoo::lamp_context(),
        fixed_point_zoo::plain().kbp,
    )
}

fn zoo_self_fulfilling() -> (FnContext, Kbp) {
    (
        fixed_point_zoo::lamp_context(),
        fixed_point_zoo::self_fulfilling().kbp,
    )
}

fn zoo_self_defeating() -> (FnContext, Kbp) {
    (
        fixed_point_zoo::lamp_context(),
        fixed_point_zoo::self_defeating().kbp,
    )
}

/// The transmission scenarios' "lose everything in both directions"
/// environment action (also `capture_both` for the coordinated attack).
const LOSE_ALL: EnvActionId = EnvActionId(3);

static REGISTRY: &[ScenarioEntry] = &[
    ScenarioEntry {
        name: "muddy_children_3",
        default_horizon: 4,
        recall: Recall::Perfect,
        solvable: true,
        lattice: None,
        build: muddy_children,
    },
    ScenarioEntry {
        name: "bit_transmission",
        default_horizon: 5,
        recall: Recall::Perfect,
        solvable: true,
        lattice: Some(LatticeSpec {
            lose: LOSE_ALL,
            crash_agent: 0,
            crash_at: 1,
        }),
        build: bit_transmission,
    },
    ScenarioEntry {
        name: "bit_transmission_obs",
        default_horizon: 6,
        recall: Recall::Observational,
        solvable: true,
        lattice: Some(LatticeSpec {
            lose: LOSE_ALL,
            crash_agent: 0,
            crash_at: 1,
        }),
        build: bit_transmission,
    },
    ScenarioEntry {
        name: "sequence_transmission_2",
        default_horizon: 6,
        recall: Recall::Perfect,
        solvable: true,
        lattice: Some(LatticeSpec {
            lose: LOSE_ALL,
            crash_agent: 0,
            crash_at: 1,
        }),
        build: sequence_transmission,
    },
    ScenarioEntry {
        name: "robot",
        default_horizon: 5,
        recall: Recall::Perfect,
        solvable: true,
        lattice: None,
        build: robot,
    },
    ScenarioEntry {
        name: "coordinated_attack",
        default_horizon: 4,
        recall: Recall::Perfect,
        solvable: true,
        lattice: Some(LatticeSpec {
            lose: LOSE_ALL,
            crash_agent: 1,
            crash_at: 1,
        }),
        build: coordinated_attack,
    },
    ScenarioEntry {
        name: "zoo_plain",
        default_horizon: 3,
        recall: Recall::Perfect,
        solvable: true,
        lattice: None,
        build: zoo_plain,
    },
    ScenarioEntry {
        name: "zoo_self_fulfilling",
        default_horizon: 3,
        recall: Recall::Perfect,
        solvable: false,
        lattice: None,
        build: zoo_self_fulfilling,
    },
    ScenarioEntry {
        name: "zoo_self_defeating",
        default_horizon: 3,
        recall: Recall::Perfect,
        solvable: false,
        lattice: None,
        build: zoo_self_defeating,
    },
];

/// Every scenario the service knows, in registry order.
#[must_use]
pub fn registry() -> &'static [ScenarioEntry] {
    REGISTRY
}

/// Looks a scenario up by wire name.
#[must_use]
pub fn find(name: &str) -> Option<&'static ScenarioEntry> {
    REGISTRY.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds() {
        for entry in registry() {
            let (ctx, kbp) = entry.build();
            assert!(
                kbp.validate(&ctx).is_ok(),
                "{}: program invalid for its context",
                entry.name
            );
            assert_eq!(
                entry.solvable,
                !kbp.has_future_guards(),
                "{}: solvable flag disagrees with the program",
                entry.name
            );
        }
    }

    #[test]
    fn names_are_unique_and_findable() {
        for entry in registry() {
            assert!(std::ptr::eq(find(entry.name).unwrap(), entry));
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn fingerprints_separate_scenarios_and_faults() {
        let mut seen = std::collections::HashSet::new();
        for entry in registry() {
            assert!(seen.insert(entry.fingerprint(None)), "{}", entry.name);
            if entry.lattice.is_some() {
                for rung in ["none", "loss", "crash-stop", "loss+crash-stop"] {
                    assert!(
                        seen.insert(entry.fingerprint(Some((rung, 7)))),
                        "{}/{rung}",
                        entry.name
                    );
                }
                assert_ne!(
                    entry.fingerprint(Some(("loss", 7))),
                    entry.fingerprint(Some(("loss", 8))),
                    "{}: seed must separate fingerprints",
                    entry.name
                );
            }
        }
        // Stable across processes and runs: a pinned value.
        let bt = find("bit_transmission").unwrap();
        assert_eq!(bt.fingerprint(None), bt.fingerprint(None));
    }

    #[test]
    fn definition_fingerprints_cover_name_recall_and_source() {
        let a = definition_fingerprint("ring", Recall::Perfect, "scenario ring {}");
        assert_eq!(
            a,
            definition_fingerprint("ring", Recall::Perfect, "scenario ring {}"),
            "deterministic"
        );
        assert_ne!(
            a,
            definition_fingerprint("ring2", Recall::Perfect, "scenario ring {}")
        );
        assert_ne!(
            a,
            definition_fingerprint("ring", Recall::Observational, "scenario ring {}")
        );
        assert_ne!(
            a,
            definition_fingerprint("ring", Recall::Perfect, "scenario ring {} "),
            "source participates: a redefinition re-fingerprints"
        );
        // A definition shadowing a registry name (rejected at admission,
        // but belt-and-braces) still fingerprints differently because
        // the source extends the registry's fault-free stream.
        let bt = find("bit_transmission").unwrap();
        assert_ne!(
            bt.fingerprint(None),
            definition_fingerprint(
                "bit_transmission",
                bt.recall,
                "scenario bit_transmission {}"
            )
        );
    }

    #[test]
    fn lattice_rungs_resolve() {
        let bt = find("bit_transmission").unwrap();
        assert!(bt.fault_schedule("none", 1).is_some());
        assert!(bt.fault_schedule("loss+crash-stop", 1).is_some());
        assert!(bt.fault_schedule("meteor", 1).is_none());
        assert_eq!(bt.fault_lattice(1).unwrap().len(), 4);
        let mc = find("muddy_children_3").unwrap();
        assert!(mc.fault_lattice(1).is_none());
    }
}
