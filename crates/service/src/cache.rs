//! The cross-request artifact cache: one [`EngineSession`] per context
//! fingerprint, bounded by an LRU policy.
//!
//! A session owns the interned formula arena and the per-layer
//! satisfaction-set snapshots produced by earlier solves of the same
//! `(context, program, recall)` triple (see
//! [`kbp_core::EngineSession`]'s keying contract). The cache hands out
//! `Arc<Mutex<EngineSession>>`: a worker holds the lock for the duration
//! of one solve, so two jobs on the *same* context serialize (they would
//! redo each other's work anyway) while jobs on different contexts run
//! fully in parallel.
//!
//! Sessions hold real memory (an arena plus one snapshot per induced
//! layer), so the cache is bounded: at most `capacity` sessions are
//! retained, and inserting past the bound evicts the least-recently-used
//! fingerprint. Eviction only drops the cache's `Arc` — a worker
//! mid-solve on an evicted session keeps its clone alive until the solve
//! finishes. An evicted context simply re-misses later; responses are
//! bit-identical either way.

use kbp_core::EngineSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters published by the cache (monitoring only — never on the
/// job-response wire, where they would break bit-identity between warm
/// and cold runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an existing session.
    pub hits: usize,
    /// Lookups that created a fresh session.
    pub misses: usize,
    /// Distinct sessions currently held.
    pub sessions: usize,
    /// Sessions dropped to keep the cache within its capacity.
    pub evictions: usize,
    /// The configured session bound.
    pub capacity: usize,
}

/// One retained session plus its recency stamp.
#[derive(Debug)]
struct Slot {
    session: Arc<Mutex<EngineSession>>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    /// Logical clock: bumped on every hit or insert; the slot with the
    /// smallest stamp is the LRU victim.
    tick: u64,
}

/// The cache. Disabled (`new(false, _)`) it hands out nothing, and every
/// job solves cold — bit-identical responses either way.
#[derive(Debug)]
pub struct ArtifactCache {
    enabled: bool,
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl ArtifactCache {
    /// Creates the cache; `enabled: false` makes every lookup miss
    /// without retaining anything. `capacity` is the maximum number of
    /// retained sessions, clamped to at least 1.
    #[must_use]
    pub fn new(enabled: bool, capacity: usize) -> Self {
        ArtifactCache {
            enabled,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Whether the cache retains sessions.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured session bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The session for `fingerprint`, creating it on first sight (and
    /// evicting the least-recently-used session if that would exceed the
    /// capacity). Returns `None` when the cache is disabled (callers then
    /// solve without a session) or when the session map's lock was
    /// poisoned by a panicking worker — a cold solve is always a safe
    /// fallback.
    #[must_use]
    pub fn session(&self, fingerprint: u64) -> Option<Arc<Mutex<EngineSession>>> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().ok()?;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.slots.get_mut(&fingerprint) {
            slot.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&slot.session));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(EngineSession::new()));
        inner.slots.insert(
            fingerprint,
            Slot {
                session: Arc::clone(&session),
                last_used: tick,
            },
        );
        while inner.slots.len() > self.capacity {
            // O(sessions) scan — the map is small (bounded by capacity)
            // and lookups are rare next to the solves they amortize.
            let victim = inner
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(&fp, _)| fp);
            match victim {
                Some(fp) => {
                    inner.slots.remove(&fp);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        Some(session)
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sessions: self.inner.lock().map_or(0, |i| i.slots.len()),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }

    /// Drops every retained session (the counters are kept; nothing is
    /// counted as evicted — this is an operator action, not pressure).
    pub fn clear(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.slots.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_cache_hits_on_second_lookup() {
        let cache = ArtifactCache::new(true, 8);
        let a = cache.session(42).unwrap();
        let b = cache.session(42).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.session(7).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 2, 2));
        assert_eq!((stats.evictions, stats.capacity), (0, 8));
        cache.clear();
        assert_eq!(cache.stats().sessions, 0);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let cache = ArtifactCache::new(false, 8);
        assert!(cache.session(42).is_none());
        assert!(cache.session(42).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (0, 2, 0));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = ArtifactCache::new(true, 2);
        let a1 = cache.session(1).unwrap();
        let _ = cache.session(2).unwrap();
        // Touch 1 so 2 becomes the LRU victim when 3 arrives.
        let _ = cache.session(1).unwrap();
        let _ = cache.session(3).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.evictions, 1);
        // 1 survived (hit), 2 was evicted (fresh Arc on re-lookup),
        // 3 is resident.
        let a1_again = cache.session(1).unwrap();
        assert!(Arc::ptr_eq(&a1, &a1_again));
        let hits_before = cache.stats().hits;
        let _ = cache.session(2).unwrap();
        assert_eq!(cache.stats().hits, hits_before, "evicted entry re-misses");
        // The map never exceeds its bound, whatever the lookup pattern.
        for fp in 10..20 {
            let _ = cache.session(fp);
        }
        assert!(cache.stats().sessions <= 2);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = ArtifactCache::new(true, 0);
        assert_eq!(cache.capacity(), 1);
        let _ = cache.session(1);
        let _ = cache.session(2);
        let stats = cache.stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.evictions, 1);
    }
}
