//! The cross-request artifact cache: one [`EngineSession`] per context
//! fingerprint, bounded by an LRU policy.
//!
//! A session owns the interned formula arena and the per-layer
//! satisfaction-set snapshots produced by earlier solves of the same
//! `(context, program, recall)` triple (see
//! [`kbp_core::EngineSession`]'s keying contract). The cache hands out
//! `Arc<Mutex<EngineSession>>`: a worker holds the lock for the duration
//! of one solve, so two jobs on the *same* context serialize (they would
//! redo each other's work anyway) while jobs on different contexts run
//! fully in parallel.
//!
//! Sessions hold real memory (an arena plus one snapshot per induced
//! layer), so the cache is bounded: at most `capacity` sessions are
//! retained, and inserting past the bound evicts the least-recently-used
//! fingerprint. Eviction only drops the cache's `Arc` — a worker
//! mid-solve on an evicted session keeps its clone alive until the solve
//! finishes. An evicted context simply re-misses later; responses are
//! bit-identical either way.

use crate::persist::{SessionKey, SessionStore};
use kbp_core::EngineSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters published by the cache (monitoring only — never on the
/// job-response wire, where they would break bit-identity between warm
/// and cold runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an existing session.
    pub hits: usize,
    /// Lookups that created a fresh session.
    pub misses: usize,
    /// Distinct sessions currently held.
    pub sessions: usize,
    /// Sessions dropped to keep the cache within its capacity.
    pub evictions: usize,
    /// The configured session bound.
    pub capacity: usize,
    /// Sessions rehydrated from the on-disk store at startup.
    pub preloaded: usize,
    /// Session files written (eviction-time and shutdown flushes).
    pub persisted: usize,
    /// Persistence operations that failed (unwritable directory,
    /// corrupt file, busy session). Best-effort by design: failures
    /// degrade to cold solves, never to errors on the wire.
    pub persist_failures: usize,
    /// Stale session files garbage-collected from the store (files
    /// whose provenance the registry no longer produces).
    pub compacted: usize,
    /// Files the compactor wanted to remove but could not (I/O error).
    pub compact_failures: usize,
}

/// One retained session plus its provenance and recency stamp.
#[derive(Debug)]
struct Slot {
    session: Arc<Mutex<EngineSession>>,
    key: SessionKey,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    /// Logical clock: bumped on every hit or insert; the slot with the
    /// smallest stamp is the LRU victim.
    tick: u64,
}

/// The cache. Disabled (`new(false, _)`) it hands out nothing, and every
/// job solves cold — bit-identical responses either way.
#[derive(Debug)]
pub struct ArtifactCache {
    enabled: bool,
    capacity: usize,
    inner: Mutex<Inner>,
    store: Option<SessionStore>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    preloaded: AtomicUsize,
    persisted: AtomicUsize,
    persist_failures: AtomicUsize,
    compacted: AtomicUsize,
    compact_failures: AtomicUsize,
}

impl ArtifactCache {
    /// Creates the cache; `enabled: false` makes every lookup miss
    /// without retaining anything. `capacity` is the maximum number of
    /// retained sessions, clamped to at least 1.
    #[must_use]
    pub fn new(enabled: bool, capacity: usize) -> Self {
        ArtifactCache::with_store(enabled, capacity, None)
    }

    /// Like [`new`](Self::new), with an optional on-disk session store
    /// for warm restarts. When a store is given (and the cache is
    /// enabled), up to `capacity` persisted sessions are rehydrated
    /// immediately, in ascending fingerprint order — a deterministic
    /// preload, so two daemons started on the same directory hold the
    /// same residents. Files that fail to load (corrupt, truncated,
    /// version-mismatched) are skipped and counted; the context solves
    /// cold, exactly as if never persisted.
    #[must_use]
    pub fn with_store(enabled: bool, capacity: usize, store: Option<SessionStore>) -> Self {
        let cache = ArtifactCache {
            enabled,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            store,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            preloaded: AtomicUsize::new(0),
            persisted: AtomicUsize::new(0),
            persist_failures: AtomicUsize::new(0),
            compacted: AtomicUsize::new(0),
            compact_failures: AtomicUsize::new(0),
        };
        cache.preload();
        cache
    }

    fn preload(&self) {
        let Some(store) = (self.enabled).then_some(self.store.as_ref()).flatten() else {
            return;
        };
        let fingerprints = match store.list() {
            Ok(fps) => fps,
            Err(_) => {
                self.persist_failures.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let Ok(mut inner) = self.inner.lock() else {
            return;
        };
        for fp in fingerprints.into_iter().take(self.capacity) {
            match store.load(fp) {
                Ok(Some((key, session))) => {
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner.slots.insert(
                        fp,
                        Slot {
                            session: Arc::new(Mutex::new(session)),
                            key,
                            last_used: tick,
                        },
                    );
                    self.preloaded.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => {}
                Err(_) => {
                    self.persist_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Writes every resident session to the store (no-op without one).
    /// Called at shutdown, after the workers have been joined, so a
    /// blocking lock per session is safe — nothing else can hold one.
    /// Failures are counted, never raised: losing a warm artifact only
    /// costs the next daemon a cold solve.
    pub fn persist_all(&self) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let residents: Vec<(u64, SessionKey, Arc<Mutex<EngineSession>>)> = match self.inner.lock() {
            Ok(inner) => inner
                .slots
                .iter()
                .map(|(&fp, slot)| (fp, slot.key.clone(), Arc::clone(&slot.session)))
                .collect(),
            Err(_) => return,
        };
        for (fp, key, session) in residents {
            match session.lock() {
                Ok(session) => match store.save(fp, &key, &session) {
                    Ok(()) => {
                        self.persisted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.persist_failures.fetch_add(1, Ordering::Relaxed);
                    }
                },
                Err(_) => {
                    self.persist_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Garbage-collects store files whose provenance `live` disowns
    /// (no-op without a store). The liveness predicate receives each
    /// file's recorded [`SessionKey`] and fingerprint; files it rejects
    /// — and files too corrupt to yield a key at all — are removed.
    /// Counted in [`CacheStats::compacted`] / `compact_failures`, never
    /// raised: compaction is hygiene, not correctness.
    ///
    /// Deliberately *not* called from [`persist_all`](Self::persist_all):
    /// the liveness check belongs to the caller (the service wires in the
    /// scenario registry), and a cache pointed at a shared directory must
    /// not silently collect another tenant's files.
    pub fn compact_store(&self, live: impl Fn(&SessionKey, u64) -> bool) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let outcome = store.compact(live);
        self.compacted.fetch_add(outcome.removed, Ordering::Relaxed);
        self.compact_failures
            .fetch_add(outcome.failures, Ordering::Relaxed);
    }

    /// Whether the cache retains sessions.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured session bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The session for `fingerprint`, creating it on first sight (and
    /// evicting the least-recently-used session if that would exceed the
    /// capacity). `key` records the provenance persisted alongside the
    /// session so a later compaction can re-derive the fingerprint.
    /// Returns `None` when the cache is disabled (callers then
    /// solve without a session) or when the session map's lock was
    /// poisoned by a panicking worker — a cold solve is always a safe
    /// fallback.
    #[must_use]
    pub fn session(&self, fingerprint: u64, key: &SessionKey) -> Option<Arc<Mutex<EngineSession>>> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().ok()?;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.slots.get_mut(&fingerprint) {
            slot.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&slot.session));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(EngineSession::new()));
        inner.slots.insert(
            fingerprint,
            Slot {
                session: Arc::clone(&session),
                key: key.clone(),
                last_used: tick,
            },
        );
        let mut victims: Vec<(u64, SessionKey, Arc<Mutex<EngineSession>>)> = Vec::new();
        while inner.slots.len() > self.capacity {
            // O(sessions) scan — the map is small (bounded by capacity)
            // and lookups are rare next to the solves they amortize.
            let victim = inner
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(&fp, _)| fp);
            match victim {
                Some(fp) => {
                    if let Some(slot) = inner.slots.remove(&fp) {
                        victims.push((fp, slot.key, slot.session));
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        drop(inner);
        // Persist evicted sessions outside the map lock (file I/O must
        // not stall other lookups) and only via `try_lock`: a victim
        // mid-solve stays busy until its worker finishes, and blocking
        // here would stall admission behind that solve. A skipped victim
        // is still covered by the shutdown `persist_all`.
        if let Some(store) = self.store.as_ref() {
            for (fp, key, victim) in victims {
                match victim.try_lock() {
                    Ok(victim) => match store.save(fp, &key, &victim) {
                        Ok(()) => {
                            self.persisted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            self.persist_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    Err(_) => {
                        self.persist_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Some(session)
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sessions: self.inner.lock().map_or(0, |i| i.slots.len()),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity,
            preloaded: self.preloaded.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
            compacted: self.compacted.load(Ordering::Relaxed),
            compact_failures: self.compact_failures.load(Ordering::Relaxed),
        }
    }

    /// Drops every retained session (the counters are kept; nothing is
    /// counted as evicted — this is an operator action, not pressure).
    pub fn clear(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.slots.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> SessionKey {
        SessionKey::plain("cache_test")
    }

    #[test]
    fn enabled_cache_hits_on_second_lookup() {
        let cache = ArtifactCache::new(true, 8);
        let a = cache.session(42, &k()).unwrap();
        let b = cache.session(42, &k()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.session(7, &k()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 2, 2));
        assert_eq!((stats.evictions, stats.capacity), (0, 8));
        cache.clear();
        assert_eq!(cache.stats().sessions, 0);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let cache = ArtifactCache::new(false, 8);
        assert!(cache.session(42, &k()).is_none());
        assert!(cache.session(42, &k()).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (0, 2, 0));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = ArtifactCache::new(true, 2);
        let a1 = cache.session(1, &k()).unwrap();
        let _ = cache.session(2, &k()).unwrap();
        // Touch 1 so 2 becomes the LRU victim when 3 arrives.
        let _ = cache.session(1, &k()).unwrap();
        let _ = cache.session(3, &k()).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.evictions, 1);
        // 1 survived (hit), 2 was evicted (fresh Arc on re-lookup),
        // 3 is resident.
        let a1_again = cache.session(1, &k()).unwrap();
        assert!(Arc::ptr_eq(&a1, &a1_again));
        let hits_before = cache.stats().hits;
        let _ = cache.session(2, &k()).unwrap();
        assert_eq!(cache.stats().hits, hits_before, "evicted entry re-misses");
        // The map never exceeds its bound, whatever the lookup pattern.
        for fp in 10..20 {
            let _ = cache.session(fp, &k());
        }
        assert!(cache.stats().sessions <= 2);
    }

    #[test]
    fn store_roundtrip_preloads_persisted_sessions() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-cache-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).unwrap();

        // First life: populate two sessions, then flush at "shutdown".
        let cache = ArtifactCache::with_store(true, 8, Some(store.clone()));
        let _ = cache.session(11, &k()).unwrap();
        let _ = cache.session(22, &k()).unwrap();
        cache.persist_all();
        let stats = cache.stats();
        assert_eq!(stats.persisted, 2);
        assert_eq!(stats.persist_failures, 0);
        assert_eq!(store.list().unwrap(), vec![11, 22]);

        // Second life: the persisted sessions are resident immediately.
        let warm = ArtifactCache::with_store(true, 8, Some(store.clone()));
        let stats = warm.stats();
        assert_eq!(stats.preloaded, 2);
        assert_eq!(stats.sessions, 2);
        let _ = warm.session(11, &k()).unwrap();
        assert_eq!(warm.stats().hits, 1, "preloaded session hits, not misses");

        // A corrupt file is skipped and counted, never fatal.
        std::fs::write(dir.join(format!("{:016x}.kbps", 33u64)), b"garbage").unwrap();
        let partial = ArtifactCache::with_store(true, 8, Some(store.clone()));
        let stats = partial.stats();
        assert_eq!(stats.preloaded, 2);
        assert_eq!(stats.persist_failures, 1);

        // A disabled cache ignores the store entirely.
        let disabled = ArtifactCache::with_store(false, 8, Some(store));
        assert_eq!(disabled.stats().preloaded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_persists_the_victim() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-cache-evict-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).unwrap();
        let cache = ArtifactCache::with_store(true, 1, Some(store.clone()));
        let _ = cache.session(1, &k()).unwrap();
        let _ = cache.session(2, &k()).unwrap(); // evicts 1 → persisted
        assert_eq!(store.list().unwrap(), vec![1]);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.persisted, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = ArtifactCache::new(true, 0);
        assert_eq!(cache.capacity(), 1);
        let _ = cache.session(1, &k());
        let _ = cache.session(2, &k());
        let stats = cache.stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn compaction_collects_disowned_files_and_counts_them() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-cache-compact-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).unwrap();
        let cache = ArtifactCache::with_store(true, 8, Some(store.clone()));
        let _ = cache.session(1, &SessionKey::plain("alive")).unwrap();
        let _ = cache.session(2, &SessionKey::plain("stale")).unwrap();
        cache.persist_all();
        std::fs::write(dir.join(format!("{:016x}.kbps", 3u64)), b"junk").unwrap();
        assert_eq!(store.list().unwrap(), vec![1, 2, 3]);

        cache.compact_store(|key, _| key.scenario == "alive");
        assert_eq!(store.list().unwrap(), vec![1]);
        let stats = cache.stats();
        assert_eq!(stats.compacted, 2, "stale provenance and junk both go");
        assert_eq!(stats.compact_failures, 0);

        // A cache without a store compacts nothing (and never panics).
        let bare = ArtifactCache::new(true, 8);
        bare.compact_store(|_, _| false);
        assert_eq!(bare.stats().compacted, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
