//! The cross-request artifact cache: one [`EngineSession`] per context
//! fingerprint.
//!
//! A session owns the interned formula arena and the per-layer
//! satisfaction-set snapshots produced by earlier solves of the same
//! `(context, program, recall)` triple (see
//! [`kbp_core::EngineSession`]'s keying contract). The cache hands out
//! `Arc<Mutex<EngineSession>>`: a worker holds the lock for the duration
//! of one solve, so two jobs on the *same* context serialize (they would
//! redo each other's work anyway) while jobs on different contexts run
//! fully in parallel.

use kbp_core::EngineSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters published by the cache (monitoring only — never on the
/// job-response wire, where they would break bit-identity between warm
/// and cold runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an existing session.
    pub hits: usize,
    /// Lookups that created a fresh session.
    pub misses: usize,
    /// Distinct sessions currently held.
    pub sessions: usize,
}

/// The cache. Disabled (`new(false)`) it hands out nothing, and every
/// job solves cold — bit-identical responses either way.
#[derive(Debug)]
pub struct ArtifactCache {
    enabled: bool,
    sessions: Mutex<HashMap<u64, Arc<Mutex<EngineSession>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ArtifactCache {
    /// Creates the cache; `enabled: false` makes every lookup miss
    /// without retaining anything.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        ArtifactCache {
            enabled,
            sessions: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Whether the cache retains sessions.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The session for `fingerprint`, creating it on first sight.
    /// Returns `None` when the cache is disabled (callers then solve
    /// without a session) or when the session map's lock was poisoned by
    /// a panicking worker — a cold solve is always a safe fallback.
    #[must_use]
    pub fn session(&self, fingerprint: u64) -> Option<Arc<Mutex<EngineSession>>> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut sessions = self.sessions.lock().ok()?;
        if let Some(session) = sessions.get(&fingerprint) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(session));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(EngineSession::new()));
        sessions.insert(fingerprint, Arc::clone(&session));
        Some(session)
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sessions: self.sessions.lock().map_or(0, |s| s.len()),
        }
    }

    /// Drops every retained session (the counters are kept).
    pub fn clear(&self) {
        if let Ok(mut sessions) = self.sessions.lock() {
            sessions.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_cache_hits_on_second_lookup() {
        let cache = ArtifactCache::new(true);
        let a = cache.session(42).unwrap();
        let b = cache.session(42).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.session(7).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 2, 2));
        cache.clear();
        assert_eq!(cache.stats().sessions, 0);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let cache = ArtifactCache::new(false);
        assert!(cache.session(42).is_none());
        assert!(cache.session(42).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (0, 2, 0));
    }
}
