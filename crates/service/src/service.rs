//! The service proper: configuration, the deterministic worker pool, and
//! the job executors.
//!
//! # Determinism argument
//!
//! A response line is a pure function of its request. Three things make
//! this true regardless of worker count and cache state:
//!
//! 1. every executor runs one job on one thread against a context built
//!    fresh from the registry (the only shared mutable state is the
//!    artifact cache, whose sessions only ever *restore* values that are
//!    pure functions of `(layer, formula)` — see
//!    [`kbp_core::EngineSession`]);
//! 2. the wire stats are the solver's clause-lookup counters, which are
//!    independent of evaluation sharding and cache warmth —
//!    cache-housekeeping counters (`layers_carried`, `layers_restored`,
//!    `arenas`) are deliberately *not* serialized;
//! 3. responses are emitted in submission order (the batch runners sort
//!    by submission index; `kbpd` uses a reorder buffer), so the output
//!    stream does not depend on scheduling.

use crate::cache::{ArtifactCache, CacheStats};
use crate::framing::DEFAULT_MAX_LINE;
use crate::job::{DefineRequest, JobKind, JobRequest, RequestError};
use crate::json::{obj, Json};
use crate::persist::{DefinitionRecord, PersistError, SessionKey, SessionStore};
use crate::queue::{JobQueue, QueueFull};
use crate::registry::{definition_fingerprint, find, ScenarioEntry};
use kbp_core::{
    check_implementation, Enumerator, Kbp, LayerStats, PartialSolution, Resource, SolveError,
    SolveOutcome, SolveStats, SyncSolver,
};
use kbp_faults::FaultyContext;
use kbp_kripke::{
    env_quotient_min_worlds, env_shard_min_worlds, env_threads, ThreadConfigError, THREADS_ENV,
};
use kbp_lang::{Compiled, Diagnostic, LineMap, Severity};
use kbp_systems::{Context, FnContext, MapProtocol, Recall};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable sizing the worker pool.
pub const WORKERS_ENV: &str = "KBP_SERVICE_WORKERS";

/// Environment variable sizing the job queue (admission window).
pub const QUEUE_ENV: &str = "KBP_SERVICE_QUEUE";

/// Environment variable toggling the artifact cache (`0`/`off`/`false`
/// to disable).
pub const CACHE_ENV: &str = "KBP_SERVICE_CACHE";

/// Environment variable bounding the artifact cache (maximum retained
/// sessions; least-recently-used contexts are evicted past the bound).
pub const CACHE_SESSIONS_ENV: &str = "KBP_SERVICE_CACHE_SESSIONS";

/// Default artifact-cache bound (retained sessions).
pub const DEFAULT_CACHE_SESSIONS: usize = 64;

/// Environment variable naming the cache-persistence directory. When
/// set, evicted and shutdown sessions are serialized there and reloaded
/// at startup, so a restarted daemon answers warm. Unset (the default)
/// means no persistence.
pub const CACHE_DIR_ENV: &str = "KBP_SERVICE_CACHE_DIR";

/// Environment variable bounding unanswered requests per connection
/// (the per-client admission quota in `--listen` mode).
pub const CLIENT_PENDING_ENV: &str = "KBP_SERVICE_CLIENT_PENDING";

/// Default per-client pending-request quota.
pub const DEFAULT_CLIENT_PENDING: usize = 16;

/// Environment variable bounding concurrent connections in `--listen`
/// mode.
pub const MAX_CONNECTIONS_ENV: &str = "KBP_SERVICE_MAX_CONNECTIONS";

/// Default concurrent-connection bound.
pub const DEFAULT_MAX_CONNECTIONS: usize = 32;

/// Environment variable bounding request-line length, in bytes.
pub const MAX_LINE_ENV: &str = "KBP_SERVICE_MAX_LINE";

/// Environment variable setting the idle-connection timeout in
/// milliseconds (`--listen` mode). A connection with no pending work
/// that stays silent this long is closed with a typed `idle_timeout`
/// notice; a connection silent *mid-line* is closed as a `read_deadline`
/// violation. `0` disables the timeout.
pub const IDLE_TIMEOUT_ENV: &str = "KBP_SERVICE_IDLE_TIMEOUT_MS";

/// Default idle-connection timeout (5 minutes).
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 300_000;

/// Environment variable bounding buffered response bytes per connection
/// (`--listen` mode). A client that stops reading has its responses
/// buffered up to this bound and is then disconnected (typed
/// `write_budget` in metrics) instead of pinning memory. `0` disables
/// the bound.
pub const WRITE_BUDGET_ENV: &str = "KBP_SERVICE_WRITE_BUDGET_BYTES";

/// Default slow-client write budget (4 MiB of buffered responses).
pub const DEFAULT_WRITE_BUDGET_BYTES: usize = 4 * 1024 * 1024;

/// Environment variable bounding how many DSL scenarios one client
/// identity may hold registered at once (the `define` op). `0` disables
/// the quota.
pub const CLIENT_DEFINITIONS_ENV: &str = "KBP_SERVICE_CLIENT_DEFINITIONS";

/// Default per-client scenario-definition quota.
pub const DEFAULT_CLIENT_DEFINITIONS: usize = 8;

/// Environment variable bounding how long a connection's outbound
/// buffer may sit unflushed, in milliseconds (`--listen` mode). A
/// client making *no* read progress for this long is disconnected
/// (typed `write_stall`). `0` disables the check.
pub const WRITE_STALL_ENV: &str = "KBP_SERVICE_WRITE_STALL_MS";

/// Default write-stall bound (30 seconds without read progress).
pub const DEFAULT_WRITE_STALL_MS: u64 = 30_000;

/// A malformed service configuration. Unlike a lenient default, this is
/// surfaced before any job runs: a typo in `KBP_SERVICE_WORKERS` should
/// fail startup, not silently serve with one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A numeric variable did not parse (bad number, zero, or absurd).
    Threads(ThreadConfigError),
    /// A boolean flag was neither truthy (`1`/`on`/`true`) nor falsy
    /// (`0`/`off`/`false`).
    Flag {
        /// The environment variable.
        var: &'static str,
        /// Its rejected value.
        value: String,
    },
    /// A size variable (byte or count bounds without the thread cap)
    /// did not hold a positive integer.
    Size {
        /// The environment variable.
        var: &'static str,
        /// Its rejected value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Threads(e) => write!(f, "{e}"),
            ConfigError::Flag { var, value } => {
                write!(f, "{var}: expected 0/off/false or 1/on/true, got '{value}'")
            }
            ConfigError::Size { var, value } => {
                write!(f, "{var}: expected a positive integer, got '{value}'")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Threads(e) => Some(e),
            ConfigError::Flag { .. } | ConfigError::Size { .. } => None,
        }
    }
}

impl From<ThreadConfigError> for ConfigError {
    fn from(e: ThreadConfigError) -> Self {
        ConfigError::Threads(e)
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queue capacity; admissions beyond it are rejected with
    /// [`QueueFull`].
    pub queue_capacity: usize,
    /// Whether the artifact cache retains sessions across jobs.
    pub cache_enabled: bool,
    /// Maximum sessions the artifact cache retains (LRU eviction past
    /// the bound; min 1).
    pub cache_sessions: usize,
    /// Retry-after hint attached to [`QueueFull`] rejections, in ms.
    pub retry_after_ms: u64,
    /// Directory for cache persistence; `None` (the default) disables
    /// it. When set, sessions are saved on eviction/shutdown and
    /// preloaded at startup.
    pub cache_dir: Option<PathBuf>,
    /// Per-connection quota on unanswered requests (`--listen` mode);
    /// admissions beyond it are rejected with a typed `quota_exceeded`
    /// response.
    pub client_pending: usize,
    /// Concurrent-connection bound (`--listen` mode).
    pub max_connections: usize,
    /// Request-line byte bound; longer lines answer a typed `oversized`
    /// error without being buffered.
    pub max_line: usize,
    /// Idle-connection timeout in ms (`--listen` mode); `0` disables.
    pub idle_timeout_ms: u64,
    /// Buffered-response byte bound per connection (`--listen` mode);
    /// `0` disables.
    pub write_budget_bytes: usize,
    /// Write-stall bound in ms — how long a connection's outbound
    /// buffer may make no progress (`--listen` mode); `0` disables.
    pub write_stall_ms: u64,
    /// How many DSL scenarios one client identity may hold registered
    /// at once via the `define` op; `0` disables the quota. Redefining
    /// a name the client already owns never charges the quota.
    pub client_definitions: usize,
}

impl ServiceConfig {
    /// Defaults: workers = available parallelism, queue of 64, cache on.
    #[must_use]
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ServiceConfig {
            workers,
            queue_capacity: 64,
            cache_enabled: true,
            cache_sessions: DEFAULT_CACHE_SESSIONS,
            retry_after_ms: 50,
            cache_dir: None,
            client_pending: DEFAULT_CLIENT_PENDING,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            max_line: DEFAULT_MAX_LINE,
            idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
            write_budget_bytes: DEFAULT_WRITE_BUDGET_BYTES,
            write_stall_ms: DEFAULT_WRITE_STALL_MS,
            client_definitions: DEFAULT_CLIENT_DEFINITIONS,
        }
    }

    /// Reads every `KBP_SERVICE_*` variable on top of the defaults, and
    /// *validates* the evaluation-engine variables (`KBP_EVAL_THREADS`,
    /// `KBP_SHARD_MIN_WORLDS`, `KBP_QUOTIENT_MIN_WORLDS`) that the engine
    /// itself tolerates: all configuration errors fail startup here,
    /// through one typed path.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on any malformed value — unset or empty variables
    /// keep their defaults, but a present, unusable value is a startup
    /// error, never a silent fallback.
    pub fn from_env() -> Result<Self, ConfigError> {
        let mut config = ServiceConfig::new();
        if let Some(workers) = env_threads(WORKERS_ENV)? {
            config.workers = workers;
        }
        if let Some(capacity) = env_threads(QUEUE_ENV)? {
            config.queue_capacity = capacity;
        }
        // Zero is rejected (like the other counts): to run cache-less,
        // set KBP_SERVICE_CACHE=off rather than a zero-session cache.
        if let Some(sessions) = env_threads(CACHE_SESSIONS_ENV)? {
            config.cache_sessions = sessions;
        }
        if let Ok(raw) = std::env::var(CACHE_ENV) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                config.cache_enabled = match trimmed.to_ascii_lowercase().as_str() {
                    "1" | "on" | "true" => true,
                    "0" | "off" | "false" => false,
                    _ => {
                        return Err(ConfigError::Flag {
                            var: CACHE_ENV,
                            value: raw,
                        })
                    }
                };
            }
        }
        if let Ok(raw) = std::env::var(CACHE_DIR_ENV) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                config.cache_dir = Some(PathBuf::from(trimmed));
            }
        }
        if let Some(pending) = env_size(CLIENT_PENDING_ENV)? {
            config.client_pending = pending;
        }
        if let Some(connections) = env_size(MAX_CONNECTIONS_ENV)? {
            config.max_connections = connections;
        }
        if let Some(max_line) = env_size(MAX_LINE_ENV)? {
            config.max_line = max_line;
        }
        // The protection bounds allow 0 ("disabled") — a timeout of
        // zero would otherwise mean "disconnect everyone immediately",
        // which nobody wants, so 0 is repurposed as the off switch.
        if let Some(ms) = env_bound(IDLE_TIMEOUT_ENV)? {
            config.idle_timeout_ms = ms;
        }
        if let Some(bytes) = env_bound(WRITE_BUDGET_ENV)? {
            config.write_budget_bytes = usize::try_from(bytes).unwrap_or(usize::MAX);
        }
        if let Some(ms) = env_bound(WRITE_STALL_ENV)? {
            config.write_stall_ms = ms;
        }
        // Like the protection bounds, 0 means "no quota".
        if let Some(defs) = env_bound(CLIENT_DEFINITIONS_ENV)? {
            config.client_definitions = usize::try_from(defs).unwrap_or(usize::MAX);
        }
        // The engine reads these lazily per solve and falls back to
        // defaults on garbage; a daemon should instead refuse to start,
        // so the malformed value is caught before the first request.
        env_threads(THREADS_ENV)?;
        env_shard_min_worlds()?;
        env_quotient_min_worlds()?;
        Ok(config)
    }

    /// Sets the worker count (min 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the queue capacity (min 1).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables or disables the artifact cache.
    #[must_use]
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Sets the artifact-cache session bound (min 1).
    #[must_use]
    pub fn cache_sessions(mut self, sessions: usize) -> Self {
        self.cache_sessions = sessions.max(1);
        self
    }

    /// Sets (or clears) the cache-persistence directory.
    #[must_use]
    pub fn cache_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cache_dir = dir;
        self
    }

    /// Sets the per-connection pending-request quota (min 1).
    #[must_use]
    pub fn client_pending(mut self, pending: usize) -> Self {
        self.client_pending = pending.max(1);
        self
    }

    /// Sets the concurrent-connection bound (min 1).
    #[must_use]
    pub fn max_connections(mut self, connections: usize) -> Self {
        self.max_connections = connections.max(1);
        self
    }

    /// Sets the request-line byte bound (min 1).
    #[must_use]
    pub fn max_line(mut self, bytes: usize) -> Self {
        self.max_line = bytes.max(1);
        self
    }

    /// Sets the idle-connection timeout in ms (`0` disables).
    #[must_use]
    pub fn idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }

    /// Sets the buffered-response byte bound (`0` disables).
    #[must_use]
    pub fn write_budget_bytes(mut self, bytes: usize) -> Self {
        self.write_budget_bytes = bytes;
        self
    }

    /// Sets the write-stall bound in ms (`0` disables).
    #[must_use]
    pub fn write_stall_ms(mut self, ms: u64) -> Self {
        self.write_stall_ms = ms;
        self
    }

    /// Sets the per-client scenario-definition quota (`0` disables).
    #[must_use]
    pub fn client_definitions(mut self, definitions: usize) -> Self {
        self.client_definitions = definitions;
        self
    }
}

/// Reads a positive-integer bound (no thread-count cap — line limits
/// are legitimately megabytes). `Ok(None)` when unset or empty.
fn env_size(var: &'static str) -> Result<Option<usize>, ConfigError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) if raw.trim().is_empty() => Ok(None),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(ConfigError::Size { var, value: raw }),
        },
    }
}

/// Reads a protection bound where `0` is meaningful ("disabled").
/// `Ok(None)` when unset or empty; garbage is still a startup error.
fn env_bound(var: &'static str) -> Result<Option<u64>, ConfigError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) if raw.trim().is_empty() => Ok(None),
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(ConfigError::Size { var, value: raw }),
        },
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new()
    }
}

/// Aggregated per-layer evaluation counters across every solve the
/// service has run: how often the engine sharded guard evaluation, and
/// how much the bisimulation quotient shrank the layers it ran on.
/// Monitoring only — aggregates of [`LayerStats`], never echoed on job
/// responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Layers evaluated (every solve contributes its per-layer rows).
    pub layers: usize,
    /// Layers whose guard evaluation ran sharded (`shards > 1`).
    pub sharded_layers: usize,
    /// Total shards across sharded layers (1 per sequential layer is
    /// *not* counted — this sums only where sharding happened).
    pub shards: usize,
    /// Layers where the epistemic quotient ran (`quotient_worlds > 0`).
    pub quotiented_layers: usize,
    /// Quotient classes summed over quotiented layers.
    pub quotient_worlds: usize,
    /// Points summed over quotiented layers (denominator of
    /// [`quotient_ratio_permille`](Self::quotient_ratio_permille)).
    pub quotiented_points: usize,
    /// Layers generated directly on bisimulation representatives by the
    /// fused step+quotient path (`gen_quotient_worlds > 0`).
    pub gen_quotiented_layers: usize,
    /// Resident representative worlds summed over generation-quotiented
    /// layers.
    pub gen_quotient_worlds: usize,
    /// Explicit-equivalent points summed over generation-quotiented
    /// layers (denominator of
    /// [`gen_quotient_ratio_permille`](Self::gen_quotient_ratio_permille)).
    pub gen_quotiented_points: usize,
}

impl EvalStats {
    /// Aggregate quotient compression in per-mille, `0..=1000`: how many
    /// representative worlds survived per thousand points on the layers
    /// where the quotient ran. `None` when it never ran.
    #[must_use]
    pub fn quotient_ratio_permille(&self) -> Option<u64> {
        if self.quotiented_points == 0 {
            None
        } else {
            Some((self.quotient_worlds as u64).saturating_mul(1000) / self.quotiented_points as u64)
        }
    }

    /// Aggregate generation-side compression in per-mille, `0..=1000`:
    /// how many representative worlds were resident per thousand
    /// explicit-equivalent points on the layers the fused step+quotient
    /// path generated. `None` when it never ran.
    #[must_use]
    pub fn gen_quotient_ratio_permille(&self) -> Option<u64> {
        if self.gen_quotiented_points == 0 {
            None
        } else {
            Some(
                (self.gen_quotient_worlds as u64).saturating_mul(1000)
                    / self.gen_quotiented_points as u64,
            )
        }
    }
}

/// A snapshot of the service's counters (monitoring only; see the
/// module-level determinism argument for why none of this appears in job
/// responses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs executed to completion (ok or error response).
    pub jobs_executed: usize,
    /// Jobs rejected at admission with [`QueueFull`].
    pub queue_rejections: usize,
    /// Jobs rejected by a per-client quota (`--listen` mode).
    pub quota_rejections: usize,
    /// Artifact-cache lookup counters.
    pub cache: CacheStats,
    /// Layers induced across all solves (denominator of the warm rate).
    pub layers_total: usize,
    /// Layers rehydrated from cache snapshots instead of evaluated.
    pub layers_restored: usize,
    /// Aggregated sharding/quotient counters across all solves.
    pub eval: EvalStats,
    /// Client-defined DSL scenarios currently registered.
    pub definitions_active: usize,
    /// Definitions restored from the persistence directory at startup.
    pub definitions_restored: usize,
}

impl ServiceStats {
    /// Fraction of layers served warm, in `[0, 1]`.
    #[must_use]
    pub fn warm_layer_rate(&self) -> f64 {
        if self.layers_total == 0 {
            0.0
        } else {
            self.layers_restored as f64 / self.layers_total as f64
        }
    }
}

/// A snapshot of the connection plane's counters, folded into the
/// `metrics` response by `--listen` mode (monitoring only — racy by
/// nature, never compared bit-for-bit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlaneSnapshot {
    /// Connections with work in flight (pending jobs, buffered
    /// responses, or a partially read request line).
    pub connections_active: usize,
    /// Connections currently open with nothing in flight.
    pub connections_idle: usize,
    /// Connections closed for staying silent past the idle timeout.
    pub disconnects_idle_timeout: usize,
    /// Connections closed for stalling *mid-request-line* past the
    /// timeout (half-open peers that will never finish their frame).
    pub disconnects_read_deadline: usize,
    /// Connections closed for exceeding the buffered-response bound.
    pub disconnects_write_budget: usize,
    /// Connections closed for making no read progress past the
    /// write-stall bound.
    pub disconnects_write_stall: usize,
    /// Responses computed for connections that were already force-closed
    /// (counted, never delivered — the drain proof's escape hatch).
    pub responses_dropped: usize,
    /// Pending (admitted, unanswered) job counts per client identity,
    /// sorted by client for stable output.
    pub clients: Vec<(String, usize)>,
}

/// Why the plane force-closed a connection. Every variant is counted in
/// [`PlaneSnapshot`] and, where the socket still accepts writes, also
/// announced with a typed [`disconnect_response`] line before the close
/// — a protection decision is never a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectKind {
    /// No activity and no pending work for longer than the idle timeout.
    IdleTimeout,
    /// A request line left unfinished for longer than the idle timeout
    /// (half-open connection).
    ReadDeadline,
    /// Buffered responses exceeded the write budget.
    WriteBudget,
    /// The outbound buffer made no progress for longer than the stall
    /// bound.
    WriteStall,
}

impl DisconnectKind {
    /// The wire name used in the closing notice and in metrics.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            DisconnectKind::IdleTimeout => "idle_timeout",
            DisconnectKind::ReadDeadline => "read_deadline",
            DisconnectKind::WriteBudget => "write_budget",
            DisconnectKind::WriteStall => "write_stall",
        }
    }
}

/// The one-line `ok: false` notice written (best-effort) before the
/// plane closes a connection for a protection violation.
#[must_use]
pub fn disconnect_response(kind: DisconnectKind, message: &str) -> Json {
    obj(vec![
        ("id", Json::Null),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(kind.wire_name().into())),
                ("message", Json::Str(message.into())),
            ]),
        ),
    ])
}

/// The batch-solving service.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    cache: ArtifactCache,
    /// Client-defined DSL scenarios by wire name. `Arc` so a resolved
    /// definition survives a concurrent redefinition for the duration of
    /// its job (the response stays a pure function of the request and
    /// the definition it resolved against).
    definitions: Mutex<HashMap<String, Arc<Definition>>>,
    /// The persistence directory, shared with the artifact cache; also
    /// holds one `.kbpdef` file per definition so defined scenarios
    /// survive a warm restart.
    def_store: Option<SessionStore>,
    definitions_restored: AtomicUsize,
    jobs_executed: AtomicUsize,
    queue_rejections: AtomicUsize,
    quota_rejections: AtomicUsize,
    workers_busy: AtomicUsize,
    layers_total: AtomicUsize,
    layers_restored: AtomicUsize,
    eval_layers: AtomicUsize,
    eval_sharded_layers: AtomicUsize,
    eval_shards: AtomicUsize,
    eval_quotiented_layers: AtomicUsize,
    eval_quotient_worlds: AtomicUsize,
    eval_quotiented_points: AtomicUsize,
    eval_gen_quotiented_layers: AtomicUsize,
    eval_gen_quotient_worlds: AtomicUsize,
    eval_gen_quotiented_points: AtomicUsize,
}

/// A registered DSL scenario: the compiled program plus its admission
/// metadata.
#[derive(Debug)]
struct Definition {
    name: String,
    owner: String,
    source: String,
    fingerprint: u64,
    compiled: Compiled,
}

/// What a job's scenario name resolved to: a registry entry or a
/// client-defined DSL scenario. The executors are generic over this so
/// `solve`/`check`/`enumerate` behave identically for both.
enum Resolved {
    Registry(&'static ScenarioEntry),
    Defined(Arc<Definition>),
}

impl Resolved {
    fn default_horizon(&self) -> usize {
        match self {
            Resolved::Registry(e) => e.default_horizon,
            Resolved::Defined(d) => {
                usize::try_from(d.compiled.default_horizon()).unwrap_or(usize::MAX)
            }
        }
    }

    fn recall(&self) -> Recall {
        match self {
            Resolved::Registry(e) => e.recall,
            Resolved::Defined(d) => d.compiled.recall(),
        }
    }

    fn solvable(&self) -> bool {
        match self {
            Resolved::Registry(e) => e.solvable,
            Resolved::Defined(d) => d.compiled.solvable(),
        }
    }
}

/// Decrements `workers_busy` when the executor returns on any path.
struct BusyGuard<'a>(&'a AtomicUsize);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

enum BuiltContext {
    Plain(Box<FnContext>),
    Faulty(Box<FaultyContext<FnContext>>),
}

impl BuiltContext {
    fn as_dyn(&self) -> &dyn Context {
        match self {
            BuiltContext::Plain(c) => c.as_ref(),
            BuiltContext::Faulty(c) => c.as_ref(),
        }
    }
}

impl Service {
    /// Creates a service with the given configuration. When
    /// `config.cache_dir` is set but unusable, persistence is silently
    /// skipped — daemons that must fail loudly use [`Service::try_new`].
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let store = config
            .cache_dir
            .as_deref()
            .and_then(|dir| SessionStore::open(dir).ok());
        Service::build(config, store)
    }

    /// Creates a service, surfacing a broken persistence directory as a
    /// startup error instead of running without warm restarts.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when `config.cache_dir` is set and cannot be
    /// opened (created) as a session store.
    pub fn try_new(config: ServiceConfig) -> Result<Self, PersistError> {
        let store = match config.cache_dir.as_deref() {
            Some(dir) => Some(SessionStore::open(dir)?),
            None => None,
        };
        Ok(Service::build(config, store))
    }

    fn build(config: ServiceConfig, store: Option<SessionStore>) -> Self {
        let def_store = store.clone();
        let cache = ArtifactCache::with_store(config.cache_enabled, config.cache_sessions, store);
        let (definitions, restored) = restore_definitions(def_store.as_ref());
        Service {
            config,
            cache,
            definitions: Mutex::new(definitions),
            def_store,
            definitions_restored: AtomicUsize::new(restored),
            jobs_executed: AtomicUsize::new(0),
            queue_rejections: AtomicUsize::new(0),
            quota_rejections: AtomicUsize::new(0),
            workers_busy: AtomicUsize::new(0),
            layers_total: AtomicUsize::new(0),
            layers_restored: AtomicUsize::new(0),
            eval_layers: AtomicUsize::new(0),
            eval_sharded_layers: AtomicUsize::new(0),
            eval_shards: AtomicUsize::new(0),
            eval_quotiented_layers: AtomicUsize::new(0),
            eval_quotient_worlds: AtomicUsize::new(0),
            eval_quotiented_points: AtomicUsize::new(0),
            eval_gen_quotiented_layers: AtomicUsize::new(0),
            eval_gen_quotient_worlds: AtomicUsize::new(0),
            eval_gen_quotiented_points: AtomicUsize::new(0),
        }
    }

    /// Persists every resident cache session to the configured store
    /// (no-op without one), then garbage-collects store files whose
    /// provenance neither the scenario registry nor the live definition
    /// table produces — renamed scenarios, retired fault rungs,
    /// redefined DSL programs, unreadable headers. Called on graceful
    /// shutdown so a restarted daemon starts warm without the store
    /// accumulating dead files forever; failures are counted, never
    /// fatal.
    pub fn persist(&self) {
        self.cache.persist_all();
        // Snapshot the definition table once: the compaction predicate
        // runs per file and must not take the lock under iteration.
        let defined: HashMap<String, u64> = self
            .definitions
            .lock()
            .map(|defs| {
                defs.values()
                    .map(|d| (d.name.clone(), d.fingerprint))
                    .collect()
            })
            .unwrap_or_default();
        self.cache.compact_store(move |key, fp| {
            registry_owns(key, fp)
                || (key.fault_ref().is_none() && defined.get(&key.scenario) == Some(&fp))
        });
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            quota_rejections: self.quota_rejections.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            layers_total: self.layers_total.load(Ordering::Relaxed),
            layers_restored: self.layers_restored.load(Ordering::Relaxed),
            eval: EvalStats {
                layers: self.eval_layers.load(Ordering::Relaxed),
                sharded_layers: self.eval_sharded_layers.load(Ordering::Relaxed),
                shards: self.eval_shards.load(Ordering::Relaxed),
                quotiented_layers: self.eval_quotiented_layers.load(Ordering::Relaxed),
                quotient_worlds: self.eval_quotient_worlds.load(Ordering::Relaxed),
                quotiented_points: self.eval_quotiented_points.load(Ordering::Relaxed),
                gen_quotiented_layers: self.eval_gen_quotiented_layers.load(Ordering::Relaxed),
                gen_quotient_worlds: self.eval_gen_quotient_worlds.load(Ordering::Relaxed),
                gen_quotiented_points: self.eval_gen_quotiented_points.load(Ordering::Relaxed),
            },
            definitions_active: self.definitions.lock().map_or(0, |defs| defs.len()),
            definitions_restored: self.definitions_restored.load(Ordering::Relaxed),
        }
    }

    /// Records an admission rejection (callers produce the response via
    /// [`reject_response`]).
    pub fn note_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a per-client quota rejection (callers produce the
    /// response via [`quota_response`]).
    pub fn note_quota_rejection(&self) {
        self.quota_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Handles a `{"op":"define"}` request: compile the DSL source,
    /// validate the name against the registry and other clients'
    /// definitions, enforce the per-client quota, register, and persist.
    /// Answered inline — compilation is cheap and never solves anything.
    ///
    /// `fallback_client` is the connection identity used when the
    /// request carries no `client` token (mirrors job quota scoping).
    #[must_use]
    pub fn define_response(&self, req: &DefineRequest, fallback_client: &str) -> Json {
        let owner = req
            .client
            .clone()
            .unwrap_or_else(|| fallback_client.to_string());
        let (compiled, diagnostics) = kbp_lang::check(&req.source);
        let Some(compiled) = compiled else {
            return invalid_program_response(req.id, &req.source, &diagnostics);
        };
        let name = req
            .name
            .clone()
            .unwrap_or_else(|| compiled.name().to_string());
        if find(&name).is_some() {
            return error_response(Some(req.id), &RequestError::NameReserved(name));
        }
        let fingerprint = definition_fingerprint(&name, compiled.recall(), &req.source);
        let definition = Arc::new(Definition {
            name: name.clone(),
            owner: owner.clone(),
            source: req.source.clone(),
            fingerprint,
            compiled,
        });
        let (redefined, replaced_fingerprint) = {
            let Ok(mut defs) = self.definitions.lock() else {
                // A panicked holder poisoned the table; refuse the
                // mutation rather than guess at its state.
                return error_response(
                    Some(req.id),
                    &RequestError::Unsupported("definition table unavailable"),
                );
            };
            match defs.get(&name) {
                Some(existing) if existing.owner != owner => {
                    return error_response(Some(req.id), &RequestError::NameReserved(name));
                }
                Some(existing) => {
                    // Same-owner redefinition: no quota charge; the old
                    // fingerprint's artifacts become garbage.
                    let old = existing.fingerprint;
                    let replaced = (old != fingerprint).then_some(old);
                    defs.insert(name.clone(), Arc::clone(&definition));
                    (true, replaced)
                }
                None => {
                    let limit = self.config.client_definitions;
                    if limit > 0 {
                        let held = defs.values().filter(|d| d.owner == owner).count();
                        if held >= limit {
                            return error_response(
                                Some(req.id),
                                &RequestError::DefinitionQuota { held, limit },
                            );
                        }
                    }
                    defs.insert(name.clone(), Arc::clone(&definition));
                    (false, None)
                }
            }
        };
        // Best-effort persistence, after the table mutation: a failed
        // write costs warm restarts, never the registration.
        if let Some(store) = self.def_store.as_ref() {
            if let Some(old) = replaced_fingerprint {
                let _ = store.remove_definition(old);
            }
            let record = DefinitionRecord {
                name: definition.name.clone(),
                owner: definition.owner.clone(),
                source: definition.source.clone(),
            };
            let _ = store.save_definition(fingerprint, &record);
        }
        let mut fields = vec![
            ("id".to_string(), Json::U64(req.id)),
            ("ok".to_string(), Json::Bool(true)),
            ("kind".to_string(), Json::Str("define".into())),
            ("scenario".to_string(), Json::Str(name)),
            ("fingerprint".to_string(), Json::U64(fingerprint)),
            (
                "solvable".to_string(),
                Json::Bool(definition.compiled.solvable()),
            ),
            (
                "default_horizon".to_string(),
                Json::U64(definition.compiled.default_horizon()),
            ),
            (
                "agents".to_string(),
                Json::U64(definition.compiled.agent_count() as u64),
            ),
            ("redefined".to_string(), Json::Bool(redefined)),
        ];
        fields.push((
            "diagnostics".to_string(),
            diagnostics_json(&req.source, &diagnostics),
        ));
        Json::Obj(fields)
    }

    /// Executes one job synchronously, returning its response object.
    /// Never panics and never returns a non-response: every failure mode
    /// is an `ok: false` object carrying the job id.
    #[must_use]
    pub fn execute(&self, job: &JobRequest) -> Json {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        self.workers_busy.fetch_add(1, Ordering::Relaxed);
        let _busy = BusyGuard(&self.workers_busy);
        // Registry names shadow definitions (admission rejects a define
        // on a registry name, so the two tables never actually collide).
        let resolved = match find(&job.scenario) {
            Some(entry) => Resolved::Registry(entry),
            None => {
                let defined = self
                    .definitions
                    .lock()
                    .ok()
                    .and_then(|defs| defs.get(&job.scenario).cloned());
                match defined {
                    Some(def) => Resolved::Defined(def),
                    None => {
                        return error_response(
                            Some(job.id),
                            &RequestError::UnknownScenario(job.scenario.clone()),
                        )
                    }
                }
            }
        };
        let horizon = job.horizon.unwrap_or_else(|| resolved.default_horizon());
        match job.kind {
            JobKind::Solve => self.run_solve(job, &resolved, horizon),
            JobKind::Check => self.run_check(job, &resolved, horizon),
            JobKind::Enumerate => self.run_enumerate(job, &resolved, horizon),
            JobKind::FaultLattice => self.run_fault_lattice(job, &resolved, horizon),
        }
    }

    /// Runs a batch through the worker pool with *blocking* admission:
    /// every job is eventually executed, and responses come back in
    /// submission order. Worker count and cache state cannot change the
    /// output (see the module-level determinism argument).
    #[must_use]
    pub fn run_batch(&self, jobs: &[JobRequest]) -> Vec<Json> {
        self.run_pool(jobs.iter().cloned().map(Ok).collect())
    }

    /// Runs a batch with *strict* admission: the whole batch is offered
    /// to the queue before any worker starts, so exactly the first
    /// `queue_capacity` jobs are admitted and the rest are rejected with
    /// [`QueueFull`] — deterministically, independent of scheduling.
    /// This is the mode the backpressure tests pin down; `kbpd` instead
    /// admits continuously and sheds only under a genuinely full queue.
    #[must_use]
    pub fn run_batch_strict(&self, jobs: &[JobRequest]) -> Vec<Json> {
        let queue: JobQueue<JobRequest> =
            JobQueue::new(self.config.queue_capacity, self.config.retry_after_ms);
        let mut slots: Vec<Result<JobRequest, (u64, QueueFull)>> = Vec::with_capacity(jobs.len());
        for job in jobs {
            match queue.try_submit(job.clone()) {
                Ok(()) => slots.push(Ok(job.clone())),
                Err((job, full)) => {
                    self.note_rejection();
                    slots.push(Err((job.id, full)));
                }
            }
        }
        // Admission is settled; the gate queue itself is discarded — the
        // pool below drains the admitted slots.
        queue.close();
        self.run_pool(slots)
    }

    /// The shared pool driver: executes the `Ok` slots on
    /// `config.workers` scoped threads, renders the `Err` slots as
    /// rejections, and returns responses in slot order.
    fn run_pool(&self, slots: Vec<Result<JobRequest, (u64, QueueFull)>>) -> Vec<Json> {
        let queue: JobQueue<(usize, JobRequest)> =
            JobQueue::new(slots.len().max(1), self.config.retry_after_ms);
        let results: Vec<std::sync::Mutex<Option<Json>>> =
            slots.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| {
                    while let Some((index, job)) = queue.pop() {
                        let response = self.execute(&job);
                        if let Some(slot) = results.get(index) {
                            if let Ok(mut slot) = slot.lock() {
                                *slot = Some(response);
                            }
                        }
                    }
                });
            }
            for (index, slot) in slots.iter().enumerate() {
                match slot {
                    Ok(job) => {
                        // Capacity equals batch length: this never blocks.
                        queue.submit((index, job.clone()));
                    }
                    Err((id, full)) => {
                        if let Ok(mut out) = results[index].lock() {
                            *out = Some(reject_response(Some(*id), *full));
                        }
                    }
                }
            }
            queue.close();
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().ok().flatten().unwrap_or(Json::Null))
            .collect()
    }

    fn resolve_context(
        &self,
        job: &JobRequest,
        resolved: &Resolved,
    ) -> Result<(BuiltContext, Kbp, u64, SessionKey), RequestError> {
        match resolved {
            Resolved::Registry(entry) => match job.fault.as_deref() {
                None => {
                    let (ctx, kbp) = entry.build();
                    Ok((
                        BuiltContext::Plain(Box::new(ctx)),
                        kbp,
                        entry.fingerprint(None),
                        SessionKey::plain(entry.name),
                    ))
                }
                Some(rung) => {
                    if entry.lattice.is_none() {
                        return Err(RequestError::Unsupported(
                            "scenario has no fault lattice; omit 'fault'",
                        ));
                    }
                    let schedule = entry
                        .fault_schedule(rung, job.fault_seed)
                        .ok_or_else(|| RequestError::UnknownFault(rung.to_string()))?;
                    let (ctx, kbp) = entry.build_faulty(schedule);
                    Ok((
                        BuiltContext::Faulty(Box::new(ctx)),
                        kbp,
                        entry.fingerprint(Some((rung, job.fault_seed))),
                        SessionKey::faulty(entry.name, rung, job.fault_seed),
                    ))
                }
            },
            Resolved::Defined(def) => {
                if job.fault.is_some() {
                    return Err(RequestError::Unsupported(
                        "scenario has no fault lattice; omit 'fault'",
                    ));
                }
                let (ctx, kbp) = def.compiled.instantiate();
                Ok((
                    BuiltContext::Plain(Box::new(ctx)),
                    kbp,
                    def.fingerprint,
                    SessionKey::plain(&def.name),
                ))
            }
        }
    }

    /// Solves through the artifact cache when a session exists for the
    /// fingerprint; cold otherwise. Also feeds the warm-rate counters
    /// and the aggregated per-layer sharding/quotient counters.
    #[allow(clippy::too_many_arguments)]
    fn solve_outcome(
        &self,
        job: &JobRequest,
        resolved: &Resolved,
        horizon: usize,
        ctx: &dyn Context,
        kbp: &Kbp,
        fingerprint: u64,
        key: &SessionKey,
    ) -> Result<SolveOutcome, SolveError> {
        let solver = SyncSolver::new(ctx, kbp)
            .horizon(horizon)
            .recall(resolved.recall())
            .budget(job.budget);
        let outcome = match self.cache.session(fingerprint, key) {
            Some(session) => match session.lock() {
                Ok(mut session) => solver.solve_budgeted_with(&mut session),
                // A worker panicked mid-solve and poisoned this session:
                // fall back to a cold solve (identical answer, colder).
                Err(_) => solver.solve_budgeted(),
            },
            None => solver.solve_budgeted(),
        }?;
        let (stats, per_layer) = match &outcome {
            SolveOutcome::Complete(s) => (s.stats(), s.per_layer()),
            SolveOutcome::Partial(p) => (p.stats(), p.per_layer()),
        };
        self.layers_total.fetch_add(stats.layers, Ordering::Relaxed);
        self.layers_restored
            .fetch_add(stats.layers_restored, Ordering::Relaxed);
        self.note_layer_stats(per_layer);
        Ok(outcome)
    }

    /// Folds one solve's per-layer rows into the aggregate counters the
    /// `metrics` response surfaces.
    fn note_layer_stats(&self, per_layer: &[LayerStats]) {
        let mut sharded_layers = 0;
        let mut shards = 0;
        let mut quotiented_layers = 0;
        let mut quotient_worlds = 0;
        let mut quotiented_points = 0;
        let mut gen_quotiented_layers = 0;
        let mut gen_quotient_worlds = 0;
        let mut gen_quotiented_points = 0;
        for layer in per_layer {
            if layer.shards > 1 {
                sharded_layers += 1;
                shards += layer.shards;
            }
            if layer.quotient_worlds > 0 {
                quotiented_layers += 1;
                quotient_worlds += layer.quotient_worlds;
                quotiented_points += layer.points;
            }
            if layer.gen_quotient_worlds > 0 {
                gen_quotiented_layers += 1;
                gen_quotient_worlds += layer.gen_quotient_worlds;
                gen_quotiented_points += layer.points;
            }
        }
        self.eval_layers
            .fetch_add(per_layer.len(), Ordering::Relaxed);
        self.eval_sharded_layers
            .fetch_add(sharded_layers, Ordering::Relaxed);
        self.eval_shards.fetch_add(shards, Ordering::Relaxed);
        self.eval_quotiented_layers
            .fetch_add(quotiented_layers, Ordering::Relaxed);
        self.eval_quotient_worlds
            .fetch_add(quotient_worlds, Ordering::Relaxed);
        self.eval_quotiented_points
            .fetch_add(quotiented_points, Ordering::Relaxed);
        self.eval_gen_quotiented_layers
            .fetch_add(gen_quotiented_layers, Ordering::Relaxed);
        self.eval_gen_quotient_worlds
            .fetch_add(gen_quotient_worlds, Ordering::Relaxed);
        self.eval_gen_quotiented_points
            .fetch_add(gen_quotiented_points, Ordering::Relaxed);
    }

    fn run_solve(&self, job: &JobRequest, resolved: &Resolved, horizon: usize) -> Json {
        if !resolved.solvable() {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported(
                    "scenario has future-referring guards; use kind 'enumerate'",
                ),
            );
        }
        let (ctx, kbp, fingerprint, key) = match self.resolve_context(job, resolved) {
            Ok(parts) => parts,
            Err(e) => return error_response(Some(job.id), &e),
        };
        match self.solve_outcome(
            job,
            resolved,
            horizon,
            ctx.as_dyn(),
            &kbp,
            fingerprint,
            &key,
        ) {
            Ok(outcome) => {
                let mut fields = response_head(job, "solve", horizon);
                push_outcome_fields(&mut fields, &outcome);
                Json::Obj(fields)
            }
            Err(e) => solve_error_response(job.id, &e),
        }
    }

    fn run_check(&self, job: &JobRequest, resolved: &Resolved, horizon: usize) -> Json {
        if !resolved.solvable() {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported(
                    "scenario has future-referring guards; use kind 'enumerate'",
                ),
            );
        }
        let (ctx, kbp, fingerprint, key) = match self.resolve_context(job, resolved) {
            Ok(parts) => parts,
            Err(e) => return error_response(Some(job.id), &e),
        };
        let outcome = match self.solve_outcome(
            job,
            resolved,
            horizon,
            ctx.as_dyn(),
            &kbp,
            fingerprint,
            &key,
        ) {
            Ok(outcome) => outcome,
            Err(e) => return solve_error_response(job.id, &e),
        };
        let mut fields = response_head(job, "check", horizon);
        match outcome {
            SolveOutcome::Partial(p) => {
                // Nothing to verify yet: report the partial solve.
                fields.push(("outcome".into(), Json::Str("partial".into())));
                fields.push(("exhausted".into(), exhausted_json(&p)));
                Json::Obj(fields)
            }
            SolveOutcome::Complete(s) => {
                match check_implementation(
                    ctx.as_dyn(),
                    &kbp,
                    s.protocol(),
                    resolved.recall(),
                    horizon,
                ) {
                    Ok(report) => {
                        fields.push(("outcome".into(), Json::Str("complete".into())));
                        fields.push((
                            "is_implementation".into(),
                            Json::Bool(report.is_implementation()),
                        ));
                        fields.push((
                            "points_checked".into(),
                            Json::U64(report.points_checked() as u64),
                        ));
                        fields.push((
                            "mismatches".into(),
                            Json::U64(report.mismatches().len() as u64),
                        ));
                        Json::Obj(fields)
                    }
                    Err(e) => solve_error_response(job.id, &e),
                }
            }
        }
    }

    fn run_enumerate(&self, job: &JobRequest, resolved: &Resolved, horizon: usize) -> Json {
        let (ctx, kbp, _fingerprint, _key) = match self.resolve_context(job, resolved) {
            Ok(parts) => parts,
            Err(e) => return error_response(Some(job.id), &e),
        };
        let mut enumerator = Enumerator::new(ctx.as_dyn(), &kbp)
            .horizon(horizon)
            .recall(resolved.recall());
        if let Some(n) = job.max_solutions {
            enumerator = enumerator.max_solutions(n);
        }
        if let Some(n) = job.max_branches {
            enumerator = enumerator.max_branches(n);
        }
        match enumerator.enumerate() {
            Ok(found) => {
                let mut fields = response_head(job, "enumerate", horizon);
                fields.push(("count".into(), Json::U64(found.count() as u64)));
                fields.push(("complete".into(), Json::Bool(found.is_complete())));
                fields.push((
                    "branches".into(),
                    Json::U64(found.branches_explored() as u64),
                ));
                fields.push((
                    "exhausted_resource".into(),
                    found
                        .exhausted()
                        .map_or(Json::Null, |r| Json::Str(resource_wire_name(r).into())),
                ));
                fields.push((
                    "implementations".into(),
                    Json::Arr(
                        found
                            .implementations()
                            .iter()
                            .map(|imp| protocol_json(&imp.protocol))
                            .collect(),
                    ),
                ));
                Json::Obj(fields)
            }
            Err(e) => solve_error_response(job.id, &e),
        }
    }

    fn run_fault_lattice(&self, job: &JobRequest, resolved: &Resolved, horizon: usize) -> Json {
        if !resolved.solvable() {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported(
                    "scenario has future-referring guards; use kind 'enumerate'",
                ),
            );
        }
        let Resolved::Registry(entry) = resolved else {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported("scenario has no fault lattice"),
            );
        };
        let Some(lattice) = entry.fault_lattice(job.fault_seed) else {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported("scenario has no fault lattice"),
            );
        };
        let mut rows = Vec::with_capacity(lattice.len());
        for (rung, schedule) in lattice {
            let (ctx, kbp) = entry.build_faulty(schedule.clone());
            let agents = ctx.agent_count();
            let signature = schedule.signature(horizon, agents);
            let fingerprint = entry.fingerprint(Some((rung, job.fault_seed)));
            let key = SessionKey::faulty(entry.name, rung, job.fault_seed);
            match self.solve_outcome(job, resolved, horizon, &ctx, &kbp, fingerprint, &key) {
                Ok(outcome) => {
                    let mut row = vec![
                        ("fault".to_string(), Json::Str(rung.into())),
                        ("signature".to_string(), Json::U64(signature)),
                    ];
                    push_outcome_fields(&mut row, &outcome);
                    // Lattice rows summarize: drop the (large) protocol.
                    row.retain(|(k, _)| k != "protocol");
                    rows.push(Json::Obj(row));
                }
                Err(e) => return solve_error_response(job.id, &e),
            }
        }
        let mut fields = response_head(job, "fault_lattice", horizon);
        fields.push(("fault_seed".into(), Json::U64(job.fault_seed)));
        fields.push(("rows".into(), Json::Arr(rows)));
        Json::Obj(fields)
    }

    /// The `{"op":"stats"}` response. Live counters — monitoring only,
    /// never compared bit-for-bit.
    #[must_use]
    pub fn stats_response(&self, id: Option<u64>) -> Json {
        let stats = self.stats();
        obj(vec![
            ("id", id.map_or(Json::Null, Json::U64)),
            ("ok", Json::Bool(true)),
            ("kind", Json::Str("stats".into())),
            ("workers", Json::U64(self.config.workers as u64)),
            (
                "queue_capacity",
                Json::U64(self.config.queue_capacity as u64),
            ),
            ("jobs_executed", Json::U64(stats.jobs_executed as u64)),
            ("queue_rejections", Json::U64(stats.queue_rejections as u64)),
            ("cache", self.cache_json(&stats.cache)),
            ("layers_total", Json::U64(stats.layers_total as u64)),
            ("layers_restored", Json::U64(stats.layers_restored as u64)),
        ])
    }

    /// The `{"kind":"health"}` response: a cheap liveness probe that
    /// touches no job state.
    #[must_use]
    pub fn health_response(&self, id: Option<u64>) -> Json {
        obj(vec![
            ("id", id.map_or(Json::Null, Json::U64)),
            ("ok", Json::Bool(true)),
            ("kind", Json::Str("health".into())),
            ("status", Json::Str("ok".into())),
            ("workers", Json::U64(self.config.workers as u64)),
            (
                "queue_capacity",
                Json::U64(self.config.queue_capacity as u64),
            ),
        ])
    }

    /// The `{"kind":"metrics"}` response: queue depth (supplied by the
    /// front end that owns the queue), worker utilization and the full
    /// cache counters. Monitoring only — racy by nature, never compared
    /// bit-for-bit.
    #[must_use]
    pub fn metrics_response(&self, id: Option<u64>, queue_depth: usize) -> Json {
        self.metrics_response_with_plane(id, queue_depth, None)
    }

    /// [`metrics_response`](Self::metrics_response) extended with the
    /// connection plane's counters (`--listen` mode). Strictly additive
    /// — every pre-plane field keeps its name and meaning, so existing
    /// scrapers parse both shapes.
    #[must_use]
    pub fn metrics_response_with_plane(
        &self,
        id: Option<u64>,
        queue_depth: usize,
        plane: Option<&PlaneSnapshot>,
    ) -> Json {
        let stats = self.stats();
        let busy = self.workers_busy.load(Ordering::Relaxed);
        let mut fields: Vec<(String, Json)> = vec![
            ("id".into(), id.map_or(Json::Null, Json::U64)),
            ("ok".into(), Json::Bool(true)),
            ("kind".into(), Json::Str("metrics".into())),
            ("workers".into(), Json::U64(self.config.workers as u64)),
            (
                "workers_busy".into(),
                Json::U64(busy.min(self.config.workers) as u64),
            ),
            (
                "queue_capacity".into(),
                Json::U64(self.config.queue_capacity as u64),
            ),
            ("queue_depth".into(), Json::U64(queue_depth as u64)),
            (
                "jobs_executed".into(),
                Json::U64(stats.jobs_executed as u64),
            ),
            (
                "queue_rejections".into(),
                Json::U64(stats.queue_rejections as u64),
            ),
            (
                "quota_rejections".into(),
                Json::U64(stats.quota_rejections as u64),
            ),
            ("cache".into(), self.cache_json(&stats.cache)),
            ("layers_total".into(), Json::U64(stats.layers_total as u64)),
            (
                "layers_restored".into(),
                Json::U64(stats.layers_restored as u64),
            ),
            (
                "eval".into(),
                obj(vec![
                    ("layers", Json::U64(stats.eval.layers as u64)),
                    (
                        "sharded_layers",
                        Json::U64(stats.eval.sharded_layers as u64),
                    ),
                    ("shards", Json::U64(stats.eval.shards as u64)),
                    (
                        "quotiented_layers",
                        Json::U64(stats.eval.quotiented_layers as u64),
                    ),
                    (
                        "quotient_worlds",
                        Json::U64(stats.eval.quotient_worlds as u64),
                    ),
                    (
                        "quotiented_points",
                        Json::U64(stats.eval.quotiented_points as u64),
                    ),
                    (
                        "quotient_ratio_permille",
                        stats
                            .eval
                            .quotient_ratio_permille()
                            .map_or(Json::Null, Json::U64),
                    ),
                    (
                        "gen_quotiented_layers",
                        Json::U64(stats.eval.gen_quotiented_layers as u64),
                    ),
                    (
                        "gen_quotient_worlds",
                        Json::U64(stats.eval.gen_quotient_worlds as u64),
                    ),
                    (
                        "gen_quotiented_points",
                        Json::U64(stats.eval.gen_quotiented_points as u64),
                    ),
                    (
                        "gen_quotient_ratio_permille",
                        stats
                            .eval
                            .gen_quotient_ratio_permille()
                            .map_or(Json::Null, Json::U64),
                    ),
                ]),
            ),
            (
                "definitions".into(),
                obj(vec![
                    ("active", Json::U64(stats.definitions_active as u64)),
                    ("restored", Json::U64(stats.definitions_restored as u64)),
                    ("quota", Json::U64(self.config.client_definitions as u64)),
                ]),
            ),
        ];
        if let Some(plane) = plane {
            fields.push((
                "connections".into(),
                obj(vec![
                    ("active", Json::U64(plane.connections_active as u64)),
                    ("idle", Json::U64(plane.connections_idle as u64)),
                ]),
            ));
            fields.push((
                "disconnects".into(),
                obj(vec![
                    (
                        "idle_timeout",
                        Json::U64(plane.disconnects_idle_timeout as u64),
                    ),
                    (
                        "read_deadline",
                        Json::U64(plane.disconnects_read_deadline as u64),
                    ),
                    (
                        "write_budget",
                        Json::U64(plane.disconnects_write_budget as u64),
                    ),
                    (
                        "write_stall",
                        Json::U64(plane.disconnects_write_stall as u64),
                    ),
                ]),
            ));
            fields.push((
                "responses_dropped".into(),
                Json::U64(plane.responses_dropped as u64),
            ));
            fields.push((
                "clients".into(),
                Json::Obj(
                    plane
                        .clients
                        .iter()
                        .map(|(client, pending)| (client.clone(), Json::U64(*pending as u64)))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }

    fn cache_json(&self, cache: &CacheStats) -> Json {
        obj(vec![
            ("enabled", Json::Bool(self.cache.is_enabled())),
            ("hits", Json::U64(cache.hits as u64)),
            ("misses", Json::U64(cache.misses as u64)),
            ("sessions", Json::U64(cache.sessions as u64)),
            ("evictions", Json::U64(cache.evictions as u64)),
            ("capacity", Json::U64(cache.capacity as u64)),
            ("preloaded", Json::U64(cache.preloaded as u64)),
            ("persisted", Json::U64(cache.persisted as u64)),
            ("persist_failures", Json::U64(cache.persist_failures as u64)),
            ("compacted", Json::U64(cache.compacted as u64)),
            ("compact_failures", Json::U64(cache.compact_failures as u64)),
        ])
    }
}

/// Whether the current scenario registry still produces the session
/// file described by `key` at `fingerprint`: the scenario must exist,
/// a fault key must name a scenario that *has* a lattice, and the
/// re-derived fingerprint must match the file name (a mismatch means
/// the fingerprint algorithm or the scenario definition changed — the
/// artifact can never be looked up again).
fn registry_owns(key: &SessionKey, fingerprint: u64) -> bool {
    let Some(entry) = find(&key.scenario) else {
        return false;
    };
    match key.fault_ref() {
        None => entry.fingerprint(None) == fingerprint,
        Some((rung, seed)) => {
            entry.lattice.is_some() && entry.fingerprint(Some((rung, seed))) == fingerprint
        }
    }
}

/// Reloads persisted scenario definitions at startup. Registry-shadowed
/// names, uncompilable sources and records whose re-derived fingerprint
/// disagrees with the file name are skipped — restore must never take
/// the daemon down, and a definition that no longer compiles should
/// vanish rather than serve a stale lowering.
fn restore_definitions(store: Option<&SessionStore>) -> (HashMap<String, Arc<Definition>>, usize) {
    let mut definitions = HashMap::new();
    let Some(store) = store else {
        return (definitions, 0);
    };
    let Ok(records) = store.load_definitions() else {
        return (definitions, 0);
    };
    for (fingerprint, record) in records {
        if find(&record.name).is_some() {
            continue;
        }
        let (Some(compiled), _) = kbp_lang::check(&record.source) else {
            continue;
        };
        if definition_fingerprint(&record.name, compiled.recall(), &record.source) != fingerprint {
            continue;
        }
        definitions.insert(
            record.name.clone(),
            Arc::new(Definition {
                name: record.name,
                owner: record.owner,
                source: record.source,
                fingerprint,
                compiled,
            }),
        );
    }
    let restored = definitions.len();
    (definitions, restored)
}

/// The `ok: false` answer to a `define` whose source does not compile:
/// kind `invalid_program`, with every diagnostic as a typed object
/// carrying 1-based line/column spans.
fn invalid_program_response(id: u64, source: &str, diagnostics: &[Diagnostic]) -> Json {
    obj(vec![
        ("id", Json::U64(id)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str("invalid_program".into())),
                (
                    "message",
                    Json::Str(format!(
                        "source does not compile: {} error(s)",
                        diagnostics
                            .iter()
                            .filter(|d| d.severity == Severity::Error)
                            .count()
                    )),
                ),
                ("diagnostics", diagnostics_json(source, diagnostics)),
            ]),
        ),
    ])
}

/// Serializes analyzer diagnostics with 1-based line/column spans
/// resolved against `source`, ordered by span then severity (the
/// analyzer already emits them sorted; sort again so the wire shape is
/// an invariant, not an implementation detail).
fn diagnostics_json(source: &str, diagnostics: &[Diagnostic]) -> Json {
    let map = LineMap::new(source);
    let mut sorted: Vec<&Diagnostic> = diagnostics.iter().collect();
    sorted.sort_by_key(|d| (d.span.start, d.span.end, d.severity == Severity::Warning));
    Json::Arr(
        sorted
            .into_iter()
            .map(|d| {
                let start = map.line_col(d.span.start);
                let end = map.line_col(d.span.end);
                obj(vec![
                    ("severity", Json::Str(d.severity.to_string())),
                    ("line", Json::U64(start.line as u64)),
                    ("col", Json::U64(start.col as u64)),
                    ("end_line", Json::U64(end.line as u64)),
                    ("end_col", Json::U64(end.col as u64)),
                    ("message", Json::Str(d.message.clone())),
                ])
            })
            .collect(),
    )
}

fn response_head(job: &JobRequest, kind: &str, horizon: usize) -> Vec<(String, Json)> {
    vec![
        ("id".to_string(), Json::U64(job.id)),
        ("ok".to_string(), Json::Bool(true)),
        ("kind".to_string(), Json::Str(kind.into())),
        ("scenario".to_string(), Json::Str(job.scenario.clone())),
        (
            "fault".to_string(),
            job.fault
                .as_deref()
                .map_or(Json::Null, |f| Json::Str(f.into())),
        ),
        ("horizon".to_string(), Json::U64(horizon as u64)),
    ]
}

/// Appends `outcome`, `stabilized`/`exhausted`, `stats` and `protocol`
/// fields for a solve outcome. Only scheduling-independent stats go on
/// the wire — see the module-level determinism argument.
fn push_outcome_fields(fields: &mut Vec<(String, Json)>, outcome: &SolveOutcome) {
    match outcome {
        SolveOutcome::Complete(s) => {
            fields.push(("outcome".into(), Json::Str("complete".into())));
            fields.push((
                "stabilized".into(),
                s.stabilized().map_or(Json::Null, |t| Json::U64(t as u64)),
            ));
            fields.push(("stats".into(), stats_json(&s.stats())));
            fields.push(("protocol".into(), protocol_json(s.protocol())));
        }
        SolveOutcome::Partial(p) => {
            fields.push(("outcome".into(), Json::Str("partial".into())));
            fields.push(("exhausted".into(), exhausted_json(p)));
            fields.push(("stats".into(), stats_json(&p.stats())));
            fields.push(("protocol".into(), protocol_json(p.protocol())));
        }
    }
}

fn exhausted_json(p: &PartialSolution) -> Json {
    let e = p.exhausted();
    obj(vec![
        ("resource", Json::Str(resource_wire_name(e.resource).into())),
        ("at_layer", Json::U64(e.at_layer as u64)),
    ])
}

fn stats_json(stats: &SolveStats) -> Json {
    obj(vec![
        ("layers", Json::U64(stats.layers as u64)),
        ("points", Json::U64(stats.points as u64)),
        ("protocol_entries", Json::U64(stats.protocol_entries as u64)),
        (
            "guard_evaluations",
            Json::U64(stats.guard_evaluations as u64),
        ),
    ])
}

fn resource_wire_name(r: Resource) -> &'static str {
    match r {
        Resource::Deadline => "deadline",
        Resource::LayerPoints => "layer_points",
        Resource::GuardEvaluations => "guard_evaluations",
        Resource::Memory => "memory",
        Resource::Nodes => "nodes",
        Resource::Branches => "branches",
        Resource::Solutions => "solutions",
    }
}

/// Serializes a protocol as `[[agent, [obs...], [action...]], ...]`,
/// sorted by `(agent, history)` — the backing map iterates in arbitrary
/// order, and wire bytes must not.
fn protocol_json(protocol: &MapProtocol) -> Json {
    let mut entries: Vec<(usize, Vec<u64>, Vec<u32>)> = protocol
        .iter()
        .map(|(agent, history, acts)| {
            (
                agent.index(),
                history.iter().map(|o| o.0).collect(),
                acts.iter().map(|a| a.0).collect(),
            )
        })
        .collect();
    entries.sort();
    Json::Arr(
        entries
            .into_iter()
            .map(|(agent, history, acts)| {
                Json::Arr(vec![
                    Json::U64(agent as u64),
                    Json::Arr(history.into_iter().map(Json::U64).collect()),
                    Json::Arr(acts.into_iter().map(|a| Json::U64(u64::from(a))).collect()),
                ])
            })
            .collect(),
    )
}

/// An `ok: false` response for a request-level error.
#[must_use]
pub fn error_response(id: Option<u64>, error: &RequestError) -> Json {
    obj(vec![
        ("id", id.map_or(Json::Null, Json::U64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(error.wire_kind().into())),
                ("message", Json::Str(error.to_string())),
            ]),
        ),
    ])
}

/// An `ok: false` response for a [`QueueFull`] rejection, carrying the
/// typed retry-after hint.
#[must_use]
pub fn reject_response(id: Option<u64>, full: QueueFull) -> Json {
    obj(vec![
        ("id", id.map_or(Json::Null, Json::U64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str("queue_full".into())),
                ("message", Json::Str(full.to_string())),
                ("capacity", Json::U64(full.capacity as u64)),
                ("retry_after_ms", Json::U64(full.retry_after_ms)),
            ]),
        ),
    ])
}

/// An `ok: false` response for a per-client quota rejection
/// (`--listen` mode): the connection stays open, the client holds
/// `pending` unanswered requests against a quota of `limit`.
#[must_use]
pub fn quota_response(id: Option<u64>, pending: usize, limit: usize) -> Json {
    obj(vec![
        ("id", id.map_or(Json::Null, Json::U64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str("quota_exceeded".into())),
                (
                    "message",
                    Json::Str(format!(
                        "client quota exceeded: {pending} pending of {limit} allowed"
                    )),
                ),
                ("pending", Json::U64(pending as u64)),
                ("limit", Json::U64(limit as u64)),
            ]),
        ),
    ])
}

/// The one-line `ok: false` answer a connection beyond the
/// concurrent-connection bound receives before being closed — a typed
/// refusal, never a silent drop.
#[must_use]
pub fn too_many_connections_response(limit: usize) -> Json {
    obj(vec![
        ("id", Json::Null),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str("too_many_connections".into())),
                (
                    "message",
                    Json::Str(format!("connection limit ({limit}) reached; retry later")),
                ),
                ("limit", Json::U64(limit as u64)),
            ]),
        ),
    ])
}

/// An `ok: false` response for a malformed frame (oversized or
/// non-UTF-8 line), produced by the daemon's reader loops.
#[must_use]
pub fn frame_error_response(error: &crate::framing::FrameError) -> Json {
    let kind = match error {
        crate::framing::FrameError::Oversized { .. } => "oversized",
        crate::framing::FrameError::InvalidUtf8 => "invalid_utf8",
    };
    obj(vec![
        ("id", Json::Null),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(kind.into())),
                ("message", Json::Str(error.to_string())),
            ]),
        ),
    ])
}

fn solve_error_response(id: u64, error: &SolveError) -> Json {
    obj(vec![
        ("id", Json::U64(id)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str("solve_error".into())),
                ("message", Json::Str(error.to_string())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::parse_request;
    use crate::job::Request;
    use std::path::Path;

    fn job(line: &str) -> JobRequest {
        match parse_request(line).unwrap() {
            Request::Job(job) => job,
            other => panic!("expected a job, got {other:?}"),
        }
    }

    #[test]
    fn executes_a_solve_job() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let response = service.execute(&job(
            r#"{"id":1,"kind":"solve","scenario":"bit_transmission"}"#,
        ));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("outcome"), Some(&Json::Str("complete".into())));
        assert!(matches!(response.get("protocol"), Some(Json::Arr(v)) if !v.is_empty()));
        assert_eq!(service.stats().jobs_executed, 1);
    }

    #[test]
    fn unknown_scenario_is_a_typed_response() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let response = service.execute(&job(r#"{"id":2,"kind":"solve","scenario":"nope"}"#));
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        let error = response.get("error").unwrap();
        assert_eq!(
            error.get("kind"),
            Some(&Json::Str("unknown_scenario".into()))
        );
    }

    #[test]
    fn future_program_solve_is_unsupported_but_enumerate_works() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let solve = service.execute(&job(
            r#"{"id":3,"kind":"solve","scenario":"zoo_self_fulfilling"}"#,
        ));
        assert_eq!(solve.get("ok"), Some(&Json::Bool(false)));
        let enumerate = service.execute(&job(
            r#"{"id":4,"kind":"enumerate","scenario":"zoo_self_fulfilling"}"#,
        ));
        assert_eq!(enumerate.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(enumerate.get("count"), Some(&Json::U64(2)));
        assert_eq!(enumerate.get("complete"), Some(&Json::Bool(true)));
    }

    #[test]
    fn check_job_confirms_the_fixed_point() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let response = service.execute(&job(
            r#"{"id":5,"kind":"check","scenario":"muddy_children_3"}"#,
        ));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("is_implementation"), Some(&Json::Bool(true)));
        assert_eq!(response.get("mismatches"), Some(&Json::U64(0)));
    }

    #[test]
    fn fault_lattice_has_four_rows_and_stable_signatures() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let line =
            r#"{"id":6,"kind":"fault_lattice","scenario":"bit_transmission","fault_seed":7}"#;
        let a = service.execute(&job(line));
        let b = service.execute(&job(line));
        assert_eq!(a.to_line(), b.to_line(), "lattice must be replayable");
        let Some(Json::Arr(rows)) = a.get("rows") else {
            panic!("rows missing: {}", a.to_line());
        };
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].get("fault"), Some(&Json::Str("none".into())));
        assert!(rows.iter().all(|r| r.get("signature").is_some()));
    }

    #[test]
    fn batch_responses_come_back_in_submission_order() {
        let service = Service::new(ServiceConfig::new().workers(4));
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| {
                job(&format!(
                    r#"{{"id":{i},"kind":"solve","scenario":"zoo_plain"}}"#
                ))
            })
            .collect();
        let responses = service.run_batch(&jobs);
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(response.get("id"), Some(&Json::U64(i as u64)));
        }
    }

    #[test]
    fn strict_batch_rejects_deterministically_beyond_capacity() {
        let service = Service::new(ServiceConfig::new().workers(2).queue_capacity(2));
        let jobs: Vec<JobRequest> = (0..5)
            .map(|i| {
                job(&format!(
                    r#"{{"id":{i},"kind":"solve","scenario":"zoo_plain"}}"#
                ))
            })
            .collect();
        let responses = service.run_batch_strict(&jobs);
        assert_eq!(responses.len(), 5);
        for accepted in &responses[..2] {
            assert_eq!(accepted.get("ok"), Some(&Json::Bool(true)));
        }
        for rejected in &responses[2..] {
            assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
            let error = rejected.get("error").unwrap();
            assert_eq!(error.get("kind"), Some(&Json::Str("queue_full".into())));
            assert_eq!(error.get("capacity"), Some(&Json::U64(2)));
            assert!(error.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
        }
        assert_eq!(service.stats().queue_rejections, 3);
    }

    #[test]
    fn config_from_env_rejects_garbage() {
        // Environment mutation: run the cases in one test to avoid
        // parallel-test interference on the same variables.
        let run = |pairs: &[(&str, &str)]| {
            for (k, v) in pairs {
                std::env::set_var(k, v);
            }
            let result = ServiceConfig::from_env();
            for (k, _) in pairs {
                std::env::remove_var(k);
            }
            result
        };
        assert!(matches!(
            run(&[(WORKERS_ENV, "zero?")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(QUEUE_ENV, "0")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(CACHE_ENV, "maybe")]),
            Err(ConfigError::Flag { .. })
        ));
        assert!(matches!(
            run(&[(CACHE_SESSIONS_ENV, "lots")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(CACHE_SESSIONS_ENV, "0")]),
            Err(ConfigError::Threads(_))
        ));
        // The new daemon bounds: zero and garbage are startup errors.
        for var in [CLIENT_PENDING_ENV, MAX_CONNECTIONS_ENV, MAX_LINE_ENV] {
            assert!(
                matches!(run(&[(var, "0")]), Err(ConfigError::Size { .. })),
                "{var}=0 must be rejected"
            );
            assert!(
                matches!(run(&[(var, "many")]), Err(ConfigError::Size { .. })),
                "{var}=many must be rejected"
            );
        }
        // The protection bounds: garbage is a startup error, but zero is
        // the documented "disabled" value.
        for var in [
            IDLE_TIMEOUT_ENV,
            WRITE_BUDGET_ENV,
            WRITE_STALL_ENV,
            CLIENT_DEFINITIONS_ENV,
        ] {
            assert!(
                matches!(run(&[(var, "soon")]), Err(ConfigError::Size { .. })),
                "{var}=soon must be rejected"
            );
            assert!(run(&[(var, "0")]).is_ok(), "{var}=0 means disabled");
        }
        let disabled = run(&[(IDLE_TIMEOUT_ENV, "0")]).unwrap();
        assert_eq!(disabled.idle_timeout_ms, 0);
        let unlimited = run(&[(CLIENT_DEFINITIONS_ENV, "0")]).unwrap();
        assert_eq!(unlimited.client_definitions, 0);
        // The engine variables are validated here too (satellite of the
        // daemon-robustness sweep): the engine itself would silently
        // fall back, the daemon must not start.
        assert!(matches!(
            run(&[(THREADS_ENV, "fast")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(kbp_kripke::SHARD_MIN_WORLDS_ENV, "wide")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(kbp_kripke::QUOTIENT_MIN_WORLDS_ENV, "small")]),
            Err(ConfigError::Threads(_))
        ));
        let ok = run(&[
            (WORKERS_ENV, "3"),
            (QUEUE_ENV, "17"),
            (CACHE_ENV, "off"),
            (CACHE_SESSIONS_ENV, "5"),
            (CACHE_DIR_ENV, "/tmp/kbp-cache-test"),
            (CLIENT_PENDING_ENV, "9"),
            (MAX_CONNECTIONS_ENV, "7"),
            (MAX_LINE_ENV, "2048"),
            (IDLE_TIMEOUT_ENV, "1500"),
            (WRITE_BUDGET_ENV, "8192"),
            (WRITE_STALL_ENV, "2500"),
            (CLIENT_DEFINITIONS_ENV, "3"),
        ])
        .unwrap();
        assert_eq!(ok.workers, 3);
        assert_eq!(ok.queue_capacity, 17);
        assert!(!ok.cache_enabled);
        assert_eq!(ok.cache_sessions, 5);
        assert_eq!(
            ok.cache_dir.as_deref(),
            Some(Path::new("/tmp/kbp-cache-test"))
        );
        assert_eq!(ok.client_pending, 9);
        assert_eq!(ok.max_connections, 7);
        assert_eq!(ok.max_line, 2048);
        assert_eq!(ok.idle_timeout_ms, 1500);
        assert_eq!(ok.write_budget_bytes, 8192);
        assert_eq!(ok.write_stall_ms, 2500);
        assert_eq!(ok.client_definitions, 3);
    }

    #[test]
    fn health_and_metrics_are_monitoring_responses() {
        let service = Service::new(ServiceConfig::new().workers(2).queue_capacity(8));
        let health = service.health_response(Some(4));
        assert_eq!(health.get("id"), Some(&Json::U64(4)));
        assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(health.get("status"), Some(&Json::Str("ok".into())));

        let _ = service.execute(&job(r#"{"id":1,"kind":"solve","scenario":"zoo_plain"}"#));
        let metrics = service.metrics_response(None, 3);
        assert_eq!(metrics.get("id"), Some(&Json::Null));
        assert_eq!(metrics.get("kind"), Some(&Json::Str("metrics".into())));
        assert_eq!(metrics.get("queue_depth"), Some(&Json::U64(3)));
        assert_eq!(metrics.get("workers_busy"), Some(&Json::U64(0)));
        assert_eq!(metrics.get("jobs_executed"), Some(&Json::U64(1)));
        let cache = metrics.get("cache").unwrap();
        assert_eq!(cache.get("misses"), Some(&Json::U64(1)));
        assert_eq!(cache.get("preloaded"), Some(&Json::U64(0)));
        assert_eq!(cache.get("compacted"), Some(&Json::U64(0)));
        // Without a plane snapshot the wire shape is the pre-plane one.
        assert!(metrics.get("connections").is_none());

        let plane = PlaneSnapshot {
            connections_active: 2,
            connections_idle: 5,
            disconnects_write_budget: 1,
            responses_dropped: 3,
            clients: vec![("alpha".into(), 4), ("beta".into(), 0)],
            ..PlaneSnapshot::default()
        };
        let metrics = service.metrics_response_with_plane(Some(9), 0, Some(&plane));
        let connections = metrics.get("connections").unwrap();
        assert_eq!(connections.get("active"), Some(&Json::U64(2)));
        assert_eq!(connections.get("idle"), Some(&Json::U64(5)));
        let disconnects = metrics.get("disconnects").unwrap();
        assert_eq!(disconnects.get("idle_timeout"), Some(&Json::U64(0)));
        assert_eq!(disconnects.get("write_budget"), Some(&Json::U64(1)));
        assert_eq!(metrics.get("responses_dropped"), Some(&Json::U64(3)));
        let clients = metrics.get("clients").unwrap();
        assert_eq!(clients.get("alpha"), Some(&Json::U64(4)));
        assert_eq!(clients.get("beta"), Some(&Json::U64(0)));
    }

    #[test]
    fn disconnect_notices_are_typed() {
        for (kind, name) in [
            (DisconnectKind::IdleTimeout, "idle_timeout"),
            (DisconnectKind::ReadDeadline, "read_deadline"),
            (DisconnectKind::WriteBudget, "write_budget"),
            (DisconnectKind::WriteStall, "write_stall"),
        ] {
            assert_eq!(kind.wire_name(), name);
            let notice = disconnect_response(kind, "closing");
            assert_eq!(notice.get("ok"), Some(&Json::Bool(false)));
            let error = notice.get("error").unwrap();
            assert_eq!(error.get("kind"), Some(&Json::Str(name.into())));
        }
    }

    #[test]
    fn shutdown_compaction_is_scoped_by_the_registry() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-service-compact-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Service::new(ServiceConfig::new().workers(1).cache_dir(Some(dir.clone())));
        // A real solve, persisted under its registry provenance...
        let _ = service.execute(&job(
            r#"{"id":1,"kind":"solve","scenario":"bit_transmission"}"#,
        ));
        // ...plus a file the registry never produced.
        let store = crate::persist::SessionStore::open(&dir).unwrap();
        store
            .save(
                0xDEAD,
                &SessionKey::plain("retired_scenario"),
                &kbp_core::EngineSession::new(),
            )
            .unwrap();
        service.persist();
        let survivors = store.list().unwrap();
        let live = find("bit_transmission").unwrap().fingerprint(None);
        assert_eq!(survivors, vec![live]);
        let stats = service.stats();
        assert_eq!(stats.cache.compacted, 1);
        assert_eq!(stats.cache.compact_failures, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn dsl_source() -> String {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/dsl/bit_transmission.kbp"
        );
        std::fs::read_to_string(path).expect("bit_transmission example exists")
    }

    fn define(id: u64, name: Option<&str>, source: &str, client: Option<&str>) -> DefineRequest {
        DefineRequest {
            id,
            name: name.map(str::to_string),
            source: source.to_string(),
            client: client.map(str::to_string),
        }
    }

    #[test]
    fn defined_scenarios_solve_bit_identically_to_the_registry() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let response =
            service.define_response(&define(1, Some("bt_dsl"), &dsl_source(), None), "local");
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response:?}");
        assert_eq!(response.get("kind"), Some(&Json::Str("define".into())));
        assert_eq!(response.get("scenario"), Some(&Json::Str("bt_dsl".into())));
        assert_eq!(response.get("solvable"), Some(&Json::Bool(true)));
        assert_eq!(response.get("default_horizon"), Some(&Json::U64(5)));
        assert_eq!(response.get("agents"), Some(&Json::U64(2)));
        assert_eq!(response.get("redefined"), Some(&Json::Bool(false)));
        assert_eq!(service.stats().definitions_active, 1);

        // The defined scenario answers every field identically to the
        // compiled-in registry scenario, except the echoed name.
        let registry = service.execute(&job(
            r#"{"id":7,"kind":"solve","scenario":"bit_transmission"}"#,
        ));
        let defined = service.execute(&job(r#"{"id":7,"kind":"solve","scenario":"bt_dsl"}"#));
        let (Json::Obj(registry), Json::Obj(defined)) = (&registry, &defined) else {
            panic!("solve responses must be objects");
        };
        assert_eq!(registry.len(), defined.len());
        for ((rk, rv), (dk, dv)) in registry.iter().zip(defined.iter()) {
            assert_eq!(rk, dk, "field order must match");
            if rk == "scenario" {
                assert_eq!(dv, &Json::Str("bt_dsl".into()));
            } else {
                assert_eq!(rv, dv, "field '{rk}' differs");
            }
        }

        // check works against the defined scenario too.
        let checked = service.execute(&job(r#"{"id":8,"kind":"check","scenario":"bt_dsl"}"#));
        assert_eq!(checked.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(checked.get("is_implementation"), Some(&Json::Bool(true)));

        // No fault plumbing for definitions: typed unsupported answers.
        let faulted = service.execute(&job(
            r#"{"id":9,"kind":"solve","scenario":"bt_dsl","fault":"loss"}"#,
        ));
        assert_eq!(faulted.get("ok"), Some(&Json::Bool(false)));
        let lattice = service.execute(&job(
            r#"{"id":10,"kind":"fault_lattice","scenario":"bt_dsl"}"#,
        ));
        let error = lattice.get("error").unwrap();
        assert_eq!(error.get("kind"), Some(&Json::Str("unsupported".into())));
    }

    #[test]
    fn define_admission_enforces_names_and_quotas() {
        let service = Service::new(ServiceConfig::new().workers(1).client_definitions(1));
        let source = dsl_source();

        // Registry names cannot be shadowed — neither explicitly nor via
        // the declared name (the example declares "bit_transmission").
        for name in [Some("muddy_children_3"), None] {
            let response = service.define_response(&define(1, name, &source, None), "local");
            assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
            let error = response.get("error").unwrap();
            assert_eq!(error.get("kind"), Some(&Json::Str("name_reserved".into())));
        }

        // tenant-a claims a name; tenant-b may neither take it nor
        // redefine it.
        let ok = service.define_response(
            &define(2, Some("shared"), &source, Some("tenant-a")),
            "local",
        );
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        let stolen = service.define_response(
            &define(3, Some("shared"), &source, Some("tenant-b")),
            "local",
        );
        let error = stolen.get("error").unwrap();
        assert_eq!(error.get("kind"), Some(&Json::Str("name_reserved".into())));

        // tenant-a redefining its own name is fine and does not charge
        // the quota (limit is 1 and the redefine succeeds)...
        let redefined = service.define_response(
            &define(
                4,
                Some("shared"),
                &format!("{source}\n# v2"),
                Some("tenant-a"),
            ),
            "local",
        );
        assert_eq!(redefined.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(redefined.get("redefined"), Some(&Json::Bool(true)));

        // ...but a second distinct name trips the quota with typed
        // held/limit fields.
        let over = service.define_response(
            &define(5, Some("second"), &source, Some("tenant-a")),
            "local",
        );
        assert_eq!(over.get("ok"), Some(&Json::Bool(false)));
        let error = over.get("error").unwrap();
        assert_eq!(
            error.get("kind"),
            Some(&Json::Str("definition_quota".into()))
        );
        assert!(error.get("message").unwrap().to_line().contains("1 of 1"));

        // A different client identity has its own window.
        let other = service.define_response(
            &define(6, Some("second"), &source, Some("tenant-b")),
            "local",
        );
        assert_eq!(other.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(service.stats().definitions_active, 2);
    }

    #[test]
    fn invalid_programs_answer_diagnostics_with_spans() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let source = "scenario broken {\n  agents a\n  vars x\n  init [0]\n  obs a = y\n}\n";
        let response = service.define_response(&define(1, None, source, None), "local");
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        let error = response.get("error").unwrap();
        assert_eq!(
            error.get("kind"),
            Some(&Json::Str("invalid_program".into()))
        );
        let Some(Json::Arr(diags)) = error.get("diagnostics") else {
            panic!("diagnostics array missing: {}", response.to_line());
        };
        assert!(!diags.is_empty());
        let undefined = diags
            .iter()
            .find(|d| d.get("message").unwrap().to_line().contains('y'))
            .expect("a diagnostic mentions the undefined variable");
        assert_eq!(undefined.get("severity"), Some(&Json::Str("error".into())));
        assert_eq!(undefined.get("line"), Some(&Json::U64(5)));
        assert!(undefined.get("col").unwrap().as_u64().unwrap() >= 9);
        // Nothing was registered.
        assert_eq!(service.stats().definitions_active, 0);
    }

    #[test]
    fn definitions_survive_a_warm_restart_and_redefinition_compacts() {
        let dir = std::env::temp_dir().join(format!(
            "kbp-service-def-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let source = dsl_source();
        let config = || ServiceConfig::new().workers(1).cache_dir(Some(dir.clone()));
        {
            let service = Service::new(config());
            let ok = service.define_response(&define(1, Some("bt_dsl"), &source, None), "local");
            assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
            // Warm the cache for the defined fingerprint, then persist.
            let _ = service.execute(&job(r#"{"id":2,"kind":"solve","scenario":"bt_dsl"}"#));
            service.persist();
        }
        let survivor_fp = {
            // Restart: the definition and its warm session both return.
            let service = Service::new(config());
            let stats = service.stats();
            assert_eq!(stats.definitions_active, 1);
            assert_eq!(stats.definitions_restored, 1);
            let response = service.execute(&job(r#"{"id":3,"kind":"solve","scenario":"bt_dsl"}"#));
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
            assert!(
                service.stats().layers_restored > 0,
                "restart must answer warm from the persisted session"
            );
            // Redefine with different source: new fingerprint; the old
            // session file is no longer producible and compacts away.
            let redefined = service.define_response(
                &define(4, Some("bt_dsl"), &format!("{source}\n# v2"), None),
                "local",
            );
            assert_eq!(redefined.get("ok"), Some(&Json::Bool(true)));
            let _ = service.execute(&job(r#"{"id":5,"kind":"solve","scenario":"bt_dsl"}"#));
            service.persist();
            redefined.get("fingerprint").unwrap().as_u64().unwrap()
        };
        let store = crate::persist::SessionStore::open(&dir).unwrap();
        assert_eq!(
            store.list().unwrap(),
            vec![survivor_fp],
            "only the redefined fingerprint's session survives compaction"
        );
        let defs = store.load_definitions().unwrap();
        assert_eq!(defs.len(), 1, "the stale definition file was replaced");
        assert_eq!(defs[0].0, survivor_fp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_surface_eval_and_definition_counters() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let _ = service.execute(&job(
            r#"{"id":1,"kind":"solve","scenario":"muddy_children_3"}"#,
        ));
        let metrics = service.metrics_response(None, 0);
        let eval = metrics.get("eval").unwrap();
        assert!(eval.get("layers").unwrap().as_u64().unwrap() > 0);
        // Small scenarios stay sequential and under the quotient
        // threshold: the counters exist and read zero/null.
        assert_eq!(eval.get("sharded_layers"), Some(&Json::U64(0)));
        assert_eq!(eval.get("quotient_ratio_permille"), Some(&Json::Null));
        assert_eq!(eval.get("gen_quotiented_layers"), Some(&Json::U64(0)));
        assert_eq!(eval.get("gen_quotient_ratio_permille"), Some(&Json::Null));
        let defs = metrics.get("definitions").unwrap();
        assert_eq!(defs.get("active"), Some(&Json::U64(0)));
        assert_eq!(defs.get("restored"), Some(&Json::U64(0)));
        assert_eq!(
            defs.get("quota"),
            Some(&Json::U64(DEFAULT_CLIENT_DEFINITIONS as u64))
        );
        // The aggregate ratio helper: per-mille of surviving worlds.
        let eval = EvalStats {
            quotient_worlds: 250,
            quotiented_points: 1000,
            ..EvalStats::default()
        };
        assert_eq!(eval.quotient_ratio_permille(), Some(250));
        assert_eq!(EvalStats::default().quotient_ratio_permille(), None);
        let eval = EvalStats {
            gen_quotient_worlds: 40,
            gen_quotiented_points: 1000,
            ..EvalStats::default()
        };
        assert_eq!(eval.gen_quotient_ratio_permille(), Some(40));
        assert_eq!(EvalStats::default().gen_quotient_ratio_permille(), None);
    }

    #[test]
    fn quota_and_connection_rejections_are_typed() {
        let quota = quota_response(Some(8), 16, 16);
        assert_eq!(quota.get("ok"), Some(&Json::Bool(false)));
        let error = quota.get("error").unwrap();
        assert_eq!(error.get("kind"), Some(&Json::Str("quota_exceeded".into())));
        assert_eq!(error.get("pending"), Some(&Json::U64(16)));
        assert_eq!(error.get("limit"), Some(&Json::U64(16)));

        let refuse = too_many_connections_response(32);
        assert_eq!(refuse.get("id"), Some(&Json::Null));
        let error = refuse.get("error").unwrap();
        assert_eq!(
            error.get("kind"),
            Some(&Json::Str("too_many_connections".into()))
        );

        let oversized = frame_error_response(&crate::framing::FrameError::Oversized { limit: 64 });
        let error = oversized.get("error").unwrap();
        assert_eq!(error.get("kind"), Some(&Json::Str("oversized".into())));
        let bad_utf8 = frame_error_response(&crate::framing::FrameError::InvalidUtf8);
        let error = bad_utf8.get("error").unwrap();
        assert_eq!(error.get("kind"), Some(&Json::Str("invalid_utf8".into())));
    }
}
