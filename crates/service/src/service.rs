//! The service proper: configuration, the deterministic worker pool, and
//! the job executors.
//!
//! # Determinism argument
//!
//! A response line is a pure function of its request. Three things make
//! this true regardless of worker count and cache state:
//!
//! 1. every executor runs one job on one thread against a context built
//!    fresh from the registry (the only shared mutable state is the
//!    artifact cache, whose sessions only ever *restore* values that are
//!    pure functions of `(layer, formula)` — see
//!    [`kbp_core::EngineSession`]);
//! 2. the wire stats are the solver's clause-lookup counters, which are
//!    independent of evaluation sharding and cache warmth —
//!    cache-housekeeping counters (`layers_carried`, `layers_restored`,
//!    `arenas`) are deliberately *not* serialized;
//! 3. responses are emitted in submission order (the batch runners sort
//!    by submission index; `kbpd` uses a reorder buffer), so the output
//!    stream does not depend on scheduling.

use crate::cache::{ArtifactCache, CacheStats};
use crate::job::{JobKind, JobRequest, RequestError};
use crate::json::{obj, Json};
use crate::queue::{JobQueue, QueueFull};
use crate::registry::{find, ScenarioEntry};
use kbp_core::{
    check_implementation, Enumerator, Kbp, PartialSolution, Resource, SolveError, SolveOutcome,
    SolveStats, SyncSolver,
};
use kbp_faults::FaultyContext;
use kbp_kripke::{env_threads, ThreadConfigError};
use kbp_systems::{Context, FnContext, MapProtocol};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable sizing the worker pool.
pub const WORKERS_ENV: &str = "KBP_SERVICE_WORKERS";

/// Environment variable sizing the job queue (admission window).
pub const QUEUE_ENV: &str = "KBP_SERVICE_QUEUE";

/// Environment variable toggling the artifact cache (`0`/`off`/`false`
/// to disable).
pub const CACHE_ENV: &str = "KBP_SERVICE_CACHE";

/// Environment variable bounding the artifact cache (maximum retained
/// sessions; least-recently-used contexts are evicted past the bound).
pub const CACHE_SESSIONS_ENV: &str = "KBP_SERVICE_CACHE_SESSIONS";

/// Default artifact-cache bound (retained sessions).
pub const DEFAULT_CACHE_SESSIONS: usize = 64;

/// A malformed service configuration. Unlike a lenient default, this is
/// surfaced before any job runs: a typo in `KBP_SERVICE_WORKERS` should
/// fail startup, not silently serve with one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A numeric variable did not parse (bad number, zero, or absurd).
    Threads(ThreadConfigError),
    /// A boolean flag was neither truthy (`1`/`on`/`true`) nor falsy
    /// (`0`/`off`/`false`).
    Flag {
        /// The environment variable.
        var: &'static str,
        /// Its rejected value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Threads(e) => write!(f, "{e}"),
            ConfigError::Flag { var, value } => {
                write!(f, "{var}: expected 0/off/false or 1/on/true, got '{value}'")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Threads(e) => Some(e),
            ConfigError::Flag { .. } => None,
        }
    }
}

impl From<ThreadConfigError> for ConfigError {
    fn from(e: ThreadConfigError) -> Self {
        ConfigError::Threads(e)
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Queue capacity; admissions beyond it are rejected with
    /// [`QueueFull`].
    pub queue_capacity: usize,
    /// Whether the artifact cache retains sessions across jobs.
    pub cache_enabled: bool,
    /// Maximum sessions the artifact cache retains (LRU eviction past
    /// the bound; min 1).
    pub cache_sessions: usize,
    /// Retry-after hint attached to [`QueueFull`] rejections, in ms.
    pub retry_after_ms: u64,
}

impl ServiceConfig {
    /// Defaults: workers = available parallelism, queue of 64, cache on.
    #[must_use]
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ServiceConfig {
            workers,
            queue_capacity: 64,
            cache_enabled: true,
            cache_sessions: DEFAULT_CACHE_SESSIONS,
            retry_after_ms: 50,
        }
    }

    /// Reads `KBP_SERVICE_WORKERS`, `KBP_SERVICE_QUEUE`,
    /// `KBP_SERVICE_CACHE` and `KBP_SERVICE_CACHE_SESSIONS` on top of the
    /// defaults.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on any malformed value — unset or empty variables
    /// keep their defaults, but a present, unusable value is a startup
    /// error, never a silent fallback.
    pub fn from_env() -> Result<Self, ConfigError> {
        let mut config = ServiceConfig::new();
        if let Some(workers) = env_threads(WORKERS_ENV)? {
            config.workers = workers;
        }
        if let Some(capacity) = env_threads(QUEUE_ENV)? {
            config.queue_capacity = capacity;
        }
        // Zero is rejected (like the other counts): to run cache-less,
        // set KBP_SERVICE_CACHE=off rather than a zero-session cache.
        if let Some(sessions) = env_threads(CACHE_SESSIONS_ENV)? {
            config.cache_sessions = sessions;
        }
        if let Ok(raw) = std::env::var(CACHE_ENV) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                config.cache_enabled = match trimmed.to_ascii_lowercase().as_str() {
                    "1" | "on" | "true" => true,
                    "0" | "off" | "false" => false,
                    _ => {
                        return Err(ConfigError::Flag {
                            var: CACHE_ENV,
                            value: raw,
                        })
                    }
                };
            }
        }
        Ok(config)
    }

    /// Sets the worker count (min 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the queue capacity (min 1).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables or disables the artifact cache.
    #[must_use]
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Sets the artifact-cache session bound (min 1).
    #[must_use]
    pub fn cache_sessions(mut self, sessions: usize) -> Self {
        self.cache_sessions = sessions.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new()
    }
}

/// A snapshot of the service's counters (monitoring only; see the
/// module-level determinism argument for why none of this appears in job
/// responses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs executed to completion (ok or error response).
    pub jobs_executed: usize,
    /// Jobs rejected at admission with [`QueueFull`].
    pub queue_rejections: usize,
    /// Artifact-cache lookup counters.
    pub cache: CacheStats,
    /// Layers induced across all solves (denominator of the warm rate).
    pub layers_total: usize,
    /// Layers rehydrated from cache snapshots instead of evaluated.
    pub layers_restored: usize,
}

impl ServiceStats {
    /// Fraction of layers served warm, in `[0, 1]`.
    #[must_use]
    pub fn warm_layer_rate(&self) -> f64 {
        if self.layers_total == 0 {
            0.0
        } else {
            self.layers_restored as f64 / self.layers_total as f64
        }
    }
}

/// The batch-solving service.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    cache: ArtifactCache,
    jobs_executed: AtomicUsize,
    queue_rejections: AtomicUsize,
    layers_total: AtomicUsize,
    layers_restored: AtomicUsize,
}

enum BuiltContext {
    Plain(Box<FnContext>),
    Faulty(Box<FaultyContext<FnContext>>),
}

impl BuiltContext {
    fn as_dyn(&self) -> &dyn Context {
        match self {
            BuiltContext::Plain(c) => c.as_ref(),
            BuiltContext::Faulty(c) => c.as_ref(),
        }
    }
}

impl Service {
    /// Creates a service with the given configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let cache = ArtifactCache::new(config.cache_enabled, config.cache_sessions);
        Service {
            config,
            cache,
            jobs_executed: AtomicUsize::new(0),
            queue_rejections: AtomicUsize::new(0),
            layers_total: AtomicUsize::new(0),
            layers_restored: AtomicUsize::new(0),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            layers_total: self.layers_total.load(Ordering::Relaxed),
            layers_restored: self.layers_restored.load(Ordering::Relaxed),
        }
    }

    /// Records an admission rejection (callers produce the response via
    /// [`Service::reject_response`]).
    pub fn note_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Executes one job synchronously, returning its response object.
    /// Never panics and never returns a non-response: every failure mode
    /// is an `ok: false` object carrying the job id.
    #[must_use]
    pub fn execute(&self, job: &JobRequest) -> Json {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        let Some(entry) = find(&job.scenario) else {
            return error_response(
                Some(job.id),
                &RequestError::UnknownScenario(job.scenario.clone()),
            );
        };
        let horizon = job.horizon.unwrap_or(entry.default_horizon);
        match job.kind {
            JobKind::Solve => self.run_solve(job, entry, horizon),
            JobKind::Check => self.run_check(job, entry, horizon),
            JobKind::Enumerate => self.run_enumerate(job, entry, horizon),
            JobKind::FaultLattice => self.run_fault_lattice(job, entry, horizon),
        }
    }

    /// Runs a batch through the worker pool with *blocking* admission:
    /// every job is eventually executed, and responses come back in
    /// submission order. Worker count and cache state cannot change the
    /// output (see the module-level determinism argument).
    #[must_use]
    pub fn run_batch(&self, jobs: &[JobRequest]) -> Vec<Json> {
        self.run_pool(jobs.iter().cloned().map(Ok).collect())
    }

    /// Runs a batch with *strict* admission: the whole batch is offered
    /// to the queue before any worker starts, so exactly the first
    /// `queue_capacity` jobs are admitted and the rest are rejected with
    /// [`QueueFull`] — deterministically, independent of scheduling.
    /// This is the mode the backpressure tests pin down; `kbpd` instead
    /// admits continuously and sheds only under a genuinely full queue.
    #[must_use]
    pub fn run_batch_strict(&self, jobs: &[JobRequest]) -> Vec<Json> {
        let queue: JobQueue<JobRequest> =
            JobQueue::new(self.config.queue_capacity, self.config.retry_after_ms);
        let mut slots: Vec<Result<JobRequest, (u64, QueueFull)>> = Vec::with_capacity(jobs.len());
        for job in jobs {
            match queue.try_submit(job.clone()) {
                Ok(()) => slots.push(Ok(job.clone())),
                Err((job, full)) => {
                    self.note_rejection();
                    slots.push(Err((job.id, full)));
                }
            }
        }
        // Admission is settled; the gate queue itself is discarded — the
        // pool below drains the admitted slots.
        queue.close();
        self.run_pool(slots)
    }

    /// The shared pool driver: executes the `Ok` slots on
    /// `config.workers` scoped threads, renders the `Err` slots as
    /// rejections, and returns responses in slot order.
    fn run_pool(&self, slots: Vec<Result<JobRequest, (u64, QueueFull)>>) -> Vec<Json> {
        let queue: JobQueue<(usize, JobRequest)> =
            JobQueue::new(slots.len().max(1), self.config.retry_after_ms);
        let results: Vec<std::sync::Mutex<Option<Json>>> =
            slots.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| {
                    while let Some((index, job)) = queue.pop() {
                        let response = self.execute(&job);
                        if let Some(slot) = results.get(index) {
                            if let Ok(mut slot) = slot.lock() {
                                *slot = Some(response);
                            }
                        }
                    }
                });
            }
            for (index, slot) in slots.iter().enumerate() {
                match slot {
                    Ok(job) => {
                        // Capacity equals batch length: this never blocks.
                        queue.submit((index, job.clone()));
                    }
                    Err((id, full)) => {
                        if let Ok(mut out) = results[index].lock() {
                            *out = Some(reject_response(Some(*id), *full));
                        }
                    }
                }
            }
            queue.close();
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().ok().flatten().unwrap_or(Json::Null))
            .collect()
    }

    fn resolve_context(
        &self,
        job: &JobRequest,
        entry: &ScenarioEntry,
    ) -> Result<(BuiltContext, Kbp, u64), RequestError> {
        match job.fault.as_deref() {
            None => {
                let (ctx, kbp) = entry.build();
                Ok((
                    BuiltContext::Plain(Box::new(ctx)),
                    kbp,
                    entry.fingerprint(None),
                ))
            }
            Some(rung) => {
                if entry.lattice.is_none() {
                    return Err(RequestError::Unsupported(
                        "scenario has no fault lattice; omit 'fault'",
                    ));
                }
                let schedule = entry
                    .fault_schedule(rung, job.fault_seed)
                    .ok_or_else(|| RequestError::UnknownFault(rung.to_string()))?;
                let (ctx, kbp) = entry.build_faulty(schedule);
                Ok((
                    BuiltContext::Faulty(Box::new(ctx)),
                    kbp,
                    entry.fingerprint(Some((rung, job.fault_seed))),
                ))
            }
        }
    }

    /// Solves through the artifact cache when a session exists for the
    /// fingerprint; cold otherwise. Also feeds the warm-rate counters.
    fn solve_outcome(
        &self,
        job: &JobRequest,
        entry: &ScenarioEntry,
        horizon: usize,
        ctx: &dyn Context,
        kbp: &Kbp,
        fingerprint: u64,
    ) -> Result<SolveOutcome, SolveError> {
        let solver = SyncSolver::new(ctx, kbp)
            .horizon(horizon)
            .recall(entry.recall)
            .budget(job.budget);
        let outcome = match self.cache.session(fingerprint) {
            Some(session) => match session.lock() {
                Ok(mut session) => solver.solve_budgeted_with(&mut session),
                // A worker panicked mid-solve and poisoned this session:
                // fall back to a cold solve (identical answer, colder).
                Err(_) => solver.solve_budgeted(),
            },
            None => solver.solve_budgeted(),
        }?;
        let stats = match &outcome {
            SolveOutcome::Complete(s) => s.stats(),
            SolveOutcome::Partial(p) => p.stats(),
        };
        self.layers_total.fetch_add(stats.layers, Ordering::Relaxed);
        self.layers_restored
            .fetch_add(stats.layers_restored, Ordering::Relaxed);
        Ok(outcome)
    }

    fn run_solve(&self, job: &JobRequest, entry: &ScenarioEntry, horizon: usize) -> Json {
        if !entry.solvable {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported(
                    "scenario has future-referring guards; use kind 'enumerate'",
                ),
            );
        }
        let (ctx, kbp, fingerprint) = match self.resolve_context(job, entry) {
            Ok(parts) => parts,
            Err(e) => return error_response(Some(job.id), &e),
        };
        match self.solve_outcome(job, entry, horizon, ctx.as_dyn(), &kbp, fingerprint) {
            Ok(outcome) => {
                let mut fields = response_head(job, "solve", horizon);
                push_outcome_fields(&mut fields, &outcome);
                Json::Obj(fields)
            }
            Err(e) => solve_error_response(job.id, &e),
        }
    }

    fn run_check(&self, job: &JobRequest, entry: &ScenarioEntry, horizon: usize) -> Json {
        if !entry.solvable {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported(
                    "scenario has future-referring guards; use kind 'enumerate'",
                ),
            );
        }
        let (ctx, kbp, fingerprint) = match self.resolve_context(job, entry) {
            Ok(parts) => parts,
            Err(e) => return error_response(Some(job.id), &e),
        };
        let outcome = match self.solve_outcome(job, entry, horizon, ctx.as_dyn(), &kbp, fingerprint)
        {
            Ok(outcome) => outcome,
            Err(e) => return solve_error_response(job.id, &e),
        };
        let mut fields = response_head(job, "check", horizon);
        match outcome {
            SolveOutcome::Partial(p) => {
                // Nothing to verify yet: report the partial solve.
                fields.push(("outcome".into(), Json::Str("partial".into())));
                fields.push(("exhausted".into(), exhausted_json(&p)));
                Json::Obj(fields)
            }
            SolveOutcome::Complete(s) => {
                match check_implementation(ctx.as_dyn(), &kbp, s.protocol(), entry.recall, horizon)
                {
                    Ok(report) => {
                        fields.push(("outcome".into(), Json::Str("complete".into())));
                        fields.push((
                            "is_implementation".into(),
                            Json::Bool(report.is_implementation()),
                        ));
                        fields.push((
                            "points_checked".into(),
                            Json::U64(report.points_checked() as u64),
                        ));
                        fields.push((
                            "mismatches".into(),
                            Json::U64(report.mismatches().len() as u64),
                        ));
                        Json::Obj(fields)
                    }
                    Err(e) => solve_error_response(job.id, &e),
                }
            }
        }
    }

    fn run_enumerate(&self, job: &JobRequest, entry: &ScenarioEntry, horizon: usize) -> Json {
        let (ctx, kbp, _fingerprint) = match self.resolve_context(job, entry) {
            Ok(parts) => parts,
            Err(e) => return error_response(Some(job.id), &e),
        };
        let mut enumerator = Enumerator::new(ctx.as_dyn(), &kbp)
            .horizon(horizon)
            .recall(entry.recall);
        if let Some(n) = job.max_solutions {
            enumerator = enumerator.max_solutions(n);
        }
        if let Some(n) = job.max_branches {
            enumerator = enumerator.max_branches(n);
        }
        match enumerator.enumerate() {
            Ok(found) => {
                let mut fields = response_head(job, "enumerate", horizon);
                fields.push(("count".into(), Json::U64(found.count() as u64)));
                fields.push(("complete".into(), Json::Bool(found.is_complete())));
                fields.push((
                    "branches".into(),
                    Json::U64(found.branches_explored() as u64),
                ));
                fields.push((
                    "exhausted_resource".into(),
                    found
                        .exhausted()
                        .map_or(Json::Null, |r| Json::Str(resource_wire_name(r).into())),
                ));
                fields.push((
                    "implementations".into(),
                    Json::Arr(
                        found
                            .implementations()
                            .iter()
                            .map(|imp| protocol_json(&imp.protocol))
                            .collect(),
                    ),
                ));
                Json::Obj(fields)
            }
            Err(e) => solve_error_response(job.id, &e),
        }
    }

    fn run_fault_lattice(&self, job: &JobRequest, entry: &ScenarioEntry, horizon: usize) -> Json {
        if !entry.solvable {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported(
                    "scenario has future-referring guards; use kind 'enumerate'",
                ),
            );
        }
        let Some(lattice) = entry.fault_lattice(job.fault_seed) else {
            return error_response(
                Some(job.id),
                &RequestError::Unsupported("scenario has no fault lattice"),
            );
        };
        let mut rows = Vec::with_capacity(lattice.len());
        for (rung, schedule) in lattice {
            let (ctx, kbp) = entry.build_faulty(schedule.clone());
            let agents = ctx.agent_count();
            let signature = schedule.signature(horizon, agents);
            let fingerprint = entry.fingerprint(Some((rung, job.fault_seed)));
            match self.solve_outcome(job, entry, horizon, &ctx, &kbp, fingerprint) {
                Ok(outcome) => {
                    let mut row = vec![
                        ("fault".to_string(), Json::Str(rung.into())),
                        ("signature".to_string(), Json::U64(signature)),
                    ];
                    push_outcome_fields(&mut row, &outcome);
                    // Lattice rows summarize: drop the (large) protocol.
                    row.retain(|(k, _)| k != "protocol");
                    rows.push(Json::Obj(row));
                }
                Err(e) => return solve_error_response(job.id, &e),
            }
        }
        let mut fields = response_head(job, "fault_lattice", horizon);
        fields.push(("fault_seed".into(), Json::U64(job.fault_seed)));
        fields.push(("rows".into(), Json::Arr(rows)));
        Json::Obj(fields)
    }

    /// The `{"op":"stats"}` response. Live counters — monitoring only,
    /// never compared bit-for-bit.
    #[must_use]
    pub fn stats_response(&self, id: Option<u64>) -> Json {
        let stats = self.stats();
        obj(vec![
            ("id", id.map_or(Json::Null, Json::U64)),
            ("ok", Json::Bool(true)),
            ("kind", Json::Str("stats".into())),
            ("workers", Json::U64(self.config.workers as u64)),
            (
                "queue_capacity",
                Json::U64(self.config.queue_capacity as u64),
            ),
            ("jobs_executed", Json::U64(stats.jobs_executed as u64)),
            ("queue_rejections", Json::U64(stats.queue_rejections as u64)),
            (
                "cache",
                obj(vec![
                    ("enabled", Json::Bool(self.cache.is_enabled())),
                    ("hits", Json::U64(stats.cache.hits as u64)),
                    ("misses", Json::U64(stats.cache.misses as u64)),
                    ("sessions", Json::U64(stats.cache.sessions as u64)),
                    ("evictions", Json::U64(stats.cache.evictions as u64)),
                    ("capacity", Json::U64(stats.cache.capacity as u64)),
                ]),
            ),
            ("layers_total", Json::U64(stats.layers_total as u64)),
            ("layers_restored", Json::U64(stats.layers_restored as u64)),
        ])
    }
}

fn response_head(job: &JobRequest, kind: &str, horizon: usize) -> Vec<(String, Json)> {
    vec![
        ("id".to_string(), Json::U64(job.id)),
        ("ok".to_string(), Json::Bool(true)),
        ("kind".to_string(), Json::Str(kind.into())),
        ("scenario".to_string(), Json::Str(job.scenario.clone())),
        (
            "fault".to_string(),
            job.fault
                .as_deref()
                .map_or(Json::Null, |f| Json::Str(f.into())),
        ),
        ("horizon".to_string(), Json::U64(horizon as u64)),
    ]
}

/// Appends `outcome`, `stabilized`/`exhausted`, `stats` and `protocol`
/// fields for a solve outcome. Only scheduling-independent stats go on
/// the wire — see the module-level determinism argument.
fn push_outcome_fields(fields: &mut Vec<(String, Json)>, outcome: &SolveOutcome) {
    match outcome {
        SolveOutcome::Complete(s) => {
            fields.push(("outcome".into(), Json::Str("complete".into())));
            fields.push((
                "stabilized".into(),
                s.stabilized().map_or(Json::Null, |t| Json::U64(t as u64)),
            ));
            fields.push(("stats".into(), stats_json(&s.stats())));
            fields.push(("protocol".into(), protocol_json(s.protocol())));
        }
        SolveOutcome::Partial(p) => {
            fields.push(("outcome".into(), Json::Str("partial".into())));
            fields.push(("exhausted".into(), exhausted_json(p)));
            fields.push(("stats".into(), stats_json(&p.stats())));
            fields.push(("protocol".into(), protocol_json(p.protocol())));
        }
    }
}

fn exhausted_json(p: &PartialSolution) -> Json {
    let e = p.exhausted();
    obj(vec![
        ("resource", Json::Str(resource_wire_name(e.resource).into())),
        ("at_layer", Json::U64(e.at_layer as u64)),
    ])
}

fn stats_json(stats: &SolveStats) -> Json {
    obj(vec![
        ("layers", Json::U64(stats.layers as u64)),
        ("points", Json::U64(stats.points as u64)),
        ("protocol_entries", Json::U64(stats.protocol_entries as u64)),
        (
            "guard_evaluations",
            Json::U64(stats.guard_evaluations as u64),
        ),
    ])
}

fn resource_wire_name(r: Resource) -> &'static str {
    match r {
        Resource::Deadline => "deadline",
        Resource::LayerPoints => "layer_points",
        Resource::GuardEvaluations => "guard_evaluations",
        Resource::Memory => "memory",
        Resource::Nodes => "nodes",
        Resource::Branches => "branches",
        Resource::Solutions => "solutions",
    }
}

/// Serializes a protocol as `[[agent, [obs...], [action...]], ...]`,
/// sorted by `(agent, history)` — the backing map iterates in arbitrary
/// order, and wire bytes must not.
fn protocol_json(protocol: &MapProtocol) -> Json {
    let mut entries: Vec<(usize, Vec<u64>, Vec<u32>)> = protocol
        .iter()
        .map(|(agent, history, acts)| {
            (
                agent.index(),
                history.iter().map(|o| o.0).collect(),
                acts.iter().map(|a| a.0).collect(),
            )
        })
        .collect();
    entries.sort();
    Json::Arr(
        entries
            .into_iter()
            .map(|(agent, history, acts)| {
                Json::Arr(vec![
                    Json::U64(agent as u64),
                    Json::Arr(history.into_iter().map(Json::U64).collect()),
                    Json::Arr(acts.into_iter().map(|a| Json::U64(u64::from(a))).collect()),
                ])
            })
            .collect(),
    )
}

/// An `ok: false` response for a request-level error.
#[must_use]
pub fn error_response(id: Option<u64>, error: &RequestError) -> Json {
    obj(vec![
        ("id", id.map_or(Json::Null, Json::U64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(error.wire_kind().into())),
                ("message", Json::Str(error.to_string())),
            ]),
        ),
    ])
}

/// An `ok: false` response for a [`QueueFull`] rejection, carrying the
/// typed retry-after hint.
#[must_use]
pub fn reject_response(id: Option<u64>, full: QueueFull) -> Json {
    obj(vec![
        ("id", id.map_or(Json::Null, Json::U64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str("queue_full".into())),
                ("message", Json::Str(full.to_string())),
                ("capacity", Json::U64(full.capacity as u64)),
                ("retry_after_ms", Json::U64(full.retry_after_ms)),
            ]),
        ),
    ])
}

fn solve_error_response(id: u64, error: &SolveError) -> Json {
    obj(vec![
        ("id", Json::U64(id)),
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str("solve_error".into())),
                ("message", Json::Str(error.to_string())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::parse_request;
    use crate::job::Request;

    fn job(line: &str) -> JobRequest {
        match parse_request(line).unwrap() {
            Request::Job(job) => job,
            Request::Stats { .. } => panic!("expected a job"),
        }
    }

    #[test]
    fn executes_a_solve_job() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let response = service.execute(&job(
            r#"{"id":1,"kind":"solve","scenario":"bit_transmission"}"#,
        ));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("outcome"), Some(&Json::Str("complete".into())));
        assert!(matches!(response.get("protocol"), Some(Json::Arr(v)) if !v.is_empty()));
        assert_eq!(service.stats().jobs_executed, 1);
    }

    #[test]
    fn unknown_scenario_is_a_typed_response() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let response = service.execute(&job(r#"{"id":2,"kind":"solve","scenario":"nope"}"#));
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        let error = response.get("error").unwrap();
        assert_eq!(
            error.get("kind"),
            Some(&Json::Str("unknown_scenario".into()))
        );
    }

    #[test]
    fn future_program_solve_is_unsupported_but_enumerate_works() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let solve = service.execute(&job(
            r#"{"id":3,"kind":"solve","scenario":"zoo_self_fulfilling"}"#,
        ));
        assert_eq!(solve.get("ok"), Some(&Json::Bool(false)));
        let enumerate = service.execute(&job(
            r#"{"id":4,"kind":"enumerate","scenario":"zoo_self_fulfilling"}"#,
        ));
        assert_eq!(enumerate.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(enumerate.get("count"), Some(&Json::U64(2)));
        assert_eq!(enumerate.get("complete"), Some(&Json::Bool(true)));
    }

    #[test]
    fn check_job_confirms_the_fixed_point() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let response = service.execute(&job(
            r#"{"id":5,"kind":"check","scenario":"muddy_children_3"}"#,
        ));
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("is_implementation"), Some(&Json::Bool(true)));
        assert_eq!(response.get("mismatches"), Some(&Json::U64(0)));
    }

    #[test]
    fn fault_lattice_has_four_rows_and_stable_signatures() {
        let service = Service::new(ServiceConfig::new().workers(1));
        let line =
            r#"{"id":6,"kind":"fault_lattice","scenario":"bit_transmission","fault_seed":7}"#;
        let a = service.execute(&job(line));
        let b = service.execute(&job(line));
        assert_eq!(a.to_line(), b.to_line(), "lattice must be replayable");
        let Some(Json::Arr(rows)) = a.get("rows") else {
            panic!("rows missing: {}", a.to_line());
        };
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].get("fault"), Some(&Json::Str("none".into())));
        assert!(rows.iter().all(|r| r.get("signature").is_some()));
    }

    #[test]
    fn batch_responses_come_back_in_submission_order() {
        let service = Service::new(ServiceConfig::new().workers(4));
        let jobs: Vec<JobRequest> = (0..6)
            .map(|i| {
                job(&format!(
                    r#"{{"id":{i},"kind":"solve","scenario":"zoo_plain"}}"#
                ))
            })
            .collect();
        let responses = service.run_batch(&jobs);
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(response.get("id"), Some(&Json::U64(i as u64)));
        }
    }

    #[test]
    fn strict_batch_rejects_deterministically_beyond_capacity() {
        let service = Service::new(ServiceConfig::new().workers(2).queue_capacity(2));
        let jobs: Vec<JobRequest> = (0..5)
            .map(|i| {
                job(&format!(
                    r#"{{"id":{i},"kind":"solve","scenario":"zoo_plain"}}"#
                ))
            })
            .collect();
        let responses = service.run_batch_strict(&jobs);
        assert_eq!(responses.len(), 5);
        for accepted in &responses[..2] {
            assert_eq!(accepted.get("ok"), Some(&Json::Bool(true)));
        }
        for rejected in &responses[2..] {
            assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
            let error = rejected.get("error").unwrap();
            assert_eq!(error.get("kind"), Some(&Json::Str("queue_full".into())));
            assert_eq!(error.get("capacity"), Some(&Json::U64(2)));
            assert!(error.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
        }
        assert_eq!(service.stats().queue_rejections, 3);
    }

    #[test]
    fn config_from_env_rejects_garbage() {
        // Environment mutation: run the cases in one test to avoid
        // parallel-test interference on the same variables.
        let run = |pairs: &[(&str, &str)]| {
            for (k, v) in pairs {
                std::env::set_var(k, v);
            }
            let result = ServiceConfig::from_env();
            for (k, _) in pairs {
                std::env::remove_var(k);
            }
            result
        };
        assert!(matches!(
            run(&[(WORKERS_ENV, "zero?")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(QUEUE_ENV, "0")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(CACHE_ENV, "maybe")]),
            Err(ConfigError::Flag { .. })
        ));
        assert!(matches!(
            run(&[(CACHE_SESSIONS_ENV, "lots")]),
            Err(ConfigError::Threads(_))
        ));
        assert!(matches!(
            run(&[(CACHE_SESSIONS_ENV, "0")]),
            Err(ConfigError::Threads(_))
        ));
        let ok = run(&[
            (WORKERS_ENV, "3"),
            (QUEUE_ENV, "17"),
            (CACHE_ENV, "off"),
            (CACHE_SESSIONS_ENV, "5"),
        ])
        .unwrap();
        assert_eq!(ok.workers, 3);
        assert_eq!(ok.queue_capacity, 17);
        assert!(!ok.cache_enabled);
        assert_eq!(ok.cache_sessions, 5);
    }
}
