//! The event-driven connection plane behind `kbpd --listen`.
//!
//! PR 6's front end spent two threads per connection (a blocking reader
//! and an ordering writer), so `KBP_SERVICE_MAX_CONNECTIONS` was really
//! a thread budget and a stalled client pinned its writer forever. This
//! module replaces that pair with a single readiness loop over
//! nonblocking sockets — `std` only, no `libc`, no poll registration:
//! the loop services every connection each tick (~1ms), sleeping on a
//! condvar that doubles as the worker-completion wakeup token. Idle
//! connections now cost one map entry, not two stacks.
//!
//! # Per-connection state machine
//!
//! ```text
//!           read bytes           admit/answer            completions
//! [open] ──> FrameDecoder ──> index per line ──> queue ──> reorder map
//!                                                              │
//!                              outbuf <── pour contiguous ─────┘
//!                                │ nonblocking flush
//!                                ▼
//!          close: graceful (EOF + drained) | forced (protection)
//! ```
//!
//! Every non-empty line consumes one request index; responses pour from
//! the reorder map into `outbuf` strictly in index order, so the wire
//! order matches PR 6 exactly. A connection dies one of three ways, all
//! observable:
//!
//! * **graceful** — read side closed (or daemon draining) and nothing
//!   left in flight or buffered;
//! * **forced** — a protection policy tripped ([`DisconnectKind`]:
//!   idle timeout, read deadline, write budget, write stall), counted in
//!   metrics and announced with a best-effort typed notice;
//! * **dead** — the peer vanished mid-write; responses have nowhere to
//!   go.
//!
//! # Drain argument
//!
//! The loop keeps a global in-flight count: incremented at admission,
//! decremented when a completion is drained from the [`PlaneShared`]
//! queue — *whether or not* the owning connection still exists. A
//! completion for a force-closed connection bumps `responses_dropped`
//! instead of a reorder map. Shutdown flips the plane into draining
//! mode (no accepts, no new admissions, inbound bytes read and
//! discarded so closing cannot RST away buffered responses) and the
//! loop exits exactly when no connections and no in-flight jobs remain:
//! every admitted job was answered or counted dropped, never lost
//! silently.

use crate::framing::{FrameDecoder, LineOutcome};
use crate::job::{id_hint, parse_request, Request};
use crate::queue::JobQueue;
use crate::server::{QueuedJob, ResponseSink};
use crate::service::{
    disconnect_response, error_response, frame_error_response, quota_response, reject_response,
    too_many_connections_response, DisconnectKind, PlaneSnapshot, Service,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tick granularity of the readiness loop. Protection timeouts are
/// measured in hundreds of milliseconds and up, so a millisecond of
/// slack is noise; completions additionally cut the sleep short via the
/// condvar.
const TICK: Duration = Duration::from_millis(1);

/// Per-connection, per-tick read allowance (chunks of `READ_CHUNK`).
/// Bounds how long one flooding client can monopolize a tick.
const READ_BURST: usize = 8;

/// Read buffer size per chunk.
const READ_CHUNK: usize = 8 * 1024;

/// Write-stall bound applied *during drain* when the configured bound
/// is disabled: a client that never reads must not wedge shutdown.
const DRAIN_STALL_MS: u64 = 30_000;

/// A finished job on its way back to the plane: which connection asked,
/// at which request index, and the rendered response line.
pub(crate) struct Completion {
    /// Owning connection id.
    pub(crate) conn: u64,
    /// Per-connection request index (reorder key).
    pub(crate) index: usize,
    /// The rendered response line (no trailing newline).
    pub(crate) line: String,
}

/// The channel between the worker pool and the readiness loop: a locked
/// completion queue plus a condvar the loop sleeps on. `deliver` is the
/// wakeup token — a completed job interrupts the tick sleep instead of
/// waiting out the full millisecond.
pub(crate) struct PlaneShared {
    completions: Mutex<VecDeque<Completion>>,
    wake: Condvar,
}

impl PlaneShared {
    pub(crate) fn new() -> Self {
        PlaneShared {
            completions: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
        }
    }

    /// Called by workers: queue a finished response and wake the loop.
    pub(crate) fn deliver(&self, completion: Completion) {
        if let Ok(mut queue) = self.completions.lock() {
            queue.push_back(completion);
        }
        self.wake.notify_all();
    }

    /// Takes everything delivered since the last drain.
    fn drain(&self) -> VecDeque<Completion> {
        match self.completions.lock() {
            Ok(mut queue) => std::mem::take(&mut *queue),
            Err(_) => VecDeque::new(),
        }
    }

    /// Sleeps until `timeout` or the next delivery, whichever is first.
    fn wait(&self, timeout: Duration) {
        let Ok(queue) = self.completions.lock() else {
            return;
        };
        if queue.is_empty() {
            let _ = self.wake.wait_timeout(queue, timeout);
        }
    }
}

/// Pending (admitted, unanswered) request counts per client identity —
/// the tenant-scoped admission quota. Workers release on completion, so
/// the table is shared and locked; entries vanish at zero to keep the
/// map (and the metrics snapshot) bounded by *active* clients.
pub(crate) struct PendingTable {
    inner: Mutex<HashMap<String, usize>>,
}

impl PendingTable {
    pub(crate) fn new() -> Self {
        PendingTable {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one quota slot for `client`, or reports how many it
    /// already holds. (A poisoned lock rejects: failing closed keeps
    /// the quota meaningful, and poisoning cannot happen short of a
    /// worker panicking mid-release.)
    pub(crate) fn try_acquire(&self, client: &str, quota: usize) -> Result<(), usize> {
        let Ok(mut map) = self.inner.lock() else {
            return Err(quota);
        };
        let held = map.get(client).copied().unwrap_or(0);
        if held >= quota {
            Err(held)
        } else {
            map.insert(client.to_string(), held + 1);
            Ok(())
        }
    }

    /// Returns one slot.
    pub(crate) fn release(&self, client: &str) {
        if let Ok(mut map) = self.inner.lock() {
            if let Some(held) = map.get_mut(client) {
                *held = held.saturating_sub(1);
                if *held == 0 {
                    map.remove(client);
                }
            }
        }
    }

    /// The current per-client pending counts, sorted by client.
    pub(crate) fn snapshot(&self) -> Vec<(String, usize)> {
        let mut entries: Vec<(String, usize)> = match self.inner.lock() {
            Ok(map) => map.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            Err(_) => Vec::new(),
        };
        entries.sort();
        entries
    }
}

/// Forced-disconnect counters plus the drop count — owned by the loop,
/// copied into each tick's context for metrics rendering.
#[derive(Debug, Clone, Copy, Default)]
struct PlaneCounters {
    idle_timeout: usize,
    read_deadline: usize,
    write_budget: usize,
    write_stall: usize,
    responses_dropped: usize,
}

impl PlaneCounters {
    fn count(&mut self, kind: DisconnectKind) {
        match kind {
            DisconnectKind::IdleTimeout => self.idle_timeout += 1,
            DisconnectKind::ReadDeadline => self.read_deadline += 1,
            DisconnectKind::WriteBudget => self.write_budget += 1,
            DisconnectKind::WriteStall => self.write_stall += 1,
        }
    }
}

/// One live connection's state (see the module-level state machine).
struct Conn {
    stream: TcpStream,
    /// Fallback client identity: the peer's `ip:port` (the full pair —
    /// collapsing to the IP would merge every local test client into
    /// one tenant).
    peer: String,
    decoder: FrameDecoder,
    /// Next request index to assign (every non-empty line takes one).
    next_index: usize,
    /// Completed responses waiting for their turn, keyed by index.
    reorder: BTreeMap<usize, String>,
    /// Bytes held in `reorder` — kept incrementally so the write budget
    /// can bound the *whole* owed backlog, not just the flushed part
    /// (inline answers parked behind one slow job would otherwise grow
    /// without bound).
    reorder_bytes: usize,
    /// Next index to pour into `outbuf`.
    next_write: usize,
    /// Bytes buffered toward the socket (bounded by the write budget).
    outbuf: VecDeque<u8>,
    /// Jobs admitted for this connection, not yet completed.
    inflight: usize,
    /// Last read progress (any inbound bytes).
    last_activity: Instant,
    /// Last write progress (outbuf shrank, or went empty→nonempty).
    last_write_progress: Instant,
    /// Read side has seen EOF or a transport error.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer: String, max_line: usize, now: Instant) -> Self {
        Conn {
            stream,
            peer,
            decoder: FrameDecoder::new(max_line),
            next_index: 0,
            reorder: BTreeMap::new(),
            reorder_bytes: 0,
            next_write: 0,
            outbuf: VecDeque::new(),
            inflight: 0,
            last_activity: now,
            last_write_progress: now,
            read_closed: false,
        }
    }

    /// Anything still owed to (or buffered for) this connection?
    fn has_backlog(&self) -> bool {
        self.inflight > 0 || !self.reorder.is_empty() || !self.outbuf.is_empty()
    }

    /// Total bytes owed: flushed-but-unsent plus still-reordering.
    fn buffered_bytes(&self) -> usize {
        self.outbuf.len() + self.reorder_bytes
    }

    /// Parks a finished response line at its reorder slot.
    fn park(&mut self, index: usize, line: String) {
        self.reorder_bytes += line.len();
        self.reorder.insert(index, line);
    }
}

/// How a connection left the map this tick.
enum Close {
    /// EOF (or drain) with everything delivered.
    Graceful,
    /// The peer vanished mid-write; nothing more can be delivered.
    Dead,
    /// A protection policy tripped.
    Forced(DisconnectKind),
}

/// Everything a single tick needs, borrowed once per tick. The
/// active/idle counts and counter copy are start-of-tick values used
/// for inline `metrics` answers — racy by nature, like every
/// monitoring response.
struct TickCtx<'a> {
    service: &'a Arc<Service>,
    queue: &'a Arc<JobQueue<QueuedJob>>,
    shared: &'a Arc<PlaneShared>,
    pending: &'a Arc<PendingTable>,
    quota: usize,
    idle_ms: u64,
    budget_bytes: usize,
    stall_ms: u64,
    draining: bool,
    now: Instant,
    inflight: &'a mut usize,
    counters: PlaneCounters,
    active: usize,
    idle: usize,
}

impl TickCtx<'_> {
    fn snapshot(&self) -> PlaneSnapshot {
        PlaneSnapshot {
            connections_active: self.active,
            connections_idle: self.idle,
            disconnects_idle_timeout: self.counters.idle_timeout,
            disconnects_read_deadline: self.counters.read_deadline,
            disconnects_write_budget: self.counters.write_budget,
            disconnects_write_stall: self.counters.write_stall,
            responses_dropped: self.counters.responses_dropped,
            clients: self.pending.snapshot(),
        }
    }
}

/// Runs the readiness loop until `stop` is raised *and* the drain
/// argument (module docs) completes. Called inline on the server
/// thread — the plane *is* that thread; only the workers are extra.
///
/// # Errors
///
/// Only a listener that cannot be switched to nonblocking mode;
/// per-connection and per-line failures are typed responses or counted
/// closes, never a dead server.
pub(crate) fn run_plane(
    service: &Arc<Service>,
    queue: &Arc<JobQueue<QueuedJob>>,
    listener: &TcpListener,
    shared: &Arc<PlaneShared>,
    pending: &Arc<PendingTable>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let config = service.config().clone();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 0;
    let mut counters = PlaneCounters::default();
    let mut inflight: usize = 0;
    let mut draining = false;

    loop {
        let now = Instant::now();
        if !draining && stop.load(Ordering::SeqCst) {
            draining = true;
        }

        // Accept burst: everything the backlog holds, up to the cap.
        // The cap is an admission policy, not a thread ceiling — excess
        // connections get a typed one-line refusal and a close.
        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        if conns.len() >= config.max_connections {
                            refuse(stream, config.max_connections);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        conns.insert(
                            next_conn,
                            Conn::new(stream, peer.to_string(), config.max_line, now),
                        );
                        next_conn += 1;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break, // WouldBlock or transient: next tick
                }
            }
        }

        // Drain completions. The global in-flight count drops here even
        // when the owning connection is gone — that response is counted
        // dropped, and the drain proof stays an exact ledger.
        for completion in shared.drain() {
            inflight = inflight.saturating_sub(1);
            match conns.get_mut(&completion.conn) {
                Some(conn) => {
                    conn.inflight = conn.inflight.saturating_sub(1);
                    conn.park(completion.index, completion.line);
                }
                None => counters.responses_dropped += 1,
            }
        }

        // Start-of-tick occupancy for inline metrics answers.
        let active = conns
            .values()
            .filter(|c| c.has_backlog() || c.decoder.mid_line())
            .count();
        let mut ctx = TickCtx {
            service,
            queue,
            shared,
            pending,
            quota: config.client_pending,
            idle_ms: config.idle_timeout_ms,
            budget_bytes: config.write_budget_bytes,
            stall_ms: config.write_stall_ms,
            draining,
            now,
            inflight: &mut inflight,
            counters,
            active,
            idle: conns.len() - active,
        };

        // Step every connection; collect the ones that closed.
        let mut closed: Vec<(u64, Close)> = Vec::new();
        for (&id, conn) in &mut conns {
            if let Some(close) = step_conn(id, conn, &mut ctx) {
                closed.push((id, close));
            }
        }
        for (id, close) in closed {
            if let Some(conn) = conns.remove(&id) {
                if let Close::Forced(kind) = close {
                    counters.count(kind);
                    farewell(&conn, kind, &config);
                }
            }
        }

        if draining && conns.is_empty() && inflight == 0 {
            return Ok(());
        }
        shared.wait(TICK);
    }
}

/// A typed one-line refusal for a connection beyond the cap. The socket
/// is fresh and its buffer empty, so a short blocking write is safe.
fn refuse(mut stream: TcpStream, limit: usize) {
    let line = too_many_connections_response(limit).to_line();
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

/// Best-effort typed notice before a forced close ("where possible": a
/// client that stopped reading may never see it, and that is fine —
/// the close is also counted in metrics).
fn farewell(conn: &Conn, kind: DisconnectKind, config: &crate::service::ServiceConfig) {
    let message = match kind {
        DisconnectKind::IdleTimeout => {
            format!("idle for over {}ms; closing", config.idle_timeout_ms)
        }
        DisconnectKind::ReadDeadline => format!(
            "request line unfinished for over {}ms; closing",
            config.idle_timeout_ms
        ),
        DisconnectKind::WriteBudget => format!(
            "over {} bytes of unread responses; closing",
            config.write_budget_bytes
        ),
        DisconnectKind::WriteStall => format!(
            "no read progress for over {}ms; closing",
            config.write_stall_ms
        ),
    };
    let line = disconnect_response(kind, &message).to_line();
    let mut stream = &conn.stream;
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// One tick of one connection: read, decode, admit/answer, pour, flush,
/// enforce. Returns how the connection closed, if it did.
fn step_conn(id: u64, conn: &mut Conn, ctx: &mut TickCtx<'_>) -> Option<Close> {
    // Read burst. While draining, inbound bytes are read and *discarded*
    // (no new admissions) — leaving them unread would make the eventual
    // close send RST, destroying the very responses the drain protects.
    let mut buf = [0u8; READ_CHUNK];
    let mut burst = READ_BURST;
    while !conn.read_closed && burst > 0 {
        burst -= 1;
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                if !ctx.draining {
                    if let Some(outcome) = conn.decoder.finish() {
                        process_outcome(id, conn, outcome, ctx);
                    }
                }
            }
            Ok(n) => {
                conn.last_activity = ctx.now;
                if ctx.draining {
                    continue;
                }
                conn.decoder.feed(&buf[..n]);
                while let Some(outcome) = conn.decoder.pop() {
                    process_outcome(id, conn, outcome, ctx);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => burst += 1,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            // A transport error ends reading like EOF, but drops any
            // partial line (matching the pull reader's Err semantics).
            Err(_) => conn.read_closed = true,
        }
    }

    // Pour contiguous responses from the reorder map into the outbuf.
    while let Some(line) = conn.reorder.remove(&conn.next_write) {
        conn.reorder_bytes = conn.reorder_bytes.saturating_sub(line.len());
        if conn.outbuf.is_empty() {
            conn.last_write_progress = ctx.now;
        }
        conn.outbuf.extend(line.as_bytes());
        conn.outbuf.push_back(b'\n');
        conn.next_write += 1;
    }

    // Nonblocking flush.
    while !conn.outbuf.is_empty() {
        let (front, _) = conn.outbuf.as_slices();
        match (&conn.stream).write(front) {
            Ok(0) => break,
            Ok(n) => {
                conn.outbuf.drain(..n);
                conn.last_write_progress = ctx.now;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => return Some(Close::Dead),
        }
    }

    // Protection policies, in escalating order of specificity. The
    // budget bounds everything owed to the peer — unsent outbuf bytes
    // *and* responses still parked in the reorder map — so a client
    // flooding inline requests behind one slow job cannot grow the
    // daemon's memory unboundedly.
    if ctx.budget_bytes > 0 && conn.buffered_bytes() > ctx.budget_bytes {
        return Some(Close::Forced(DisconnectKind::WriteBudget));
    }
    let stall_ms = if ctx.draining && ctx.stall_ms == 0 {
        DRAIN_STALL_MS
    } else {
        ctx.stall_ms
    };
    if stall_ms > 0
        && !conn.outbuf.is_empty()
        && ctx.now.duration_since(conn.last_write_progress).as_millis() as u64 > stall_ms
    {
        return Some(Close::Forced(DisconnectKind::WriteStall));
    }
    if !ctx.draining
        && ctx.idle_ms > 0
        && !conn.read_closed
        && !conn.has_backlog()
        && ctx.now.duration_since(conn.last_activity).as_millis() as u64 > ctx.idle_ms
    {
        // Same clock, two meanings: a quiet connection is merely idle; a
        // connection quiet *mid-line* is half-open and will never finish
        // its frame.
        return Some(Close::Forced(if conn.decoder.mid_line() {
            DisconnectKind::ReadDeadline
        } else {
            DisconnectKind::IdleTimeout
        }));
    }

    // Graceful close: nothing more will arrive (EOF or drain) and
    // nothing is left to deliver.
    if (conn.read_closed || ctx.draining) && !conn.has_backlog() {
        return Some(Close::Graceful);
    }
    None
}

/// Handles one framed line: admit a job, answer a monitoring op inline,
/// or produce a typed error — mirroring the stdin driver's semantics
/// (empty lines consume no index; every other line consumes exactly
/// one).
fn process_outcome(id: u64, conn: &mut Conn, outcome: LineOutcome, ctx: &mut TickCtx<'_>) {
    let response = match outcome {
        LineOutcome::Eof => return,
        LineOutcome::Malformed(frame) => frame_error_response(&frame),
        LineOutcome::Line(line) => {
            if line.trim().is_empty() {
                return;
            }
            match parse_request(&line) {
                Ok(Request::Job(job)) => {
                    let client = job.client.clone().unwrap_or_else(|| conn.peer.clone());
                    match ctx.pending.try_acquire(&client, ctx.quota) {
                        Err(held) => {
                            ctx.service.note_quota_rejection();
                            quota_response(Some(job.id), held, ctx.quota)
                        }
                        Ok(()) => {
                            let queued = QueuedJob {
                                job,
                                index: conn.next_index,
                                sink: ResponseSink::Plane {
                                    shared: Arc::clone(ctx.shared),
                                    conn: id,
                                },
                                client: client.clone(),
                                pending: Arc::clone(ctx.pending),
                            };
                            match ctx.queue.try_submit(queued) {
                                Ok(()) => {
                                    conn.inflight += 1;
                                    *ctx.inflight += 1;
                                    conn.next_index += 1;
                                    return;
                                }
                                Err((rejected, full)) => {
                                    ctx.pending.release(&client);
                                    ctx.service.note_rejection();
                                    reject_response(Some(rejected.job.id), full)
                                }
                            }
                        }
                    }
                }
                Ok(Request::Stats { id }) => ctx.service.stats_response(id),
                Ok(Request::Health { id }) => ctx.service.health_response(id),
                Ok(Request::Metrics { id }) => ctx.service.metrics_response_with_plane(
                    id,
                    ctx.queue.len(),
                    Some(&ctx.snapshot()),
                ),
                Ok(Request::Define(req)) => ctx.service.define_response(&req, &conn.peer),
                Err(e) => error_response(id_hint(&line), &e),
            }
        }
    };
    let index = conn.next_index;
    conn.park(index, response.to_line());
    conn.next_index += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_table_scopes_quotas_per_client() {
        let table = PendingTable::new();
        assert!(table.try_acquire("a", 2).is_ok());
        assert!(table.try_acquire("a", 2).is_ok());
        assert_eq!(table.try_acquire("a", 2), Err(2), "a is at quota");
        assert!(table.try_acquire("b", 2).is_ok(), "b has its own quota");
        table.release("a");
        assert!(table.try_acquire("a", 2).is_ok(), "released slot reusable");
        assert_eq!(
            table.snapshot(),
            vec![("a".to_string(), 2), ("b".to_string(), 1)],
            "snapshot is sorted and live"
        );
        table.release("b");
        assert_eq!(
            table.snapshot(),
            vec![("a".to_string(), 2)],
            "zero entries are dropped"
        );
        // Releasing an unknown client is a no-op, never a panic.
        table.release("ghost");
    }

    #[test]
    fn plane_shared_delivers_in_order_and_wakes() {
        let shared = PlaneShared::new();
        shared.deliver(Completion {
            conn: 1,
            index: 0,
            line: "first".into(),
        });
        shared.deliver(Completion {
            conn: 2,
            index: 3,
            line: "second".into(),
        });
        let drained = shared.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].line, "first");
        assert_eq!(drained[1].conn, 2);
        assert!(shared.drain().is_empty());
        // An empty wait returns promptly at the timeout (smoke check
        // that the condvar path cannot deadlock).
        let start = Instant::now();
        shared.wait(Duration::from_millis(5));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn counters_route_by_kind() {
        let mut counters = PlaneCounters::default();
        counters.count(DisconnectKind::IdleTimeout);
        counters.count(DisconnectKind::WriteBudget);
        counters.count(DisconnectKind::WriteBudget);
        counters.count(DisconnectKind::ReadDeadline);
        counters.count(DisconnectKind::WriteStall);
        assert_eq!(counters.idle_timeout, 1);
        assert_eq!(counters.read_deadline, 1);
        assert_eq!(counters.write_budget, 2);
        assert_eq!(counters.write_stall, 1);
        assert_eq!(counters.responses_dropped, 0);
    }
}
