//! `kbpd` — the knowledge-based-program batch daemon.
//!
//! Reads one JSON request per line on stdin, writes one JSON response
//! per line on stdout, *in request order* (a reorder buffer absorbs
//! worker-pool scheduling). Exits 0 at end of input; exits 2 on a
//! malformed service configuration (typed error on stderr).
//!
//! ```text
//! $ printf '%s\n' '{"id":1,"kind":"solve","scenario":"bit_transmission"}' | kbpd
//! {"id":1,"ok":true,"kind":"solve",...}
//! ```
//!
//! Configuration (all optional): `KBP_SERVICE_WORKERS` (pool size),
//! `KBP_SERVICE_QUEUE` (admission window; a full queue answers
//! `queue_full` with a retry-after hint instead of blocking),
//! `KBP_SERVICE_CACHE` (`0`/`off`/`false` disables the cross-request
//! artifact cache), `KBP_EVAL_THREADS` (per-solve evaluation sharding).

use kbp_service::{parse_request, reject_response, Request, Service, ServiceConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(arg) = args.next() {
        if arg == "--help" || arg == "-h" {
            print!("{}", USAGE);
            return;
        }
        eprintln!("kbpd: unexpected argument '{arg}' (try --help)");
        std::process::exit(2);
    }
    let config = match ServiceConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("kbpd: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let service = Service::new(config.clone());
    let queue: kbp_service::JobQueue<(usize, kbp_service::JobRequest)> =
        kbp_service::JobQueue::new(config.queue_capacity, config.retry_after_ms);
    let (result_tx, result_rx) = mpsc::channel::<(usize, String)>();

    std::thread::scope(|scope| {
        // Writer: reorder buffer keyed by line index; emits in order.
        let writer = scope.spawn(move || {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let mut pending: BTreeMap<usize, String> = BTreeMap::new();
            let mut next = 0usize;
            for (index, line) in result_rx {
                pending.insert(index, line);
                while let Some(line) = pending.remove(&next) {
                    if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                        return; // downstream closed; stop quietly
                    }
                    next += 1;
                }
            }
        });

        // Workers: drain the queue, send labelled responses.
        for _ in 0..config.workers.max(1) {
            let tx = result_tx.clone();
            scope.spawn(|| {
                let tx = tx;
                while let Some((index, job)) = queue.pop() {
                    let response = service.execute(&job).to_line();
                    if tx.send((index, response)).is_err() {
                        return;
                    }
                }
            });
        }

        // Reader (this thread): parse, admit, shed.
        let stdin = std::io::stdin();
        let mut index = 0usize;
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let out = match parse_request(&line) {
                Ok(Request::Job(job)) => match queue.try_submit((index, job)) {
                    Ok(()) => {
                        index += 1;
                        continue;
                    }
                    Err(((_, job), full)) => {
                        service.note_rejection();
                        reject_response(Some(job.id), full).to_line()
                    }
                },
                Ok(Request::Stats { id }) => service.stats_response(id).to_line(),
                Err(e) => {
                    // A parse error has no trustworthy id to echo.
                    kbp_service::error_response(None, &e).to_line()
                }
            };
            let _ = result_tx.send((index, out));
            index += 1;
        }
        queue.close();
        drop(result_tx);
        let _ = writer.join();
    });
}

const USAGE: &str = "\
kbpd - knowledge-based-program batch daemon

Reads one JSON job per line on stdin, writes one JSON response per line
on stdout in request order. Exits 0 at end of input.

Request:  {\"id\":1,\"kind\":\"solve|enumerate|check|fault_lattice\",
           \"scenario\":\"<registry name>\",\"horizon\":N,
           \"fault\":\"none|loss|crash-stop|loss+crash-stop\",\"fault_seed\":N,
           \"budget\":{\"deadline_ms\":N,\"max_layer_points\":N,
                     \"max_guard_evaluations\":N,\"max_memory_bytes\":N}}
Stats op: {\"op\":\"stats\"}

Environment:
  KBP_SERVICE_WORKERS  worker threads (default: available parallelism)
  KBP_SERVICE_QUEUE    queue capacity (default 64); overflow answers queue_full
  KBP_SERVICE_CACHE    0/off/false disables the cross-request artifact cache
  KBP_EVAL_THREADS     per-solve guard-evaluation sharding
";
