//! `kbpd` — the knowledge-based-program batch daemon.
//!
//! Two modes, one wire protocol (JSON lines, responses in per-client
//! request order):
//!
//! * **stdin/stdout** (default): reads requests on stdin, answers on
//!   stdout, exits 0 at end of input. The original batch mode.
//! * **`--listen ADDR`**: serves the same protocol over TCP to many
//!   concurrent clients, with per-client admission quotas and a
//!   connection cap. Prints one `{"kind":"listening","addr":...}` line
//!   on stdout, then serves until stdin reaches EOF (the graceful
//!   shutdown signal: stop accepting, drain every admitted job, persist
//!   the cache, exit 0).
//!
//! Exits 2 on a malformed configuration (typed error on stderr) — a
//! typo in any `KBP_*` variable refuses to start rather than silently
//! serving with a default the operator did not choose.
//!
//! ```text
//! $ printf '%s\n' '{"id":1,"kind":"solve","scenario":"bit_transmission"}' | kbpd
//! {"id":1,"ok":true,"kind":"solve",...}
//! ```

use kbp_service::{serve_stream, Server, Service, ServiceConfig};
use std::io::{Read, Write};

fn main() {
    let mut listen: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", USAGE);
                return;
            }
            "--listen" => {
                let Some(addr) = args.next() else {
                    eprintln!("kbpd: --listen needs an address (e.g. 127.0.0.1:7469)");
                    std::process::exit(2);
                };
                listen = Some(addr);
            }
            other => {
                eprintln!("kbpd: unexpected argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    let config = match ServiceConfig::from_env() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("kbpd: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let service = match Service::try_new(config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("kbpd: cache persistence unavailable: {e}");
            std::process::exit(2);
        }
    };

    match listen {
        None => serve_stream(service, std::io::stdin(), std::io::stdout()),
        Some(addr) => {
            let server = match Server::bind(addr.as_str(), service) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("kbpd: cannot listen on {addr}: {e}");
                    std::process::exit(2);
                }
            };
            // Announce the bound address (meaningful with :0) so
            // harnesses can connect without racing the bind.
            println!(
                "{{\"ok\":true,\"kind\":\"listening\",\"addr\":\"{}\"}}",
                server.local_addr()
            );
            let _ = std::io::stdout().flush();
            // Graceful shutdown signal: stdin EOF. Survives until the
            // parent closes the pipe (or the terminal hangs up).
            let handle = server.handle();
            std::thread::spawn(move || {
                let mut sink = [0u8; 4096];
                let mut stdin = std::io::stdin();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                handle.shutdown();
            });
            if let Err(e) = server.run() {
                eprintln!("kbpd: listener failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

const USAGE: &str = "\
kbpd - knowledge-based-program batch daemon

Default mode reads one JSON job per line on stdin and writes one JSON
response per line on stdout in request order; exits 0 at end of input.
With --listen ADDR the same protocol is served over TCP to many clients
(responses ordered per connection); stdin EOF shuts down gracefully,
draining every admitted job and persisting the cache.

Usage:
  kbpd                  stdin/stdout batch mode
  kbpd --listen ADDR    TCP mode (e.g. --listen 127.0.0.1:7469; :0 picks
                        a port, announced on stdout)

Request:  {\"id\":1,\"kind\":\"solve|enumerate|check|fault_lattice\",
           \"scenario\":\"<registry name>\",\"horizon\":N,
           \"fault\":\"none|loss|crash-stop|loss+crash-stop\",\"fault_seed\":N,
           \"client\":\"<tenant token>\" (optional; scopes quotas/metrics,
                     defaults to the peer address, never echoed back),
           \"budget\":{\"deadline_ms\":N,\"max_layer_points\":N,
                     \"max_guard_evaluations\":N,\"max_memory_bytes\":N}}
Monitor:  {\"op\":\"stats\"}  {\"kind\":\"health\"}  {\"kind\":\"metrics\"}
Define:   {\"op\":\"define\",\"id\":N,\"source\":\"<.kbp scenario text>\",
           \"name\":\"<wire name>\" (optional; defaults to the declared name),
           \"client\":\"<tenant token>\" (optional; definitions are owned and
                     quota'd per client)}
          registers a DSL scenario so later jobs can solve it by name;
          compile errors answer kind invalid_program with line/column
          diagnostics. Definitions persist across restarts when
          KBP_SERVICE_CACHE_DIR is set.

Environment (malformed values refuse startup with a typed error):
  KBP_SERVICE_WORKERS          worker threads (default: available parallelism)
  KBP_SERVICE_QUEUE            queue capacity (default 64); overflow answers queue_full
  KBP_SERVICE_CACHE            0/off/false disables the cross-request artifact cache
  KBP_SERVICE_CACHE_SESSIONS   retained sessions before LRU eviction (default 64)
  KBP_SERVICE_CACHE_DIR        directory for warm-restart cache persistence
  KBP_SERVICE_CLIENT_PENDING   per-client unanswered-request quota (default 16)
  KBP_SERVICE_CLIENT_DEFINITIONS  per-client defined-scenario quota
                               (default 8; 0 disables)
  KBP_SERVICE_MAX_CONNECTIONS  concurrent connections in --listen mode (default 32)
  KBP_SERVICE_MAX_LINE         request-line byte bound (default 1048576)
  KBP_SERVICE_IDLE_TIMEOUT_MS  close idle connections after this many ms
                               (default 300000; 0 disables)
  KBP_SERVICE_WRITE_BUDGET_BYTES  per-connection unflushed-response bound
                               (default 4194304; 0 disables); a slow
                               reader is closed with a write_budget notice
  KBP_SERVICE_WRITE_STALL_MS   close if a nonempty write buffer makes no
                               progress for this long (default 30000;
                               0 disables)
  KBP_EVAL_THREADS             per-solve guard-evaluation sharding
  KBP_SHARD_MIN_WORLDS         minimum layer width for intra-layer sharding
  KBP_QUOTIENT_MIN_WORLDS      minimum layer width before epistemic guards
                               are evaluated on the layer's bisimulation
                               quotient (default 4096; 0 always, MAX never)
";
