//! Socket-mode end-to-end tests of the `kbpd` binary: the golden
//! transcript over real TCP, two concurrent clients (whole-line and
//! interleaved-partial-write framing), per-client quota rejections, and
//! graceful shutdown on stdin EOF.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::Duration;

const INPUT: &str = include_str!("data/smoke_input.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

/// Every variable the daemon reads; tests must pin their environment.
const KBP_VARS: &[&str] = &[
    "KBP_SERVICE_WORKERS",
    "KBP_SERVICE_QUEUE",
    "KBP_SERVICE_CACHE",
    "KBP_SERVICE_CACHE_SESSIONS",
    "KBP_SERVICE_CACHE_DIR",
    "KBP_SERVICE_CLIENT_PENDING",
    "KBP_SERVICE_MAX_CONNECTIONS",
    "KBP_SERVICE_MAX_LINE",
    "KBP_SERVICE_IDLE_TIMEOUT_MS",
    "KBP_SERVICE_WRITE_BUDGET_BYTES",
    "KBP_SERVICE_WRITE_STALL_MS",
    "KBP_EVAL_THREADS",
    "KBP_SHARD_MIN_WORLDS",
];

struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: String,
}

fn spawn_daemon(envs: &[(&str, &str)]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_kbpd"));
    for var in KBP_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("kbpd spawns");
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines
        .next()
        .expect("an announce line")
        .expect("announce reads");
    assert!(
        announce.contains("\"kind\":\"listening\""),
        "unexpected announce: {announce}"
    );
    let addr = announce
        .split("\"addr\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("announce carries the address")
        .to_string();
    Daemon { child, stdin, addr }
}

impl Daemon {
    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connect to kbpd")
    }

    /// Graceful shutdown: close stdin (the shutdown signal) and wait.
    fn shutdown(mut self) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("kbpd exits");
        assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    }
}

/// Sends a whole batch, half-closes, and reads every response line.
fn roundtrip(stream: &mut TcpStream, input: &str) -> Vec<String> {
    stream.write_all(input.as_bytes()).expect("write batch");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read response") > 0 {
        lines.push(line.trim_end_matches('\n').to_string());
        line.clear();
    }
    lines
}

#[test]
fn golden_transcript_over_tcp() {
    let daemon = spawn_daemon(&[("KBP_SERVICE_WORKERS", "2")]);
    let mut stream = daemon.connect();
    let responses = roundtrip(&mut stream, INPUT);
    let golden: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(responses, golden, "socket mode must match the golden bytes");
    daemon.shutdown();
}

#[test]
fn two_concurrent_clients_each_get_the_golden_transcript() {
    let daemon = spawn_daemon(&[("KBP_SERVICE_WORKERS", "4")]);
    let addr_a = daemon.addr.clone();
    let addr_b = daemon.addr.clone();
    let run = |addr: String| {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            roundtrip(&mut stream, INPUT)
        })
    };
    let a = run(addr_a).join().expect("client a");
    let b = run(addr_b).join().expect("client b");
    let golden: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(a, golden, "client a");
    assert_eq!(b, golden, "client b");
    daemon.shutdown();
}

#[test]
fn interleaved_partial_writes_do_not_mix_clients() {
    // Two clients dribble their requests a few bytes at a time, with
    // pauses, so the daemon's reads interleave mid-line. Framing is per
    // connection, so each client still gets exactly its own responses.
    let daemon = spawn_daemon(&[("KBP_SERVICE_WORKERS", "4")]);
    let make_client = |requests: Vec<String>, addr: String| {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            for request in &requests {
                let bytes = request.as_bytes();
                for chunk in bytes.chunks(7) {
                    stream.write_all(chunk).expect("partial write");
                    stream.flush().expect("flush");
                    std::thread::sleep(Duration::from_millis(2));
                }
                stream.write_all(b"\n").expect("newline");
            }
            stream.shutdown(Shutdown::Write).expect("half-close");
            let mut reader = BufReader::new(stream);
            let mut out = Vec::new();
            let mut line = String::new();
            while reader.read_line(&mut line).expect("read") > 0 {
                out.push(line.trim_end_matches('\n').to_string());
                line.clear();
            }
            out
        })
    };
    let a = make_client(
        vec![
            r#"{"id":1,"kind":"solve","scenario":"zoo_plain"}"#.to_string(),
            r#"{"id":2,"kind":"solve","scenario":"bit_transmission"}"#.to_string(),
        ],
        daemon.addr.clone(),
    );
    let b = make_client(
        vec![
            r#"{"id":100,"kind":"solve","scenario":"muddy_children_3"}"#.to_string(),
            r#"{"id":101,"kind":"solve","scenario":"zoo_plain"}"#.to_string(),
        ],
        daemon.addr.clone(),
    );
    let a = a.join().expect("client a");
    let b = b.join().expect("client b");
    let ids = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .map(|l| {
                l.split("\"id\":")
                    .nth(1)
                    .and_then(|rest| rest.split(',').next())
                    .expect("id field")
                    .to_string()
            })
            .collect()
    };
    assert_eq!(ids(&a), vec!["1", "2"], "client a, in order: {a:?}");
    assert_eq!(ids(&b), vec!["100", "101"], "client b, in order: {b:?}");
    assert!(a.iter().all(|l| l.contains("\"ok\":true")), "{a:?}");
    assert!(b.iter().all(|l| l.contains("\"ok\":true")), "{b:?}");
    daemon.shutdown();
}

#[test]
fn quota_overflow_is_a_typed_response_not_a_drop() {
    let daemon = spawn_daemon(&[
        ("KBP_SERVICE_WORKERS", "1"),
        ("KBP_SERVICE_CLIENT_PENDING", "1"),
    ]);
    let mut stream = daemon.connect();
    let mut batch = String::new();
    for id in 0..6 {
        batch.push_str(&format!(
            "{{\"id\":{id},\"kind\":\"solve\",\"scenario\":\"muddy_children_3\"}}\n"
        ));
    }
    let responses = roundtrip(&mut stream, &batch);
    assert_eq!(responses.len(), 6, "every request answered: {responses:?}");
    for (i, line) in responses.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\":{i},")),
            "response {i} out of order: {line}"
        );
    }
    assert!(
        responses.iter().any(|l| l.contains("\"quota_exceeded\"")),
        "a 6-deep burst against quota 1 must trip the quota: {responses:?}"
    );
    assert!(
        responses.iter().any(|l| l.contains("\"ok\":true")),
        "the admitted job is served: {responses:?}"
    );
    daemon.shutdown();
}

#[test]
fn health_and_metrics_answer_over_tcp() {
    let daemon = spawn_daemon(&[("KBP_SERVICE_WORKERS", "2")]);
    let mut stream = daemon.connect();
    let responses = roundtrip(
        &mut stream,
        "{\"kind\":\"health\",\"id\":1}\n{\"kind\":\"metrics\",\"id\":2}\n",
    );
    assert_eq!(responses.len(), 2);
    assert!(
        responses[0].contains("\"kind\":\"health\"") && responses[0].contains("\"status\":\"ok\""),
        "{responses:?}"
    );
    assert!(
        responses[1].contains("\"kind\":\"metrics\"")
            && responses[1].contains("\"queue_depth\"")
            && responses[1].contains("\"workers_busy\"")
            && responses[1].contains("\"persist_failures\""),
        "{responses:?}"
    );
    daemon.shutdown();
}

#[test]
fn shutdown_drains_accepted_jobs_before_exit() {
    let daemon = spawn_daemon(&[("KBP_SERVICE_WORKERS", "1")]);
    let mut stream = daemon.connect();
    for id in 0..4 {
        writeln!(
            stream,
            "{{\"id\":{id},\"kind\":\"solve\",\"scenario\":\"bit_transmission\"}}"
        )
        .expect("write");
    }
    stream.flush().expect("flush");
    // Give the daemon's reader a moment to admit the burst, then pull
    // the plug while the single worker is still grinding through it.
    std::thread::sleep(Duration::from_millis(100));
    daemon.shutdown();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read after drain");
    let responses: Vec<&str> = body.lines().collect();
    assert_eq!(
        responses.len(),
        4,
        "every admitted job answered before exit: {body}"
    );
    for (i, line) in responses.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\":{i},")) && line.contains("\"ok\":true"),
            "response {i}: {line}"
        );
    }
}
