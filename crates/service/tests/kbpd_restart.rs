//! Warm-restart determinism: a killed-and-restarted `kbpd` with a
//! persisted cache directory must answer a repeated batch bit-identically
//! to a cold daemon — and the warmth must be *visible* in metrics
//! (sessions preloaded at startup, cache hits when the batch repeats).

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};

const INPUT: &str = include_str!("data/smoke_input.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

const KBP_VARS: &[&str] = &[
    "KBP_SERVICE_WORKERS",
    "KBP_SERVICE_QUEUE",
    "KBP_SERVICE_CACHE",
    "KBP_SERVICE_CACHE_SESSIONS",
    "KBP_SERVICE_CACHE_DIR",
    "KBP_SERVICE_CLIENT_PENDING",
    "KBP_SERVICE_MAX_CONNECTIONS",
    "KBP_SERVICE_MAX_LINE",
    "KBP_SERVICE_IDLE_TIMEOUT_MS",
    "KBP_SERVICE_WRITE_BUDGET_BYTES",
    "KBP_SERVICE_WRITE_STALL_MS",
    "KBP_EVAL_THREADS",
    "KBP_SHARD_MIN_WORLDS",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kbpd-restart-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: String,
}

fn spawn_daemon(cache_dir: &std::path::Path) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_kbpd"));
    for var in KBP_VARS {
        cmd.env_remove(var);
    }
    cmd.env("KBP_SERVICE_WORKERS", "2");
    cmd.env("KBP_SERVICE_CACHE_DIR", cache_dir);
    let mut child = cmd
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("kbpd spawns");
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let announce = BufReader::new(stdout)
        .lines()
        .next()
        .expect("announce line")
        .expect("announce reads");
    let addr = announce
        .split("\"addr\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("address in announce")
        .to_string();
    Daemon { child, stdin, addr }
}

impl Daemon {
    fn shutdown(mut self) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("kbpd exits");
        assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    }
}

/// Runs the golden batch, then a metrics probe on the same connection
/// *after* all batch responses arrived (so execution — and therefore
/// cache-hit accounting — has finished). Returns (batch, metrics).
fn batch_then_metrics(addr: &str) -> (Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(INPUT.as_bytes()).expect("write batch");
    stream.flush().expect("flush");
    let expected = INPUT.lines().count();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut batch = Vec::new();
    let mut line = String::new();
    while batch.len() < expected {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read response") > 0,
            "connection closed early: {batch:?}"
        );
        batch.push(line.trim_end_matches('\n').to_string());
    }
    writeln!(stream, "{{\"kind\":\"metrics\",\"id\":999}}").expect("write metrics");
    stream.shutdown(Shutdown::Write).expect("half-close");
    line.clear();
    assert!(
        reader.read_line(&mut line).expect("read metrics") > 0,
        "no metrics response"
    );
    (batch, line.trim_end_matches('\n').to_string())
}

fn metric(metrics: &str, key: &str) -> u64 {
    metrics
        .split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .filter(|digits| !digits.is_empty())
        })
        .unwrap_or_else(|| panic!("metric {key} missing in {metrics}"))
        .parse()
        .expect("metric parses")
}

#[test]
fn restarted_daemon_answers_bit_identically_and_visibly_warm() {
    let cache_dir = temp_dir("warm");
    let golden: Vec<&str> = GOLDEN.lines().collect();

    // Cold run: empty cache directory, golden answers, then a graceful
    // shutdown that persists the solve sessions.
    let cold = spawn_daemon(&cache_dir);
    let (cold_batch, cold_metrics) = batch_then_metrics(&cold.addr);
    assert_eq!(cold_batch, golden, "cold daemon matches the golden bytes");
    assert_eq!(metric(&cold_metrics, "preloaded"), 0, "{cold_metrics}");
    cold.shutdown();

    let persisted: Vec<_> = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "kbps"))
        .collect();
    assert!(
        !persisted.is_empty(),
        "shutdown must persist solve sessions to {}",
        cache_dir.display()
    );

    // Warm run: same directory. Same bytes on the wire, but the cache
    // preloaded the persisted sessions and the repeated batch hits.
    let warm = spawn_daemon(&cache_dir);
    let (warm_batch, warm_metrics) = batch_then_metrics(&warm.addr);
    assert_eq!(
        warm_batch, cold_batch,
        "a warm restart must answer bit-identically to the cold daemon"
    );
    assert!(
        metric(&warm_metrics, "preloaded") >= 1,
        "restart must preload persisted sessions: {warm_metrics}"
    );
    assert!(
        metric(&warm_metrics, "hits") >= 1,
        "repeated batch must hit the preloaded sessions: {warm_metrics}"
    );
    warm.shutdown();

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn corrupt_cache_files_cold_start_instead_of_crashing() {
    let cache_dir = temp_dir("corrupt");
    std::fs::create_dir_all(&cache_dir).expect("mkdir");
    // A validly-named file full of garbage: the daemon must skip it and
    // serve cold, not refuse to start or crash.
    std::fs::write(cache_dir.join("00000000deadbeef.kbps"), b"not a session")
        .expect("write garbage");
    let daemon = spawn_daemon(&cache_dir);
    let (batch, metrics) = batch_then_metrics(&daemon.addr);
    let golden: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(
        batch, golden,
        "garbage in the store must not change answers"
    );
    assert!(
        metric(&metrics, "persist_failures") >= 1,
        "the skipped file is counted: {metrics}"
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
