//! End-to-end coverage for the `define` wire op: a client registers a
//! DSL scenario over TCP, solves it bit-identically to the compiled-in
//! registry version, and the definition survives a warm restart of the
//! daemon (fresh `Server` over the same cache directory).

use kbp_service::json::{obj, parse as parse_json, Json};
use kbp_service::{Server, ServerHandle, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;

fn start(config: ServiceConfig) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", Service::new(config)).expect("bind");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (handle, thread)
}

fn send_lines(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        writeln!(stream, "{line}").expect("write");
    }
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| parse_json(&line.expect("read")).expect("json"))
        .collect()
}

fn dsl_source() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/dsl/bit_transmission.kbp"
    );
    std::fs::read_to_string(path).expect("bit_transmission example exists")
}

fn define_line(id: u64, name: &str, source: &str, client: &str) -> String {
    obj(vec![
        ("op", Json::Str("define".into())),
        ("id", Json::U64(id)),
        ("name", Json::Str(name.into())),
        ("source", Json::Str(source.into())),
        ("client", Json::Str(client.into())),
    ])
    .to_line()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbpd-define-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The solve of a `define`d scenario must match the registry scenario's
/// response on every field except the echoed name.
fn assert_same_solution(registry: &Json, defined: &Json, defined_name: &str) {
    let (Json::Obj(registry), Json::Obj(defined)) = (registry, defined) else {
        panic!("solve responses must be objects");
    };
    assert_eq!(registry.len(), defined.len());
    for ((rk, rv), (dk, dv)) in registry.iter().zip(defined.iter()) {
        assert_eq!(rk, dk, "field order must match");
        match rk.as_str() {
            "scenario" => assert_eq!(dv, &Json::Str(defined_name.into())),
            "id" => {}
            _ => assert_eq!(rv, dv, "field '{rk}' differs"),
        }
    }
}

#[test]
fn define_solve_and_warm_restart_over_tcp() {
    let dir = temp_dir("restart");
    let source = dsl_source();
    let config = || {
        ServiceConfig::new()
            .workers(2)
            .client_definitions(1)
            .cache_dir(Some(dir.clone()))
    };

    let first_solve;
    {
        let (handle, thread) = start(config());
        let responses = send_lines(
            handle.addr(),
            &[
                define_line(1, "bit_transmission_dsl", &source, "tenant-a"),
                r#"{"id":2,"kind":"solve","scenario":"bit_transmission"}"#.into(),
                r#"{"id":3,"kind":"solve","scenario":"bit_transmission_dsl"}"#.into(),
            ],
        );
        assert_eq!(responses.len(), 3);
        let defined = &responses[0];
        assert_eq!(defined.get("ok"), Some(&Json::Bool(true)), "{defined:?}");
        assert_eq!(defined.get("kind"), Some(&Json::Str("define".into())));
        assert_eq!(
            defined.get("scenario"),
            Some(&Json::Str("bit_transmission_dsl".into()))
        );
        assert_same_solution(&responses[1], &responses[2], "bit_transmission_dsl");
        first_solve = responses[2].clone();

        // Admission failures over the wire: registry shadowing, quota,
        // and compile errors all answer typed kinds on a live socket.
        let rejected = send_lines(
            handle.addr(),
            &[
                define_line(4, "bit_transmission", &source, "tenant-a"),
                define_line(5, "second_name", &source, "tenant-a"),
                obj(vec![
                    ("op", Json::Str("define".into())),
                    ("id", Json::U64(6)),
                    (
                        "source",
                        Json::Str("scenario broken {\n  agents a\n}\n".into()),
                    ),
                ])
                .to_line(),
            ],
        );
        let kinds: Vec<Option<&str>> = rejected
            .iter()
            .map(|r| {
                r.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                Some("name_reserved"),
                Some("definition_quota"),
                Some("invalid_program"),
            ]
        );
        let diags = rejected[2]
            .get("error")
            .and_then(|e| e.get("diagnostics"))
            .expect("invalid_program carries diagnostics");
        let Json::Arr(diags) = diags else {
            panic!("diagnostics must be an array");
        };
        assert!(!diags.is_empty());
        assert!(diags[0].get("line").and_then(Json::as_u64).is_some());
        assert!(diags[0].get("col").and_then(Json::as_u64).is_some());

        handle.shutdown();
        thread.join().expect("join").expect("run");
    }

    // Warm restart: a fresh server over the same cache directory
    // answers the defined name without any client re-defining it, and
    // the solution is byte-for-byte the pre-restart one.
    {
        let (handle, thread) = start(config());
        let responses = send_lines(
            handle.addr(),
            &[
                r#"{"id":3,"kind":"solve","scenario":"bit_transmission_dsl"}"#.into(),
                r#"{"kind":"metrics"}"#.into(),
            ],
        );
        assert_eq!(responses[0].to_line(), first_solve.to_line());
        let defs = responses[1]
            .get("definitions")
            .expect("metrics surface the definitions block");
        assert_eq!(defs.get("active").and_then(Json::as_u64), Some(1));
        assert_eq!(defs.get("restored").and_then(Json::as_u64), Some(1));
        handle.shutdown();
        thread.join().expect("join").expect("run");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
