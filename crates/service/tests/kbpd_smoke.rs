//! End-to-end smoke test of the `kbpd` binary: pipe a three-job batch
//! through stdin and compare stdout byte-for-byte against the golden
//! transcript (the same transcript CI diffs against). Also pins the
//! typed startup failure on a malformed `KBP_SERVICE_WORKERS`.

use std::io::Write;
use std::process::{Command, Stdio};

const INPUT: &str = include_str!("data/smoke_input.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

fn run_kbpd(envs: &[(&str, &str)], input: &str) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_kbpd"));
    // Isolate from the ambient environment: the test must pin the
    // configuration it runs under.
    for var in [
        "KBP_SERVICE_WORKERS",
        "KBP_SERVICE_QUEUE",
        "KBP_SERVICE_CACHE",
        "KBP_EVAL_THREADS",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("kbpd spawns");
    // A startup-failure run may exit before reading stdin; a broken
    // pipe here is fine, the assertions below look at status/output.
    let _ = child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes());
    child.wait_with_output().expect("kbpd exits")
}

#[test]
fn golden_three_job_batch() {
    // Worker count and cache state must not change a byte of output:
    // run the same batch under several configurations.
    for envs in [
        &[("KBP_SERVICE_WORKERS", "1")][..],
        &[("KBP_SERVICE_WORKERS", "2")][..],
        &[("KBP_SERVICE_WORKERS", "4"), ("KBP_SERVICE_CACHE", "off")][..],
        &[("KBP_SERVICE_WORKERS", "2"), ("KBP_EVAL_THREADS", "2")][..],
    ] {
        let output = run_kbpd(envs, INPUT);
        assert!(output.status.success(), "kbpd failed under {envs:?}");
        let stdout = String::from_utf8(output.stdout).expect("utf8 output");
        assert_eq!(stdout, GOLDEN, "output diverged from golden under {envs:?}");
    }
}

#[test]
fn malformed_worker_config_is_a_startup_error() {
    let output = run_kbpd(&[("KBP_SERVICE_WORKERS", "a few")], INPUT);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).expect("utf8 stderr");
    assert!(
        stderr.contains("KBP_SERVICE_WORKERS"),
        "stderr should name the variable: {stderr}"
    );
    assert!(output.stdout.is_empty(), "no responses before startup");
}

#[test]
fn bad_lines_get_error_responses_in_order() {
    let input = "this is not json\n{\"id\":9,\"kind\":\"solve\",\"scenario\":\"zoo_plain\"}\n";
    let output = run_kbpd(&[("KBP_SERVICE_WORKERS", "2")], input);
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8 output");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "one response per line: {stdout}");
    assert!(lines[0].contains("\"ok\":false") && lines[0].contains("\"parse\""));
    assert!(lines[1].contains("\"id\":9") && lines[1].contains("\"ok\":true"));
}
