//! Wire-level chaos tests of the `kbpd` event-driven connection plane.
//!
//! A seeded fleet of adversarial clients (stalled readers, tricklers,
//! half-closers, mid-stream resets, oversized floods, connect churn —
//! see `chaos/mod.rs`) hammers a release daemon while well-behaved
//! clients assert the contract the plane must keep: bit-identical,
//! in-order responses within a deadline, every forced disconnect typed
//! and counted, drain-on-shutdown even when the owed connection died,
//! and a thread inventory that does not grow with connection count.
//!
//! The seed comes from `KBP_CHAOS_SEED` (default 1) so CI can run a
//! fixed seed matrix; every failure message carries the seed.

mod chaos;

use chaos::{fetch_metrics, metric, run_client, schedule, ChaosKind, Proxy};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant};

const INPUT: &str = include_str!("data/smoke_input.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

/// Every variable the daemon reads; tests must pin their environment.
const KBP_VARS: &[&str] = &[
    "KBP_SERVICE_WORKERS",
    "KBP_SERVICE_QUEUE",
    "KBP_SERVICE_CACHE",
    "KBP_SERVICE_CACHE_SESSIONS",
    "KBP_SERVICE_CACHE_DIR",
    "KBP_SERVICE_CLIENT_PENDING",
    "KBP_SERVICE_MAX_CONNECTIONS",
    "KBP_SERVICE_MAX_LINE",
    "KBP_SERVICE_IDLE_TIMEOUT_MS",
    "KBP_SERVICE_WRITE_BUDGET_BYTES",
    "KBP_SERVICE_WRITE_STALL_MS",
    "KBP_EVAL_THREADS",
    "KBP_SHARD_MIN_WORLDS",
];

fn chaos_seed() -> u64 {
    std::env::var("KBP_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(1)
}

struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: String,
}

fn spawn_daemon(envs: &[(&str, &str)]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_kbpd"));
    for var in KBP_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("kbpd spawns");
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines
        .next()
        .expect("an announce line")
        .expect("announce reads");
    let addr = announce
        .split("\"addr\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("announce carries the address")
        .to_string();
    Daemon { child, stdin, addr }
}

impl Daemon {
    fn shutdown(mut self) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("kbpd exits");
        assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    }
}

/// Sends a batch, half-closes, reads every line under a read deadline.
fn roundtrip_with_deadline(addr: &str, input: &str, deadline: Duration) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("write batch");
    stream.shutdown(Shutdown::Write).expect("half-close");
    stream.set_read_timeout(Some(deadline)).expect("deadline");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read within deadline") > 0 {
        lines.push(line.trim_end_matches('\n').to_string());
        line.clear();
    }
    lines
}

/// Tags every job line of the smoke input with a tenant token. The
/// `client` field is never echoed, so the golden bytes are unchanged.
fn tagged_input(client: &str) -> String {
    INPUT
        .lines()
        .map(|line| {
            if line.trim().is_empty() {
                line.to_string()
            } else {
                line.replacen('{', &format!("{{\"client\":\"{client}\","), 1)
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// The headline witness: a seeded chaos fleet cannot disturb
/// well-behaved clients — golden bytes, per-connection order, within a
/// deadline — and the daemon survives to shut down gracefully.
#[test]
fn well_behaved_clients_get_golden_bytes_under_chaos() {
    let seed = chaos_seed();
    let daemon = spawn_daemon(&[
        ("KBP_SERVICE_WORKERS", "4"),
        ("KBP_SERVICE_MAX_CONNECTIONS", "64"),
        ("KBP_SERVICE_IDLE_TIMEOUT_MS", "2000"),
        ("KBP_SERVICE_WRITE_STALL_MS", "2000"),
    ]);
    let fleet = schedule(seed, 12);
    let chaos_threads: Vec<_> = fleet
        .into_iter()
        .map(|kind| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || run_client(&addr, &kind))
        })
        .collect();
    let golden_threads: Vec<_> = (0..3)
        .map(|i| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                let input = tagged_input(&format!("golden-{i}"));
                roundtrip_with_deadline(&addr, &input, Duration::from_secs(30))
            })
        })
        .collect();
    let golden: Vec<&str> = GOLDEN.lines().collect();
    for (i, thread) in golden_threads.into_iter().enumerate() {
        let responses = thread.join().expect("golden client thread");
        assert_eq!(
            responses, golden,
            "golden client {i} must get the exact golden bytes under chaos seed {seed}"
        );
    }
    for thread in chaos_threads {
        thread.join().expect("chaos client thread");
    }
    // The plane is still healthy and reports tenant-scoped metrics.
    let metrics = fetch_metrics(&daemon.addr);
    assert!(
        metrics.contains("\"connections\"") && metrics.contains("\"disconnects\""),
        "metrics expose the plane under seed {seed}: {metrics}"
    );
    daemon.shutdown();
}

/// Thread-inventory witness: 40 idle connections are served by a
/// bounded plane, not a thread pair each. With 4 workers the whole
/// daemon needs ~7 threads; we assert a hard ceiling of 16 and, for
/// the record, the strict `< 2N` the old design could never meet.
#[cfg(target_os = "linux")]
#[test]
fn thread_inventory_is_bounded_with_many_idle_connections() {
    const IDLE_CONNS: usize = 40;
    let daemon = spawn_daemon(&[
        ("KBP_SERVICE_WORKERS", "4"),
        ("KBP_SERVICE_MAX_CONNECTIONS", "64"),
        ("KBP_SERVICE_IDLE_TIMEOUT_MS", "0"),
    ]);
    let mut holders = Vec::new();
    for _ in 0..IDLE_CONNS {
        holders.push(TcpStream::connect(&daemon.addr).expect("idle connect"));
    }
    // One active client proves the plane is serving while the idle
    // fleet sits connected.
    let responses = roundtrip_with_deadline(&daemon.addr, INPUT, Duration::from_secs(30));
    assert_eq!(responses, GOLDEN.lines().collect::<Vec<_>>());
    let tasks = std::fs::read_dir(format!("/proc/{}/task", daemon.child.id()))
        .expect("/proc/<pid>/task readable")
        .count();
    assert!(
        tasks <= 16,
        "plane threads must not scale with connections: {tasks} threads for {IDLE_CONNS} idle conns"
    );
    assert!(
        tasks < 2 * IDLE_CONNS,
        "strictly below the old 2-per-conn design"
    );
    drop(holders);
    daemon.shutdown();
}

/// Idle and half-open connections are reaped with *typed* notices, and
/// each forced close lands in its own metrics counter.
#[test]
fn idle_and_half_open_connections_get_typed_notices() {
    let daemon = spawn_daemon(&[
        ("KBP_SERVICE_WORKERS", "1"),
        ("KBP_SERVICE_IDLE_TIMEOUT_MS", "400"),
    ]);
    let read_notice = |stream: TcpStream| -> String {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("notice line");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("eof after notice");
        assert!(rest.is_empty(), "connection closes after the notice");
        line
    };
    // A silent connection: idle_timeout.
    let idle = TcpStream::connect(&daemon.addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("deadline");
    // A half-open line (bytes but no newline): read_deadline.
    let mut half = TcpStream::connect(&daemon.addr).expect("connect half");
    half.write_all(b"{\"id\":1,\"kind\":\"so")
        .expect("partial line");
    half.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("deadline");
    let idle_notice = read_notice(idle);
    let half_notice = read_notice(half);
    assert!(
        idle_notice.contains("\"kind\":\"idle_timeout\"") && idle_notice.contains("\"ok\":false"),
        "typed idle notice: {idle_notice}"
    );
    assert!(
        half_notice.contains("\"kind\":\"read_deadline\"") && half_notice.contains("\"ok\":false"),
        "typed half-open notice: {half_notice}"
    );
    let metrics = fetch_metrics(&daemon.addr);
    assert!(metric(&metrics, "idle_timeout") >= 1, "{metrics}");
    assert!(metric(&metrics, "read_deadline") >= 1, "{metrics}");
    daemon.shutdown();
}

/// A reader that stalls with a growing backlog trips the write budget
/// and is closed — while a concurrent well-behaved client still gets
/// its golden bytes within the deadline (slowloris does not convoy).
#[test]
fn slow_reader_trips_the_write_budget_without_delaying_others() {
    let daemon = spawn_daemon(&[
        ("KBP_SERVICE_WORKERS", "2"),
        ("KBP_SERVICE_WRITE_BUDGET_BYTES", "4096"),
    ]);
    // Metrics requests are answered inline, so a flood the client never
    // reads grows the outbuf fast, past any kernel socket buffering.
    let mut flood = TcpStream::connect(&daemon.addr).expect("connect flood");
    let line = b"{\"kind\":\"metrics\",\"id\":1}\n";
    let mut tripped = false;
    'outer: for _ in 0..200 {
        for _ in 0..50 {
            if flood.write_all(line).is_err() {
                tripped = true; // daemon closed us mid-flood: also fine
                break 'outer;
            }
        }
        let metrics = fetch_metrics(&daemon.addr);
        if metric(&metrics, "write_budget") >= 1 {
            tripped = true;
            break;
        }
    }
    assert!(
        tripped,
        "a never-reading metrics flood must trip the budget"
    );
    // The well-behaved client is unaffected.
    let responses = roundtrip_with_deadline(&daemon.addr, INPUT, Duration::from_secs(30));
    assert_eq!(responses, GOLDEN.lines().collect::<Vec<_>>());
    daemon.shutdown();
}

/// Drain honesty: when the owing connection was force-closed, its
/// completed jobs are dropped *and counted*, and shutdown still
/// terminates instead of waiting for a client that no longer exists.
#[test]
fn force_closed_connections_drop_responses_but_never_wedge_the_drain() {
    let daemon = spawn_daemon(&[
        ("KBP_SERVICE_WORKERS", "1"),
        ("KBP_SERVICE_WRITE_BUDGET_BYTES", "2048"),
        ("KBP_SERVICE_QUEUE", "64"),
        // Cold solves keep the single worker busy long enough that the
        // victim is force-closed while its jobs are still in flight.
        ("KBP_SERVICE_CACHE", "0"),
    ]);
    let mut victim = TcpStream::connect(&daemon.addr).expect("connect victim");
    // Slow jobs first (one worker grinds through them), then an unread
    // inline-metrics flood to blow the write budget while they are
    // still in flight.
    for id in 0..8 {
        writeln!(
            victim,
            "{{\"id\":{id},\"kind\":\"solve\",\"scenario\":\"bit_transmission\"}}"
        )
        .expect("write job");
    }
    for _ in 0..4000 {
        if victim
            .write_all(b"{\"kind\":\"metrics\",\"id\":2}\n")
            .is_err()
        {
            break; // force-closed under our feet — that is the point
        }
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    let dropped = loop {
        let metrics = fetch_metrics(&daemon.addr);
        let dropped = metric(&metrics, "responses_dropped");
        if dropped >= 1 {
            break dropped;
        }
        assert!(
            Instant::now() < deadline,
            "force-closed connection's responses must be counted dropped: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(dropped >= 1);
    // The drain must still terminate (Daemon::shutdown asserts exit 0).
    daemon.shutdown();
}

/// The harness itself is honest: a zero-chaos proxy run is
/// byte-identical to a direct connection.
#[test]
fn zero_chaos_proxy_is_byte_identical_to_direct() {
    let daemon = spawn_daemon(&[("KBP_SERVICE_WORKERS", "2")]);
    let proxy = Proxy::spawn(daemon.addr.clone());
    let direct = roundtrip_with_deadline(&daemon.addr, INPUT, Duration::from_secs(30));
    let proxied = roundtrip_with_deadline(proxy.addr(), INPUT, Duration::from_secs(30));
    assert_eq!(proxied, direct, "the proxy adds nothing to the wire");
    assert_eq!(direct, GOLDEN.lines().collect::<Vec<_>>());
    daemon.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chaos schedule is a pure function of the seed: same seed,
    /// same event sequence — and a longer schedule extends a shorter
    /// one rather than reshuffling it (so growing a CI matrix never
    /// changes the meaning of existing seeds).
    #[test]
    fn chaos_schedule_is_seed_deterministic(seed in 0u64..1_000_000, n in 1usize..32) {
        let a = schedule(seed, n);
        let b = schedule(seed, n);
        prop_assert_eq!(&a, &b);
        let longer = schedule(seed, n + 5);
        prop_assert_eq!(&longer[..n], &a[..]);
    }

    /// Every seed yields a well-formed fleet with bounded parameters
    /// (no schedule can accidentally demand unbounded work).
    #[test]
    fn chaos_schedules_are_well_formed(seed in 0u64..1_000_000) {
        for kind in schedule(seed, 16) {
            match kind {
                ChaosKind::StalledReader { jobs, stall_ms } => {
                    prop_assert!((1..=4).contains(&jobs) && stall_ms < 250);
                }
                ChaosKind::Trickle { jobs, chunk, pause_ms } => {
                    prop_assert!((1..=3).contains(&jobs) && chunk >= 1 && pause_ms <= 5);
                }
                ChaosKind::HalfClose { jobs } | ChaosKind::MidStreamReset { jobs } => {
                    prop_assert!((1..=4).contains(&jobs));
                }
                ChaosKind::OversizedFlood { lines, line_len } => {
                    prop_assert!((1..=4).contains(&lines) && line_len >= 2048);
                }
                ChaosKind::Churn { connects } => {
                    prop_assert!((2..=7).contains(&connects));
                }
            }
        }
    }
}
