//! A seeded wire-level chaos harness for `kbpd`'s TCP plane.
//!
//! Everything here is deterministic in the seed: [`schedule`] expands a
//! `u64` into a reproducible list of adversarial client behaviours
//! ([`ChaosKind`]), and [`run_client`] executes one against a live
//! daemon, tolerating every I/O error (the daemon closing an abusive
//! connection is the expected outcome, not a test failure). The
//! [`Proxy`] is a transparent byte-for-byte TCP forwarder used to prove
//! the harness itself adds nothing to the wire.
//!
//! The point of the fleet is what it does **not** do: none of these
//! behaviours may disturb a concurrent well-behaved client, whose
//! responses must stay bit-identical, in order, and on time.

#![allow(dead_code)] // each test binary uses a subset of the harness

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

/// SplitMix64 — the same mixing constants as `kbp-faults`, so one seed
/// convention covers the whole workspace.
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant here).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One adversarial client behaviour. Parameters are drawn from the
/// seed, so a `(seed, index)` pair pins the exact wire activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosKind {
    /// Sends jobs, then refuses to read responses for a while.
    StalledReader { jobs: usize, stall_ms: u64 },
    /// Dribbles requests a few bytes at a time with pauses.
    Trickle {
        jobs: usize,
        chunk: usize,
        pause_ms: u64,
    },
    /// Sends jobs and half-closes immediately (a legal fast client).
    HalfClose { jobs: usize },
    /// Sends jobs and vanishes without reading — unread inbound data
    /// makes the kernel RST the connection mid-response.
    MidStreamReset { jobs: usize },
    /// Floods lines far beyond the daemon's line bound.
    OversizedFlood { lines: usize, line_len: usize },
    /// Rapid connect/disconnect churn, never speaking the protocol.
    Churn { connects: usize },
}

/// Expands a seed into `n` chaos behaviours. Pure and sequential: the
/// schedule for `n` events is a prefix of the schedule for `n + 1`.
pub fn schedule(seed: u64, n: usize) -> Vec<ChaosKind> {
    let mut rng = ChaosRng::new(seed);
    (0..n)
        .map(|_| match rng.below(6) {
            0 => ChaosKind::StalledReader {
                jobs: 1 + rng.below(4) as usize,
                stall_ms: 50 + rng.below(200),
            },
            1 => ChaosKind::Trickle {
                jobs: 1 + rng.below(3) as usize,
                chunk: 1 + rng.below(9) as usize,
                pause_ms: 1 + rng.below(5),
            },
            2 => ChaosKind::HalfClose {
                jobs: 1 + rng.below(4) as usize,
            },
            3 => ChaosKind::MidStreamReset {
                jobs: 1 + rng.below(4) as usize,
            },
            4 => ChaosKind::OversizedFlood {
                lines: 1 + rng.below(4) as usize,
                line_len: 2048 + rng.below(4096) as usize,
            },
            _ => ChaosKind::Churn {
                connects: 2 + rng.below(6) as usize,
            },
        })
        .collect()
}

fn job_line(id: usize) -> String {
    const SCENARIOS: [&str; 3] = ["zoo_plain", "muddy_children_3", "bit_transmission"];
    format!(
        "{{\"id\":{id},\"kind\":\"solve\",\"scenario\":\"{}\",\"client\":\"chaos\"}}\n",
        SCENARIOS[id % SCENARIOS.len()]
    )
}

/// Runs one chaos behaviour against `addr`. Never panics on I/O: the
/// daemon is allowed (often expected) to refuse, close, or reset us.
pub fn run_client(addr: &str, kind: &ChaosKind) {
    let connect = || TcpStream::connect(addr).ok();
    match kind {
        ChaosKind::StalledReader { jobs, stall_ms } => {
            let Some(mut stream) = connect() else { return };
            for id in 0..*jobs {
                let _ = stream.write_all(job_line(id).as_bytes());
            }
            std::thread::sleep(Duration::from_millis(*stall_ms));
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let mut sink = [0u8; 4096];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        }
        ChaosKind::Trickle {
            jobs,
            chunk,
            pause_ms,
        } => {
            let Some(mut stream) = connect() else { return };
            for id in 0..*jobs {
                let line = job_line(id);
                for piece in line.as_bytes().chunks(*chunk) {
                    if stream.write_all(piece).is_err() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(*pause_ms));
                }
            }
            let _ = stream.shutdown(Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let mut sink = [0u8; 4096];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        }
        ChaosKind::HalfClose { jobs } => {
            let Some(mut stream) = connect() else { return };
            for id in 0..*jobs {
                let _ = stream.write_all(job_line(id).as_bytes());
            }
            let _ = stream.shutdown(Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let mut sink = [0u8; 4096];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        }
        ChaosKind::MidStreamReset { jobs } => {
            let Some(mut stream) = connect() else { return };
            for id in 0..*jobs {
                let _ = stream.write_all(job_line(id).as_bytes());
            }
            // Drop with responses unread: the kernel answers further
            // daemon writes with RST. The daemon must treat that as a
            // counted close, not a crash.
        }
        ChaosKind::OversizedFlood { lines, line_len } => {
            let Some(mut stream) = connect() else { return };
            let line = format!("{}\n", "x".repeat(*line_len));
            for _ in 0..*lines {
                if stream.write_all(line.as_bytes()).is_err() {
                    break;
                }
            }
            let _ = stream.shutdown(Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let mut sink = [0u8; 4096];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        }
        ChaosKind::Churn { connects } => {
            for _ in 0..*connects {
                let Some(stream) = connect() else { continue };
                drop(stream);
            }
        }
    }
}

/// A transparent TCP forwarder: every accepted connection is piped
/// byte-for-byte to the upstream address in both directions. Used to
/// prove a zero-chaos harness run is indistinguishable from a direct
/// connection. The accept thread lives until the test process exits.
pub struct Proxy {
    addr: String,
}

impl Proxy {
    pub fn spawn(upstream: String) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy binds");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(client) = stream else { break };
                let upstream = upstream.clone();
                std::thread::spawn(move || pipe_both_ways(client, &upstream));
            }
        });
        Proxy { addr }
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }
}

fn pipe_both_ways(client: TcpStream, upstream: &str) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    let up = (
        client.try_clone().expect("clone client"),
        server.try_clone().expect("clone server"),
    );
    let forward = std::thread::spawn(move || pipe(up.0, up.1, Shutdown::Write));
    pipe(server, client, Shutdown::Write);
    let _ = forward.join();
}

/// Copies until EOF, then half-closes the destination so the other
/// side's reader sees the same EOF the source produced.
fn pipe(mut from: TcpStream, mut to: TcpStream, done: Shutdown) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(done);
}

/// Reads `"key":<digits>` out of a JSON metrics line (field names are
/// unique in the metrics response, so substring search suffices).
pub fn metric(metrics: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let rest = metrics
        .split(&needle)
        .nth(1)
        .unwrap_or_else(|| panic!("metrics carry {key}: {metrics}"));
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} is numeric: {metrics}"))
}

/// One metrics round-trip on a fresh connection.
pub fn fetch_metrics(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for metrics");
    stream
        .write_all(b"{\"kind\":\"metrics\",\"id\":9000}\n")
        .expect("write metrics request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("read metrics");
    line
}
