//! Agents and sets of agents.

use std::fmt;

/// An agent identity, a dense index assigned by a
/// [`Vocabulary`](crate::Vocabulary).
///
/// At most [`Agent::MAX_AGENTS`] agents are supported so that an
/// [`AgentSet`] fits in a single machine word; the systems modelled in the
/// knowledge-based-programs literature have a handful of agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Agent(u8);

impl Agent {
    /// The maximum number of distinct agents (`64`).
    pub const MAX_AGENTS: usize = 64;

    /// Creates an agent from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Agent::MAX_AGENTS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < Self::MAX_AGENTS,
            "agent index {index} out of range (max {})",
            Self::MAX_AGENTS
        );
        Agent(index as u8)
    }

    /// The dense index of this agent.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A set of agents, used as the group index of `E`, `C` and `D` modalities.
///
/// Represented as a 64-bit mask; construction is infallible for any agents
/// produced by a [`Vocabulary`](crate::Vocabulary).
///
/// # Example
///
/// ```
/// use kbp_logic::{Agent, AgentSet};
///
/// let g: AgentSet = [Agent::new(0), Agent::new(2)].into_iter().collect();
/// assert_eq!(g.len(), 2);
/// assert!(g.contains(Agent::new(2)));
/// assert!(!g.contains(Agent::new(1)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentSet(u64);

impl AgentSet {
    /// The empty set of agents.
    pub const EMPTY: AgentSet = AgentSet(0);

    /// Creates an empty agent set.
    #[must_use]
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// The set containing every agent index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > Agent::MAX_AGENTS`.
    #[must_use]
    pub fn all(n: usize) -> Self {
        assert!(n <= Agent::MAX_AGENTS, "agent count {n} out of range");
        if n == Agent::MAX_AGENTS {
            AgentSet(u64::MAX)
        } else {
            AgentSet((1u64 << n) - 1)
        }
    }

    /// The singleton set `{agent}`.
    #[must_use]
    pub fn singleton(agent: Agent) -> Self {
        AgentSet(1u64 << agent.index())
    }

    /// Inserts an agent; returns `true` if it was not already present.
    pub fn insert(&mut self, agent: Agent) -> bool {
        let bit = 1u64 << agent.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes an agent; returns `true` if it was present.
    pub fn remove(&mut self, agent: Agent) -> bool {
        let bit = 1u64 << agent.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `agent` belongs to the set.
    #[must_use]
    pub fn contains(self, agent: Agent) -> bool {
        self.0 & (1u64 << agent.index()) != 0
    }

    /// Number of agents in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: AgentSet) -> AgentSet {
        AgentSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: AgentSet) -> AgentSet {
        AgentSet(self.0 & other.0)
    }

    /// Whether `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset(self, other: AgentSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the members in increasing index order.
    #[must_use]
    pub fn iter(self) -> AgentSetIter {
        AgentSetIter(self.0)
    }
}

impl FromIterator<Agent> for AgentSet {
    fn from_iter<T: IntoIterator<Item = Agent>>(iter: T) -> Self {
        let mut set = AgentSet::new();
        for a in iter {
            set.insert(a);
        }
        set
    }
}

impl Extend<Agent> for AgentSet {
    fn extend<T: IntoIterator<Item = Agent>>(&mut self, iter: T) {
        for a in iter {
            self.insert(a);
        }
    }
}

impl IntoIterator for AgentSet {
    type Item = Agent;
    type IntoIter = AgentSetIter;

    fn into_iter(self) -> AgentSetIter {
        self.iter()
    }
}

impl From<Agent> for AgentSet {
    fn from(agent: Agent) -> Self {
        AgentSet::singleton(agent)
    }
}

impl fmt::Display for AgentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, a) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of an [`AgentSet`], in increasing index order.
#[derive(Debug, Clone)]
pub struct AgentSetIter(u64);

impl Iterator for AgentSetIter {
    type Item = Agent;

    fn next(&mut self) -> Option<Agent> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(Agent::new(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AgentSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_its_member() {
        let a = Agent::new(3);
        let s = AgentSet::singleton(a);
        assert!(s.contains(a));
        assert!(!s.contains(Agent::new(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = AgentSet::new();
        assert!(s.insert(Agent::new(5)));
        assert!(!s.insert(Agent::new(5)));
        assert!(s.remove(Agent::new(5)));
        assert!(!s.remove(Agent::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn all_enumerates_prefix() {
        let s = AgentSet::all(4);
        let v: Vec<usize> = s.iter().map(Agent::index).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_max_agents_is_full() {
        let s = AgentSet::all(Agent::MAX_AGENTS);
        assert_eq!(s.len(), Agent::MAX_AGENTS);
        assert!(s.contains(Agent::new(63)));
    }

    #[test]
    fn union_intersection_subset() {
        let a: AgentSet = [Agent::new(0), Agent::new(1)].into_iter().collect();
        let b: AgentSet = [Agent::new(1), Agent::new(2)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn iterator_order_is_increasing() {
        let s: AgentSet = [Agent::new(9), Agent::new(2), Agent::new(40)]
            .into_iter()
            .collect();
        let v: Vec<usize> = s.iter().map(Agent::index).collect();
        assert_eq!(v, vec![2, 9, 40]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn agent_index_out_of_range_panics() {
        let _ = Agent::new(64);
    }

    #[test]
    fn display_forms() {
        let s: AgentSet = [Agent::new(0), Agent::new(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{a0,a2}");
        assert_eq!(Agent::new(7).to_string(), "a7");
    }
}

serde::impl_serde_newtype!(Agent(u8));
serde::impl_serde_newtype!(AgentSet(u64));
