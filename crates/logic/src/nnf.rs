//! Negation normal form and light semantic simplification.

use crate::formula::Formula;

impl Formula {
    /// Rewrites the formula into negation normal form: `->` and `<->` are
    /// expanded, and negations are pushed inward through the propositional
    /// connectives and the temporal operators `X`, `F`, `G`.
    ///
    /// Negations directly above atoms, above epistemic modalities and above
    /// `U` are kept (the AST has no dual operators for those), matching the
    /// "knowledge negative normal form" convention of the KBP literature.
    ///
    /// # Example
    ///
    /// ```
    /// use kbp_logic::{Formula, PropId};
    ///
    /// let p = Formula::prop(PropId::new(0));
    /// let q = Formula::prop(PropId::new(1));
    /// let f = Formula::not(Formula::and([p.clone(), q.clone()]));
    /// assert_eq!(f.nnf(), Formula::or([Formula::not(p), Formula::not(q)]));
    /// ```
    #[must_use]
    pub fn nnf(&self) -> Formula {
        self.nnf_signed(false)
    }

    fn nnf_signed(&self, negated: bool) -> Formula {
        match self {
            Formula::True => {
                if negated {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negated {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Prop(p) => {
                let atom = Formula::Prop(*p);
                if negated {
                    Formula::not(atom)
                } else {
                    atom
                }
            }
            Formula::Not(f) => f.nnf_signed(!negated),
            Formula::And(items) => {
                let mapped = items.iter().map(|f| f.nnf_signed(negated));
                if negated {
                    Formula::or(mapped)
                } else {
                    Formula::and(mapped)
                }
            }
            Formula::Or(items) => {
                let mapped = items.iter().map(|f| f.nnf_signed(negated));
                if negated {
                    Formula::and(mapped)
                } else {
                    Formula::or(mapped)
                }
            }
            Formula::Implies(a, b) => {
                // a -> b  ==  !a | b
                if negated {
                    // !(a -> b) == a & !b
                    Formula::and([a.nnf_signed(false), b.nnf_signed(true)])
                } else {
                    Formula::or([a.nnf_signed(true), b.nnf_signed(false)])
                }
            }
            Formula::Iff(a, b) => {
                // a <-> b == (a & b) | (!a & !b); negated: (a & !b) | (!a & b)
                let (pa, na) = (a.nnf_signed(false), a.nnf_signed(true));
                let (pb, nb) = (b.nnf_signed(false), b.nnf_signed(true));
                if negated {
                    Formula::or([Formula::and([pa, nb]), Formula::and([na, pb])])
                } else {
                    Formula::or([Formula::and([pa, pb]), Formula::and([na, nb])])
                }
            }
            Formula::Knows(a, f) => {
                let inner = Formula::knows(*a, f.nnf_signed(false));
                if negated {
                    Formula::not(inner)
                } else {
                    inner
                }
            }
            Formula::Everyone(g, f) => {
                let inner = Formula::everyone(*g, f.nnf_signed(false));
                if negated {
                    Formula::not(inner)
                } else {
                    inner
                }
            }
            Formula::Common(g, f) => {
                let inner = Formula::common(*g, f.nnf_signed(false));
                if negated {
                    Formula::not(inner)
                } else {
                    inner
                }
            }
            Formula::Distributed(g, f) => {
                let inner = Formula::distributed(*g, f.nnf_signed(false));
                if negated {
                    Formula::not(inner)
                } else {
                    inner
                }
            }
            Formula::Next(f) => Formula::next(f.nnf_signed(negated)),
            Formula::Eventually(f) => {
                if negated {
                    Formula::always(f.nnf_signed(true))
                } else {
                    Formula::eventually(f.nnf_signed(false))
                }
            }
            Formula::Always(f) => {
                if negated {
                    Formula::eventually(f.nnf_signed(true))
                } else {
                    Formula::always(f.nnf_signed(false))
                }
            }
            Formula::Until(a, b) => {
                let inner = Formula::until(a.nnf_signed(false), b.nnf_signed(false));
                if negated {
                    Formula::not(inner)
                } else {
                    inner
                }
            }
        }
    }

    /// Light semantic simplification: constant folding, deduplication of
    /// conjuncts/disjuncts, complementary-literal collapse
    /// (`p ∧ ¬p ⇒ false`, `p ∨ ¬p ⇒ true`) and `K_i true ⇒ true`.
    ///
    /// Produces an equivalent formula; not a canonical form.
    #[must_use]
    pub fn simplify(&self) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Prop(_) => self.clone(),
            Formula::Not(f) => Formula::not(f.simplify()),
            Formula::And(items) => {
                let mut seen: Vec<Formula> = Vec::new();
                for f in items {
                    let s = f.simplify();
                    match s {
                        Formula::True => {}
                        Formula::False => return Formula::False,
                        other => {
                            if seen.iter().any(|g| *g == Formula::not(other.clone())) {
                                return Formula::False;
                            }
                            if !seen.contains(&other) {
                                seen.push(other);
                            }
                        }
                    }
                }
                Formula::and(seen)
            }
            Formula::Or(items) => {
                let mut seen: Vec<Formula> = Vec::new();
                for f in items {
                    let s = f.simplify();
                    match s {
                        Formula::False => {}
                        Formula::True => return Formula::True,
                        other => {
                            if seen.iter().any(|g| *g == Formula::not(other.clone())) {
                                return Formula::True;
                            }
                            if !seen.contains(&other) {
                                seen.push(other);
                            }
                        }
                    }
                }
                Formula::or(seen)
            }
            Formula::Implies(a, b) => Formula::implies(a.simplify(), b.simplify()),
            Formula::Iff(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                if a == b {
                    Formula::True
                } else {
                    Formula::iff(a, b)
                }
            }
            Formula::Knows(ag, f) => match f.simplify() {
                Formula::True => Formula::True,
                s => Formula::knows(*ag, s),
            },
            Formula::Everyone(g, f) => match f.simplify() {
                Formula::True => Formula::True,
                s => Formula::everyone(*g, s),
            },
            Formula::Common(g, f) => match f.simplify() {
                Formula::True => Formula::True,
                s => Formula::common(*g, s),
            },
            Formula::Distributed(g, f) => match f.simplify() {
                Formula::True => Formula::True,
                s => Formula::distributed(*g, s),
            },
            Formula::Next(f) => match f.simplify() {
                Formula::True => Formula::True,
                Formula::False => Formula::False,
                s => Formula::next(s),
            },
            Formula::Eventually(f) => match f.simplify() {
                Formula::True => Formula::True,
                Formula::False => Formula::False,
                s => Formula::eventually(s),
            },
            Formula::Always(f) => match f.simplify() {
                Formula::True => Formula::True,
                Formula::False => Formula::False,
                s => Formula::always(s),
            },
            Formula::Until(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (_, Formula::True) => Formula::True,
                    (_, Formula::False) => Formula::False,
                    (Formula::False, _) => b,
                    _ => Formula::until(a, b),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Agent, AgentSet, PropId};

    fn p(i: u32) -> Formula {
        Formula::prop(PropId::new(i))
    }

    #[test]
    fn nnf_de_morgan() {
        let f = Formula::not(Formula::and([p(0), p(1)]));
        assert_eq!(
            f.nnf(),
            Formula::or([Formula::not(p(0)), Formula::not(p(1))])
        );
        let g = Formula::not(Formula::or([p(0), p(1)]));
        assert_eq!(
            g.nnf(),
            Formula::and([Formula::not(p(0)), Formula::not(p(1))])
        );
    }

    #[test]
    fn nnf_expands_implication() {
        let f = Formula::Implies(Box::new(p(0)), Box::new(p(1)));
        assert_eq!(f.nnf(), Formula::or([Formula::not(p(0)), p(1)]));
        let g = Formula::not(f);
        assert_eq!(g.nnf(), Formula::and([p(0), Formula::not(p(1))]));
    }

    #[test]
    fn nnf_temporal_duals() {
        let f = Formula::not(Formula::eventually(p(0)));
        assert_eq!(f.nnf(), Formula::always(Formula::not(p(0))));
        let g = Formula::not(Formula::always(p(0)));
        assert_eq!(g.nnf(), Formula::eventually(Formula::not(p(0))));
        let h = Formula::not(Formula::next(p(0)));
        assert_eq!(h.nnf(), Formula::next(Formula::not(p(0))));
    }

    #[test]
    fn nnf_keeps_negated_knowledge() {
        let a = Agent::new(0);
        let f = Formula::not(Formula::knows(a, Formula::not(Formula::not(p(0)))));
        // Inner double negation removed, outer negation kept over K.
        assert_eq!(f.nnf(), Formula::not(Formula::knows(a, p(0))));
    }

    #[test]
    fn nnf_iff_expansion_preserves_props() {
        let f = Formula::Iff(Box::new(p(0)), Box::new(p(1)));
        let n = f.nnf();
        assert!(n.props().contains(&PropId::new(0)));
        assert!(n.props().contains(&PropId::new(1)));
        assert!(!format!("{n}").contains("<->"));
    }

    #[test]
    fn nnf_is_idempotent_on_samples() {
        let a = Agent::new(0);
        let samples = vec![
            Formula::not(Formula::and([p(0), Formula::not(p(1))])),
            Formula::not(Formula::knows(a, Formula::eventually(p(0)))),
            Formula::Iff(Box::new(p(0)), Box::new(Formula::not(p(1)))),
        ];
        for f in samples {
            let once = f.nnf();
            assert_eq!(once.nnf(), once, "nnf not idempotent for {f}");
        }
    }

    #[test]
    fn simplify_folds_constants() {
        let f = Formula::And(vec![p(0), Formula::True, p(0)]);
        assert_eq!(f.simplify(), p(0));
        let g = Formula::Or(vec![p(0), Formula::not(p(0))]);
        assert_eq!(g.simplify(), Formula::True);
        let h = Formula::And(vec![p(0), Formula::not(p(0))]);
        assert_eq!(h.simplify(), Formula::False);
    }

    #[test]
    fn simplify_knowledge_of_truth() {
        let f = Formula::knows(Agent::new(0), Formula::Or(vec![p(0), Formula::True]));
        assert_eq!(f.simplify(), Formula::True);
        let g = Formula::common(AgentSet::all(2), Formula::True);
        assert_eq!(g.simplify(), Formula::True);
    }

    #[test]
    fn simplify_iff_reflexive() {
        let f = Formula::Iff(Box::new(p(0)), Box::new(p(0)));
        assert_eq!(f.simplify(), Formula::True);
    }
}
