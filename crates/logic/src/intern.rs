//! Hash-consed formula interning.
//!
//! A [`FormulaArena`] assigns every structurally distinct (sub)formula a
//! dense [`FormulaId`]; interning a formula interns its whole subtree, so
//! repeated subformulas — a guard and its negation, a `knows_whether`
//! disjunction mentioning the same proposition twice, the shared body of
//! `E_G E_G φ` — collapse to a single node. Evaluators keyed on
//! `FormulaId` (see `kbp_kripke::EvalCache`) then compute each distinct
//! subformula once per model instead of once per syntactic occurrence.
//!
//! Ids are issued in postorder: every node's children have strictly
//! smaller ids, so a pass over `0..len()` visits children before parents.
//!
//! # Example
//!
//! ```
//! use kbp_logic::{Formula, FormulaArena, PropId};
//!
//! let p = Formula::prop(PropId::new(0));
//! let f = Formula::and([p.clone(), Formula::not(p.clone())]);
//!
//! let mut arena = FormulaArena::new();
//! let id = arena.intern(&f);
//! // `p` occurs twice but is stored once; the arena holds p, ¬p, and
//! // the conjunction — three nodes.
//! assert_eq!(arena.len(), 3);
//! assert_eq!(arena.resolve(id), f);
//! ```

use crate::agents::{Agent, AgentSet};
use crate::formula::{Formula, PropId};
use std::collections::HashMap;

/// Identifier of an interned formula inside a [`FormulaArena`].
///
/// Ids are only meaningful relative to the arena that issued them; mixing
/// ids across arenas is a logic error (detected by the range assertion in
/// [`FormulaArena::node`] at best).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FormulaId(u32);

impl FormulaId {
    /// The dense index of this id (`0..arena.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned formula node: the [`Formula`] shape with child subtrees
/// replaced by [`FormulaId`]s into the same arena.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InternedNode {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition.
    Prop(PropId),
    /// Negation.
    Not(FormulaId),
    /// N-ary conjunction.
    And(Vec<FormulaId>),
    /// N-ary disjunction.
    Or(Vec<FormulaId>),
    /// Material implication.
    Implies(FormulaId, FormulaId),
    /// Biconditional.
    Iff(FormulaId, FormulaId),
    /// `K_i φ`.
    Knows(Agent, FormulaId),
    /// `E_G φ`.
    Everyone(AgentSet, FormulaId),
    /// `C_G φ`.
    Common(AgentSet, FormulaId),
    /// `D_G φ`.
    Distributed(AgentSet, FormulaId),
    /// `X φ`.
    Next(FormulaId),
    /// `F φ`.
    Eventually(FormulaId),
    /// `G φ`.
    Always(FormulaId),
    /// `φ U ψ`.
    Until(FormulaId, FormulaId),
}

/// A hash-consing arena of formulas.
///
/// Interning is structural: two formulas that are `==` as ASTs receive the
/// same [`FormulaId`], whether they arrive as subtrees of one formula or
/// as separately interned formulas. The arena only grows; reuse one arena
/// for a whole batch of related formulas (all the guards of a program, all
/// the subformulas of a specification) to maximize sharing.
#[derive(Debug, Clone, Default)]
pub struct FormulaArena {
    nodes: Vec<InternedNode>,
    index: HashMap<InternedNode, FormulaId>,
}

impl FormulaArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        FormulaArena::default()
    }

    /// Number of distinct nodes interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all issued ids in postorder (children before
    /// parents).
    pub fn ids(&self) -> impl Iterator<Item = FormulaId> {
        (0..self.nodes.len() as u32).map(FormulaId)
    }

    /// Interns `formula` and its whole subtree, returning the root id.
    ///
    /// Interning the same structure twice returns the same id and adds no
    /// nodes.
    pub fn intern(&mut self, formula: &Formula) -> FormulaId {
        let node = match formula {
            Formula::True => InternedNode::True,
            Formula::False => InternedNode::False,
            Formula::Prop(p) => InternedNode::Prop(*p),
            Formula::Not(f) => InternedNode::Not(self.intern(f)),
            Formula::And(items) => {
                InternedNode::And(items.iter().map(|f| self.intern(f)).collect())
            }
            Formula::Or(items) => InternedNode::Or(items.iter().map(|f| self.intern(f)).collect()),
            Formula::Implies(a, b) => InternedNode::Implies(self.intern(a), self.intern(b)),
            Formula::Iff(a, b) => InternedNode::Iff(self.intern(a), self.intern(b)),
            Formula::Knows(i, f) => InternedNode::Knows(*i, self.intern(f)),
            Formula::Everyone(g, f) => InternedNode::Everyone(*g, self.intern(f)),
            Formula::Common(g, f) => InternedNode::Common(*g, self.intern(f)),
            Formula::Distributed(g, f) => InternedNode::Distributed(*g, self.intern(f)),
            Formula::Next(f) => InternedNode::Next(self.intern(f)),
            Formula::Eventually(f) => InternedNode::Eventually(self.intern(f)),
            Formula::Always(f) => InternedNode::Always(self.intern(f)),
            Formula::Until(a, b) => InternedNode::Until(self.intern(a), self.intern(b)),
        };
        self.add(node)
    }

    fn add(&mut self, node: InternedNode) -> FormulaId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        // 2^32 distinct nodes cannot be interned before memory is
        // exhausted (each costs tens of bytes); if the count somehow
        // saturates, stop growing and alias to the final node rather than
        // panicking.
        let Ok(raw) = u32::try_from(self.nodes.len()) else {
            return FormulaId(u32::MAX);
        };
        let id = FormulaId(raw);
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    #[must_use]
    pub fn node(&self, id: FormulaId) -> &InternedNode {
        &self.nodes[id.index()]
    }

    /// Calls `visit` on each direct child id of `id`, in syntactic order.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    pub fn visit_children(&self, id: FormulaId, visit: &mut dyn FnMut(FormulaId)) {
        match self.node(id) {
            InternedNode::True | InternedNode::False | InternedNode::Prop(_) => {}
            InternedNode::Not(f)
            | InternedNode::Knows(_, f)
            | InternedNode::Everyone(_, f)
            | InternedNode::Common(_, f)
            | InternedNode::Distributed(_, f)
            | InternedNode::Next(f)
            | InternedNode::Eventually(f)
            | InternedNode::Always(f) => visit(*f),
            InternedNode::And(items) | InternedNode::Or(items) => {
                for f in items {
                    visit(*f);
                }
            }
            InternedNode::Implies(a, b) | InternedNode::Iff(a, b) | InternedNode::Until(a, b) => {
                visit(*a);
                visit(*b);
            }
        }
    }

    /// All ids reachable from `roots` (the roots and their transitive
    /// subformulas), in postorder: children always precede parents.
    ///
    /// Because ids are issued postorder (children strictly smaller), the
    /// result is simply the reachable subset of `0..len()` in ascending
    /// order. Evaluators use this to walk exactly the formulas a batch of
    /// roots needs, even when the arena holds unrelated nodes.
    ///
    /// # Panics
    ///
    /// Panics if any root was not issued by this arena.
    #[must_use]
    pub fn reachable(&self, roots: &[FormulaId]) -> Vec<FormulaId> {
        let mut marked = vec![false; self.nodes.len()];
        let mut stack: Vec<FormulaId> = Vec::new();
        for &root in roots {
            // Range-check here so the panic contract is at the API edge.
            assert!(root.index() < self.nodes.len(), "foreign FormulaId");
            stack.push(root);
        }
        while let Some(id) = stack.pop() {
            if marked[id.index()] {
                continue;
            }
            marked[id.index()] = true;
            self.visit_children(id, &mut |c| stack.push(c));
        }
        marked
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| FormulaId(i as u32))
            .collect()
    }

    /// Reconstructs the exact [`Formula`] AST behind `id` (structural
    /// inverse of [`intern`](Self::intern); no smart-constructor
    /// simplification is applied).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    #[must_use]
    pub fn resolve(&self, id: FormulaId) -> Formula {
        let b = |f: &FormulaId| Box::new(self.resolve(*f));
        match self.node(id) {
            InternedNode::True => Formula::True,
            InternedNode::False => Formula::False,
            InternedNode::Prop(p) => Formula::Prop(*p),
            InternedNode::Not(f) => Formula::Not(b(f)),
            InternedNode::And(items) => {
                Formula::And(items.iter().map(|f| self.resolve(*f)).collect())
            }
            InternedNode::Or(items) => {
                Formula::Or(items.iter().map(|f| self.resolve(*f)).collect())
            }
            InternedNode::Implies(x, y) => Formula::Implies(b(x), b(y)),
            InternedNode::Iff(x, y) => Formula::Iff(b(x), b(y)),
            InternedNode::Knows(i, f) => Formula::Knows(*i, b(f)),
            InternedNode::Everyone(g, f) => Formula::Everyone(*g, b(f)),
            InternedNode::Common(g, f) => Formula::Common(*g, b(f)),
            InternedNode::Distributed(g, f) => Formula::Distributed(*g, b(f)),
            InternedNode::Next(f) => Formula::Next(b(f)),
            InternedNode::Eventually(f) => Formula::Eventually(b(f)),
            InternedNode::Always(f) => Formula::Always(b(f)),
            InternedNode::Until(x, y) => Formula::Until(b(x), b(y)),
        }
    }
}

serde::impl_serde_newtype!(FormulaId(u32));

// `InternedNode` mirrors `Formula` on the wire: variant indices follow
// declaration order and are append-only, because persisted engine
// sessions (kbp-service warm restarts) embed them in arena snapshots.
impl serde::Serialize for InternedNode {
    fn serialize<S: serde::ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeTupleVariant;
        const NAME: &str = "InternedNode";
        fn pair<S: serde::ser::Serializer, A: serde::Serialize, B: serde::Serialize>(
            s: S,
            idx: u32,
            variant: &'static str,
            a: &A,
            b: &B,
        ) -> Result<S::Ok, S::Error> {
            let mut tv = s.serialize_tuple_variant("InternedNode", idx, variant, 2)?;
            tv.serialize_field(a)?;
            tv.serialize_field(b)?;
            tv.end()
        }
        match self {
            InternedNode::True => s.serialize_unit_variant(NAME, 0, "True"),
            InternedNode::False => s.serialize_unit_variant(NAME, 1, "False"),
            InternedNode::Prop(p) => s.serialize_newtype_variant(NAME, 2, "Prop", p),
            InternedNode::Not(f) => s.serialize_newtype_variant(NAME, 3, "Not", f),
            InternedNode::And(fs) => s.serialize_newtype_variant(NAME, 4, "And", fs),
            InternedNode::Or(fs) => s.serialize_newtype_variant(NAME, 5, "Or", fs),
            InternedNode::Implies(a, b) => pair(s, 6, "Implies", a, b),
            InternedNode::Iff(a, b) => pair(s, 7, "Iff", a, b),
            InternedNode::Knows(i, f) => pair(s, 8, "Knows", i, f),
            InternedNode::Everyone(g, f) => pair(s, 9, "Everyone", g, f),
            InternedNode::Common(g, f) => pair(s, 10, "Common", g, f),
            InternedNode::Distributed(g, f) => pair(s, 11, "Distributed", g, f),
            InternedNode::Next(f) => s.serialize_newtype_variant(NAME, 12, "Next", f),
            InternedNode::Eventually(f) => s.serialize_newtype_variant(NAME, 13, "Eventually", f),
            InternedNode::Always(f) => s.serialize_newtype_variant(NAME, 14, "Always", f),
            InternedNode::Until(a, b) => pair(s, 15, "Until", a, b),
        }
    }
}

impl<'de> serde::Deserialize<'de> for InternedNode {
    fn deserialize<D: serde::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use serde::de::{EnumAccess, Error, SeqAccess, VariantAccess, Visitor};
        use std::marker::PhantomData;

        const VARIANTS: &[&str] = &[
            "True",
            "False",
            "Prop",
            "Not",
            "And",
            "Or",
            "Implies",
            "Iff",
            "Knows",
            "Everyone",
            "Common",
            "Distributed",
            "Next",
            "Eventually",
            "Always",
            "Until",
        ];

        struct PairVisitor<A, B>(PhantomData<(A, B)>);
        impl<'de, A: serde::Deserialize<'de>, B: serde::Deserialize<'de>> Visitor<'de>
            for PairVisitor<A, B>
        {
            type Value = (A, B);
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a two-field InternedNode variant")
            }
            fn visit_seq<S: SeqAccess<'de>>(self, mut seq: S) -> Result<(A, B), S::Error> {
                let a = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::custom("missing first variant field"))?;
                let b = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::custom("missing second variant field"))?;
                Ok((a, b))
            }
        }

        struct NodeVisitor;
        impl<'de> Visitor<'de> for NodeVisitor {
            type Value = InternedNode;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("enum InternedNode")
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<InternedNode, A::Error> {
                let (idx, v) = data.variant::<u32>()?;
                Ok(match idx {
                    0 => {
                        v.unit_variant()?;
                        InternedNode::True
                    }
                    1 => {
                        v.unit_variant()?;
                        InternedNode::False
                    }
                    2 => InternedNode::Prop(v.newtype_variant()?),
                    3 => InternedNode::Not(v.newtype_variant()?),
                    4 => InternedNode::And(v.newtype_variant()?),
                    5 => InternedNode::Or(v.newtype_variant()?),
                    6 => {
                        let (a, b) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        InternedNode::Implies(a, b)
                    }
                    7 => {
                        let (a, b) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        InternedNode::Iff(a, b)
                    }
                    8 => {
                        let (i, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        InternedNode::Knows(i, f)
                    }
                    9 => {
                        let (g, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        InternedNode::Everyone(g, f)
                    }
                    10 => {
                        let (g, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        InternedNode::Common(g, f)
                    }
                    11 => {
                        let (g, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        InternedNode::Distributed(g, f)
                    }
                    12 => InternedNode::Next(v.newtype_variant()?),
                    13 => InternedNode::Eventually(v.newtype_variant()?),
                    14 => InternedNode::Always(v.newtype_variant()?),
                    15 => {
                        let (a, b) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        InternedNode::Until(a, b)
                    }
                    other => {
                        return Err(A::Error::custom(format!(
                            "invalid InternedNode variant index {other}"
                        )))
                    }
                })
            }
        }
        d.deserialize_enum("InternedNode", VARIANTS, NodeVisitor)
    }
}

impl FormulaArena {
    /// Rebuilds an arena from a node list in postorder, re-deriving the
    /// hash-consing index.
    ///
    /// Validates the arena invariants a hostile or corrupted byte stream
    /// could violate: every child id must be strictly smaller than its
    /// parent's id (postorder issuance) and no node may appear twice
    /// (hash-consing uniqueness). Returns a description of the first
    /// violation otherwise.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable description when the node
    /// list breaks either invariant.
    pub fn from_nodes(nodes: Vec<InternedNode>) -> Result<Self, String> {
        let mut index = HashMap::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            let mut bad_child = None;
            let check = |f: &FormulaId, bad: &mut Option<usize>| {
                if f.index() >= i && bad.is_none() {
                    *bad = Some(f.index());
                }
            };
            match node {
                InternedNode::True | InternedNode::False | InternedNode::Prop(_) => {}
                InternedNode::Not(f)
                | InternedNode::Knows(_, f)
                | InternedNode::Everyone(_, f)
                | InternedNode::Common(_, f)
                | InternedNode::Distributed(_, f)
                | InternedNode::Next(f)
                | InternedNode::Eventually(f)
                | InternedNode::Always(f) => check(f, &mut bad_child),
                InternedNode::And(items) | InternedNode::Or(items) => {
                    for f in items {
                        check(f, &mut bad_child);
                    }
                }
                InternedNode::Implies(a, b)
                | InternedNode::Iff(a, b)
                | InternedNode::Until(a, b) => {
                    check(a, &mut bad_child);
                    check(b, &mut bad_child);
                }
            }
            if let Some(child) = bad_child {
                return Err(format!(
                    "arena node {i} references child {child} (children must have smaller ids)"
                ));
            }
            let Ok(raw) = u32::try_from(i) else {
                return Err(format!("arena node count {} exceeds u32 ids", nodes.len()));
            };
            if index.insert(node.clone(), FormulaId(raw)).is_some() {
                return Err(format!("arena node {i} duplicates an earlier node"));
            }
        }
        Ok(FormulaArena { nodes, index })
    }

    /// The interned node list in postorder (children before parents).
    ///
    /// Together with [`from_nodes`](Self::from_nodes) this is the
    /// persistence surface of the arena: the index is derived state and
    /// never leaves the process.
    #[must_use]
    pub fn nodes(&self) -> &[InternedNode] {
        &self.nodes
    }
}

// The arena crosses the persistence boundary as its node list alone;
// the hash-consing index is rebuilt (and the postorder invariant
// re-validated) on the way in.
impl serde::Serialize for FormulaArena {
    fn serialize<S: serde::ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_newtype_struct("FormulaArena", &self.nodes)
    }
}

impl<'de> serde::Deserialize<'de> for FormulaArena {
    fn deserialize<D: serde::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use serde::de::{Error, Visitor};
        struct ArenaVisitor;
        impl<'de> Visitor<'de> for ArenaVisitor {
            type Value = FormulaArena;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("newtype struct FormulaArena")
            }
            fn visit_newtype_struct<D: serde::de::Deserializer<'de>>(
                self,
                d: D,
            ) -> Result<FormulaArena, D::Error> {
                let nodes = <Vec<InternedNode> as serde::Deserialize>::deserialize(d)?;
                FormulaArena::from_nodes(nodes).map_err(D::Error::custom)
            }
        }
        d.deserialize_newtype_struct("FormulaArena", ArenaVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_formula, FormulaConfig, SplitMix64};

    fn p(i: u32) -> Formula {
        Formula::prop(PropId::new(i))
    }

    #[test]
    fn shared_subtrees_collapse() {
        let mut arena = FormulaArena::new();
        let guard = Formula::knows(Agent::new(0), p(0));
        let id1 = arena.intern(&guard);
        let id2 = arena.intern(&Formula::not(guard.clone()));
        // ¬(K p) contains K p: interning it adds only the Not node.
        assert_eq!(arena.len(), 3); // p, K p, ¬K p
        assert_eq!(arena.node(id2), &InternedNode::Not(id1));
        // Re-interning is a no-op returning the same id.
        assert_eq!(arena.intern(&guard), id1);
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn children_precede_parents() {
        let mut arena = FormulaArena::new();
        let f = Formula::iff(
            Formula::and([p(0), p(1)]),
            Formula::or([p(0), Formula::not(p(1))]),
        );
        let root = arena.intern(&f);
        assert_eq!(root.index(), arena.len() - 1);
        for id in arena.ids() {
            let ok = match arena.node(id) {
                InternedNode::True | InternedNode::False | InternedNode::Prop(_) => true,
                InternedNode::Not(f)
                | InternedNode::Knows(_, f)
                | InternedNode::Everyone(_, f)
                | InternedNode::Common(_, f)
                | InternedNode::Distributed(_, f)
                | InternedNode::Next(f)
                | InternedNode::Eventually(f)
                | InternedNode::Always(f) => f.index() < id.index(),
                InternedNode::And(items) | InternedNode::Or(items) => {
                    items.iter().all(|f| f.index() < id.index())
                }
                InternedNode::Implies(a, b)
                | InternedNode::Iff(a, b)
                | InternedNode::Until(a, b) => a.index() < id.index() && b.index() < id.index(),
            };
            assert!(ok, "child id >= parent id at {id:?}");
        }
    }

    #[test]
    fn resolve_roundtrips_random_formulas() {
        let mut rng = SplitMix64::new(0xFEED);
        let cfg = FormulaConfig {
            temporal: true,
            ..FormulaConfig::default()
        };
        let mut arena = FormulaArena::new();
        for _ in 0..200 {
            let f = random_formula(&mut rng, &cfg);
            let id = arena.intern(&f);
            assert_eq!(arena.resolve(id), f);
        }
    }

    #[test]
    fn reachable_is_postorder_and_restricted_to_roots() {
        let mut arena = FormulaArena::new();
        let shared = Formula::knows(Agent::new(0), p(0));
        let a = arena.intern(&Formula::not(shared.clone()));
        let _unrelated = arena.intern(&p(7));
        let b = arena.intern(&Formula::and([shared, p(1)]));
        let reach = arena.reachable(&[a, b]);
        // Children precede parents.
        for (pos, &id) in reach.iter().enumerate() {
            arena.visit_children(id, &mut |c| {
                assert!(reach[..pos].contains(&c), "child {c:?} after parent");
            });
        }
        // The unrelated proposition is not visited.
        assert!(!reach.contains(&_unrelated));
        assert!(reach.contains(&a) && reach.contains(&b));
        // p0, K p0, ¬K p0, p1, (K p0 ∧ p1)
        assert_eq!(reach.len(), 5);
        // Empty roots reach nothing.
        assert!(arena.reachable(&[]).is_empty());
    }

    #[test]
    fn from_nodes_roundtrips_and_validates() {
        let mut arena = FormulaArena::new();
        let f = Formula::iff(
            Formula::and([p(0), p(1)]),
            Formula::or([p(0), Formula::not(p(1))]),
        );
        let root = arena.intern(&f);
        let rebuilt = FormulaArena::from_nodes(arena.nodes().to_vec()).expect("valid nodes");
        assert_eq!(rebuilt.len(), arena.len());
        // The rebuilt index must agree: re-interning finds the same id.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.intern(&f), root);
        assert_eq!(rebuilt.len(), arena.len());

        // Forward reference (child id >= parent id) is rejected.
        let bad = vec![InternedNode::Not(FormulaId(0))];
        assert!(FormulaArena::from_nodes(bad).is_err());
        let bad = vec![
            InternedNode::Prop(PropId::new(0)),
            InternedNode::Not(FormulaId(2)),
        ];
        assert!(FormulaArena::from_nodes(bad).is_err());

        // Duplicate nodes break hash-consing and are rejected.
        let dup = vec![
            InternedNode::Prop(PropId::new(0)),
            InternedNode::Prop(PropId::new(0)),
        ];
        assert!(FormulaArena::from_nodes(dup).is_err());
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let mut arena = FormulaArena::new();
        let a = arena.intern(&Formula::Implies(Box::new(p(0)), Box::new(p(1))));
        let b = arena.intern(&Formula::Implies(Box::new(p(1)), Box::new(p(0))));
        assert_ne!(a, b);
        // Modal wrapper identity distinguishes agents and groups.
        let k0 = arena.intern(&Formula::knows(Agent::new(0), p(0)));
        let k1 = arena.intern(&Formula::knows(Agent::new(1), p(0)));
        assert_ne!(k0, k1);
    }
}
