//! The epistemic–temporal formula AST.

use crate::agents::{Agent, AgentSet};
use crate::vocabulary::Vocabulary;
use std::fmt;

/// A proposition identifier, a dense index assigned by a
/// [`Vocabulary`](crate::Vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropId(u32);

impl PropId {
    /// Creates a proposition id from a raw index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        PropId(index)
    }

    /// The dense index of this proposition.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PropId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A formula of epistemic–temporal logic.
///
/// The propositional fragment is `True`, `False`, [`Prop`](Formula::Prop)
/// and the usual connectives (with n-ary conjunction and disjunction). The
/// epistemic modalities are `K_i` ([`Knows`](Formula::Knows)), `E_G`
/// ([`Everyone`](Formula::Everyone)), `C_G` ([`Common`](Formula::Common))
/// and `D_G` ([`Distributed`](Formula::Distributed)). The linear-time
/// operators [`Next`](Formula::Next), [`Eventually`](Formula::Eventually),
/// [`Always`](Formula::Always) and [`Until`](Formula::Until) speak about the
/// rest of a run.
///
/// Prefer the smart constructors ([`Formula::and`], [`Formula::not`], …)
/// over building variants directly: they flatten and simplify trivial cases
/// so structural tests stay predictable.
///
/// # Example
///
/// ```
/// use kbp_logic::{Formula, PropId, Agent};
///
/// let p = Formula::prop(PropId::new(0));
/// let f = Formula::and([p.clone(), Formula::True]);
/// assert_eq!(f, p); // `and` drops neutral elements
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition.
    Prop(PropId),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (invariant: `len >= 2` when built via [`Formula::and`]).
    And(Vec<Formula>),
    /// N-ary disjunction (invariant: `len >= 2` when built via [`Formula::or`]).
    Or(Vec<Formula>),
    /// Material implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional.
    Iff(Box<Formula>, Box<Formula>),
    /// `K_i φ` — agent `i` knows `φ`.
    Knows(Agent, Box<Formula>),
    /// `E_G φ` — every agent in `G` knows `φ`.
    Everyone(AgentSet, Box<Formula>),
    /// `C_G φ` — `φ` is common knowledge among `G`.
    Common(AgentSet, Box<Formula>),
    /// `D_G φ` — `φ` is distributed knowledge among `G`.
    Distributed(AgentSet, Box<Formula>),
    /// `X φ` — `φ` holds at the next point of the run.
    Next(Box<Formula>),
    /// `F φ` — `φ` holds at some present-or-future point of the run.
    Eventually(Box<Formula>),
    /// `G φ` — `φ` holds at every present-or-future point of the run.
    Always(Box<Formula>),
    /// `φ U ψ` — `ψ` eventually holds and `φ` holds until then.
    Until(Box<Formula>, Box<Formula>),
}

impl Formula {
    // ---- constructors ------------------------------------------------

    /// An atomic proposition.
    #[must_use]
    pub fn prop(p: PropId) -> Formula {
        Formula::Prop(p)
    }

    /// Negation, collapsing double negations and constants.
    ///
    /// (A static constructor by design, like the other connectives — not
    /// the `std::ops::Not` trait method.)
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction; flattens nested `And`s, drops `true`, and
    /// short-circuits on `false`.
    #[must_use]
    pub fn and<I: IntoIterator<Item = Formula>>(conjuncts: I) -> Formula {
        let mut out = Vec::new();
        for c in conjuncts {
            match c {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(items) => out.extend(items),
                other => out.push(other),
            }
        }
        match (out.pop(), out.is_empty()) {
            (None, _) => Formula::True,
            (Some(single), true) => single,
            (Some(last), false) => {
                out.push(last);
                Formula::And(out)
            }
        }
    }

    /// Disjunction; flattens nested `Or`s, drops `false`, and
    /// short-circuits on `true`.
    #[must_use]
    pub fn or<I: IntoIterator<Item = Formula>>(disjuncts: I) -> Formula {
        let mut out = Vec::new();
        for d in disjuncts {
            match d {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(items) => out.extend(items),
                other => out.push(other),
            }
        }
        match (out.pop(), out.is_empty()) {
            (None, _) => Formula::False,
            (Some(single), true) => single,
            (Some(last), false) => {
                out.push(last);
                Formula::Or(out)
            }
        }
    }

    /// Material implication `a -> b`, simplifying constant antecedents and
    /// consequents.
    #[must_use]
    pub fn implies(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::True, b) => b,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (a, Formula::False) => Formula::not(a),
            (a, b) => Formula::Implies(Box::new(a), Box::new(b)),
        }
    }

    /// Biconditional `a <-> b`, simplifying constants.
    #[must_use]
    pub fn iff(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::True, b) => b,
            (a, Formula::True) => a,
            (Formula::False, b) => Formula::not(b),
            (a, Formula::False) => Formula::not(a),
            (a, b) => Formula::Iff(Box::new(a), Box::new(b)),
        }
    }

    /// `K_i φ` — knowledge of a single agent.
    #[must_use]
    pub fn knows(agent: Agent, f: Formula) -> Formula {
        Formula::Knows(agent, Box::new(f))
    }

    /// `¬K_i ¬φ` — agent `i` considers `φ` possible.
    #[must_use]
    pub fn possible(agent: Agent, f: Formula) -> Formula {
        Formula::not(Formula::knows(agent, Formula::not(f)))
    }

    /// `K_i φ ∨ K_i ¬φ` — agent `i` knows whether `φ`.
    #[must_use]
    pub fn knows_whether(agent: Agent, f: Formula) -> Formula {
        Formula::or([
            Formula::knows(agent, f.clone()),
            Formula::knows(agent, Formula::not(f)),
        ])
    }

    /// `E_G φ`. A singleton group reduces to `K_i φ`.
    #[must_use]
    pub fn everyone(group: AgentSet, f: Formula) -> Formula {
        match (group.len(), group.iter().next()) {
            (1, Some(solo)) => Formula::knows(solo, f),
            _ => Formula::Everyone(group, Box::new(f)),
        }
    }

    /// `C_G φ`.
    #[must_use]
    pub fn common(group: AgentSet, f: Formula) -> Formula {
        Formula::Common(group, Box::new(f))
    }

    /// `D_G φ`. A singleton group reduces to `K_i φ`.
    #[must_use]
    pub fn distributed(group: AgentSet, f: Formula) -> Formula {
        match (group.len(), group.iter().next()) {
            (1, Some(solo)) => Formula::knows(solo, f),
            _ => Formula::Distributed(group, Box::new(f)),
        }
    }

    /// `X φ`.
    #[must_use]
    pub fn next(f: Formula) -> Formula {
        Formula::Next(Box::new(f))
    }

    /// `F φ`.
    #[must_use]
    pub fn eventually(f: Formula) -> Formula {
        Formula::Eventually(Box::new(f))
    }

    /// `G φ`.
    #[must_use]
    pub fn always(f: Formula) -> Formula {
        Formula::Always(Box::new(f))
    }

    /// `φ U ψ`.
    #[must_use]
    pub fn until(a: Formula, b: Formula) -> Formula {
        Formula::Until(Box::new(a), Box::new(b))
    }

    // ---- structural queries -------------------------------------------

    /// Direct subformulas, left to right.
    #[must_use]
    pub fn children(&self) -> Vec<&Formula> {
        match self {
            Formula::True | Formula::False | Formula::Prop(_) => Vec::new(),
            Formula::Not(f)
            | Formula::Knows(_, f)
            | Formula::Everyone(_, f)
            | Formula::Common(_, f)
            | Formula::Distributed(_, f)
            | Formula::Next(f)
            | Formula::Eventually(f)
            | Formula::Always(f) => vec![f],
            Formula::And(items) | Formula::Or(items) => items.iter().collect(),
            Formula::Implies(a, b) | Formula::Iff(a, b) | Formula::Until(a, b) => {
                vec![a, b]
            }
        }
    }

    /// Iterates over all subformulas (including `self`), pre-order.
    #[must_use]
    pub fn subformulas(&self) -> SubformulaIter<'_> {
        SubformulaIter { stack: vec![self] }
    }

    /// Number of connectives, modalities and atoms in the formula.
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Height of the syntax tree (an atom has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Agents mentioned at this node only (not in subformulas).
    #[must_use]
    pub fn top_agents(&self) -> AgentSet {
        match self {
            Formula::Knows(a, _) => AgentSet::singleton(*a),
            Formula::Everyone(g, _) | Formula::Common(g, _) | Formula::Distributed(g, _) => *g,
            _ => AgentSet::EMPTY,
        }
    }

    /// All agents mentioned anywhere in the formula.
    #[must_use]
    pub fn agents(&self) -> AgentSet {
        self.subformulas()
            .fold(AgentSet::EMPTY, |acc, f| acc.union(f.top_agents()))
    }

    /// All propositions mentioned anywhere in the formula, sorted and
    /// deduplicated.
    #[must_use]
    pub fn props(&self) -> Vec<PropId> {
        let mut out: Vec<PropId> = self
            .subformulas()
            .filter_map(|f| match f {
                Formula::Prop(p) => Some(*p),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the formula contains no modal operator at all — it speaks
    /// only about the current global state ("objective" in the KBP
    /// literature).
    #[must_use]
    pub fn is_objective(&self) -> bool {
        self.subformulas().all(|f| {
            !matches!(
                f,
                Formula::Knows(..)
                    | Formula::Everyone(..)
                    | Formula::Common(..)
                    | Formula::Distributed(..)
                    | Formula::Next(..)
                    | Formula::Eventually(..)
                    | Formula::Always(..)
                    | Formula::Until(..)
            )
        })
    }

    /// Whether the formula contains a temporal operator anywhere.
    #[must_use]
    pub fn has_temporal(&self) -> bool {
        self.subformulas().any(|f| {
            matches!(
                f,
                Formula::Next(..)
                    | Formula::Eventually(..)
                    | Formula::Always(..)
                    | Formula::Until(..)
            )
        })
    }

    /// Whether the formula contains an epistemic operator anywhere.
    #[must_use]
    pub fn has_epistemic(&self) -> bool {
        self.subformulas().any(|f| {
            matches!(
                f,
                Formula::Knows(..)
                    | Formula::Everyone(..)
                    | Formula::Common(..)
                    | Formula::Distributed(..)
            )
        })
    }

    /// Maximum nesting depth of epistemic operators (`0` for a purely
    /// propositional/temporal formula).
    #[must_use]
    pub fn modal_depth(&self) -> usize {
        let child_max = self
            .children()
            .iter()
            .map(|c| c.modal_depth())
            .max()
            .unwrap_or(0);
        match self {
            Formula::Knows(..)
            | Formula::Everyone(..)
            | Formula::Common(..)
            | Formula::Distributed(..) => child_max + 1,
            _ => child_max,
        }
    }

    /// Whether the truth of the formula at a point is determined by agent
    /// `i`'s local state alone (FHMV call such tests "local to `i`").
    ///
    /// This is the syntactic check used when validating a knowledge-based
    /// program: a formula is `i`-subjective if it is a Boolean combination
    /// of formulas of the form `K_i ψ` and `C_G ψ` with `i ∈ G` (both are
    /// semantically determined by `i`'s local state in an S5 system).
    ///
    /// Bare propositions are rejected; use
    /// [`is_subjective_for_with`](Self::is_subjective_for_with) to allow
    /// propositions known to be local to the agent.
    #[must_use]
    pub fn is_subjective_for(&self, agent: Agent) -> bool {
        self.is_subjective_for_with(agent, |_| false)
    }

    /// Like [`is_subjective_for`](Self::is_subjective_for), additionally
    /// accepting any proposition for which `is_local_prop` returns `true`
    /// (e.g. a proposition whose valuation is a function of the agent's
    /// local state).
    pub fn is_subjective_for_with(
        &self,
        agent: Agent,
        is_local_prop: impl Fn(PropId) -> bool + Copy,
    ) -> bool {
        match self {
            Formula::True | Formula::False => true,
            Formula::Prop(p) => is_local_prop(*p),
            Formula::Not(f) => f.is_subjective_for_with(agent, is_local_prop),
            Formula::And(items) | Formula::Or(items) => items
                .iter()
                .all(|f| f.is_subjective_for_with(agent, is_local_prop)),
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.is_subjective_for_with(agent, is_local_prop)
                    && b.is_subjective_for_with(agent, is_local_prop)
            }
            Formula::Knows(a, _) => *a == agent,
            Formula::Common(g, _) => g.contains(agent),
            // E_G and D_G for non-singleton G are not determined by a single
            // agent's local state; singletons are normalised to K by the
            // smart constructors but handle raw variants conservatively.
            Formula::Everyone(g, _) | Formula::Distributed(g, _) => {
                g.len() == 1 && g.contains(agent)
            }
            Formula::Next(_) | Formula::Eventually(_) | Formula::Always(_) | Formula::Until(..) => {
                false
            }
        }
    }

    /// Whether every temporal operator occurs *inside* some epistemic
    /// operator or not at all — i.e. the formula's truth at `(r, m)` is a
    /// Boolean combination of current-state facts and knowledge facts.
    ///
    /// Knowledge-based-program guards must have their temporal operators
    /// under a `K`; a bare top-level `F p` is not a meaningful guard.
    #[must_use]
    pub fn temporal_under_epistemic(&self) -> bool {
        fn go(f: &Formula) -> bool {
            match f {
                Formula::Next(_)
                | Formula::Eventually(_)
                | Formula::Always(_)
                | Formula::Until(..) => false,
                Formula::Knows(..)
                | Formula::Everyone(..)
                | Formula::Common(..)
                | Formula::Distributed(..) => true,
                _ => f.children().into_iter().all(go),
            }
        }
        go(self)
    }

    /// Renames every agent according to `rename` — in `K_i` and in every
    /// group modality, member by member (groups simply collect the
    /// images, so a non-injective renaming shrinks them). Useful when
    /// composing scenarios whose vocabularies assign different indices to
    /// the "same" agent.
    #[must_use]
    pub fn map_agents(&self, rename: &impl Fn(Agent) -> Agent) -> Formula {
        let map_group = |g: AgentSet| -> AgentSet { g.iter().map(rename).collect() };
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Prop(p) => Formula::Prop(*p),
            Formula::Not(f) => Formula::not(f.map_agents(rename)),
            Formula::And(items) => Formula::and(items.iter().map(|f| f.map_agents(rename))),
            Formula::Or(items) => Formula::or(items.iter().map(|f| f.map_agents(rename))),
            Formula::Implies(a, b) => Formula::implies(a.map_agents(rename), b.map_agents(rename)),
            Formula::Iff(a, b) => Formula::iff(a.map_agents(rename), b.map_agents(rename)),
            Formula::Knows(a, f) => Formula::knows(rename(*a), f.map_agents(rename)),
            Formula::Everyone(g, f) => Formula::everyone(map_group(*g), f.map_agents(rename)),
            Formula::Common(g, f) => Formula::common(map_group(*g), f.map_agents(rename)),
            Formula::Distributed(g, f) => Formula::distributed(map_group(*g), f.map_agents(rename)),
            Formula::Next(f) => Formula::next(f.map_agents(rename)),
            Formula::Eventually(f) => Formula::eventually(f.map_agents(rename)),
            Formula::Always(f) => Formula::always(f.map_agents(rename)),
            Formula::Until(a, b) => Formula::until(a.map_agents(rename), b.map_agents(rename)),
        }
    }

    /// Renames every proposition according to `rename` (a special case of
    /// [`substitute`](Self::substitute) that preserves shape exactly).
    #[must_use]
    pub fn map_props(&self, rename: &impl Fn(PropId) -> PropId) -> Formula {
        self.substitute(&|p| Some(Formula::Prop(rename(p))))
    }

    /// Replaces every occurrence of each proposition by the formula given
    /// by `subst` (propositions mapped to `None` are left unchanged).
    #[must_use]
    pub fn substitute(&self, subst: &impl Fn(PropId) -> Option<Formula>) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Prop(p) => subst(*p).unwrap_or(Formula::Prop(*p)),
            Formula::Not(f) => Formula::not(f.substitute(subst)),
            Formula::And(items) => Formula::and(items.iter().map(|f| f.substitute(subst))),
            Formula::Or(items) => Formula::or(items.iter().map(|f| f.substitute(subst))),
            Formula::Implies(a, b) => Formula::implies(a.substitute(subst), b.substitute(subst)),
            Formula::Iff(a, b) => Formula::iff(a.substitute(subst), b.substitute(subst)),
            Formula::Knows(a, f) => Formula::knows(*a, f.substitute(subst)),
            Formula::Everyone(g, f) => Formula::everyone(*g, f.substitute(subst)),
            Formula::Common(g, f) => Formula::common(*g, f.substitute(subst)),
            Formula::Distributed(g, f) => Formula::distributed(*g, f.substitute(subst)),
            Formula::Next(f) => Formula::next(f.substitute(subst)),
            Formula::Eventually(f) => Formula::eventually(f.substitute(subst)),
            Formula::Always(f) => Formula::always(f.substitute(subst)),
            Formula::Until(a, b) => Formula::until(a.substitute(subst), b.substitute(subst)),
        }
    }

    /// Renders the formula using the names in `voc` (falls back to raw ids
    /// for unknown propositions/agents).
    #[must_use]
    pub fn to_string_with(&self, voc: &Vocabulary) -> String {
        let mut s = String::new();
        self.fmt_prec(&mut s, 0, Some(voc));
        s
    }

    fn prec(&self) -> u8 {
        match self {
            Formula::Iff(..) => 1,
            Formula::Implies(..) => 2,
            Formula::Or(..) => 3,
            Formula::And(..) => 4,
            Formula::Until(..) => 5,
            Formula::Not(..)
            | Formula::Knows(..)
            | Formula::Everyone(..)
            | Formula::Common(..)
            | Formula::Distributed(..)
            | Formula::Next(..)
            | Formula::Eventually(..)
            | Formula::Always(..) => 6,
            Formula::True | Formula::False | Formula::Prop(_) => 7,
        }
    }

    fn group_str(g: AgentSet, voc: Option<&Vocabulary>) -> String {
        let mut s = String::from("{");
        for (k, a) in g.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            match voc {
                Some(v) if a.index() < v.agent_count() => s.push_str(v.agent_name(a)),
                _ => s.push_str(&a.to_string()),
            }
        }
        s.push('}');
        s
    }

    fn fmt_prec(&self, out: &mut String, parent_prec: u8, voc: Option<&Vocabulary>) {
        let my_prec = self.prec();
        let need_parens = my_prec < parent_prec;
        if need_parens {
            out.push('(');
        }
        match self {
            Formula::True => out.push_str("true"),
            Formula::False => out.push_str("false"),
            Formula::Prop(p) => match voc {
                Some(v) if p.index() < v.prop_count() => out.push_str(v.prop_name(*p)),
                _ => out.push_str(&p.to_string()),
            },
            Formula::Not(f) => {
                out.push('!');
                f.fmt_prec(out, my_prec + 1, voc);
            }
            Formula::And(items) => {
                for (k, f) in items.iter().enumerate() {
                    if k > 0 {
                        out.push_str(" & ");
                    }
                    f.fmt_prec(out, my_prec + 1, voc);
                }
            }
            Formula::Or(items) => {
                for (k, f) in items.iter().enumerate() {
                    if k > 0 {
                        out.push_str(" | ");
                    }
                    f.fmt_prec(out, my_prec + 1, voc);
                }
            }
            Formula::Implies(a, b) => {
                a.fmt_prec(out, my_prec + 1, voc);
                out.push_str(" -> ");
                b.fmt_prec(out, my_prec, voc);
            }
            Formula::Iff(a, b) => {
                a.fmt_prec(out, my_prec + 1, voc);
                out.push_str(" <-> ");
                b.fmt_prec(out, my_prec, voc);
            }
            Formula::Knows(a, f) => {
                out.push_str("K{");
                match voc {
                    Some(v) if a.index() < v.agent_count() => out.push_str(v.agent_name(*a)),
                    _ => out.push_str(&a.to_string()),
                }
                out.push_str("} ");
                f.fmt_prec(out, my_prec, voc);
            }
            Formula::Everyone(g, f) => {
                out.push('E');
                out.push_str(&Self::group_str(*g, voc));
                out.push(' ');
                f.fmt_prec(out, my_prec, voc);
            }
            Formula::Common(g, f) => {
                out.push('C');
                out.push_str(&Self::group_str(*g, voc));
                out.push(' ');
                f.fmt_prec(out, my_prec, voc);
            }
            Formula::Distributed(g, f) => {
                out.push('D');
                out.push_str(&Self::group_str(*g, voc));
                out.push(' ');
                f.fmt_prec(out, my_prec, voc);
            }
            Formula::Next(f) => {
                out.push_str("X ");
                f.fmt_prec(out, my_prec, voc);
            }
            Formula::Eventually(f) => {
                out.push_str("F ");
                f.fmt_prec(out, my_prec, voc);
            }
            Formula::Always(f) => {
                out.push_str("G ");
                f.fmt_prec(out, my_prec, voc);
            }
            Formula::Until(a, b) => {
                a.fmt_prec(out, my_prec + 1, voc);
                out.push_str(" U ");
                b.fmt_prec(out, my_prec, voc);
            }
        }
        if need_parens {
            out.push(')');
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.fmt_prec(&mut s, 0, None);
        f.write_str(&s)
    }
}

impl From<PropId> for Formula {
    fn from(p: PropId) -> Formula {
        Formula::Prop(p)
    }
}

/// Pre-order iterator over subformulas; see [`Formula::subformulas`].
#[derive(Debug, Clone)]
pub struct SubformulaIter<'a> {
    stack: Vec<&'a Formula>,
}

impl<'a> Iterator for SubformulaIter<'a> {
    type Item = &'a Formula;

    fn next(&mut self) -> Option<&'a Formula> {
        let f = self.stack.pop()?;
        let children = f.children();
        self.stack.extend(children.into_iter().rev());
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Formula {
        Formula::prop(PropId::new(i))
    }

    #[test]
    fn smart_and_flattens_and_short_circuits() {
        let f = Formula::and([p(0), Formula::and([p(1), p(2)]), Formula::True]);
        assert_eq!(f, Formula::And(vec![p(0), p(1), p(2)]));
        assert_eq!(Formula::and([p(0), Formula::False]), Formula::False);
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::and([p(3)]), p(3));
    }

    #[test]
    fn smart_or_flattens_and_short_circuits() {
        let f = Formula::or([p(0), Formula::or([p(1), p(2)]), Formula::False]);
        assert_eq!(f, Formula::Or(vec![p(0), p(1), p(2)]));
        assert_eq!(Formula::or([p(0), Formula::True]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
    }

    #[test]
    fn not_collapses() {
        assert_eq!(Formula::not(Formula::not(p(0))), p(0));
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn implies_simplifies_constants() {
        assert_eq!(Formula::implies(Formula::True, p(0)), p(0));
        assert_eq!(Formula::implies(Formula::False, p(0)), Formula::True);
        assert_eq!(Formula::implies(p(0), Formula::False), Formula::not(p(0)));
    }

    #[test]
    fn singleton_groups_reduce_to_k() {
        let a = Agent::new(2);
        let g = AgentSet::singleton(a);
        assert_eq!(Formula::everyone(g, p(0)), Formula::knows(a, p(0)));
        assert_eq!(Formula::distributed(g, p(0)), Formula::knows(a, p(0)));
    }

    #[test]
    fn size_and_depth() {
        let f = Formula::knows(Agent::new(0), Formula::and([p(0), p(1)]));
        assert_eq!(f.size(), 4);
        assert_eq!(f.depth(), 3);
        assert_eq!(f.modal_depth(), 1);
    }

    #[test]
    fn props_sorted_dedup() {
        let f = Formula::and([p(3), p(1), p(3)]);
        assert_eq!(
            f.props(),
            vec![PropId::new(1), PropId::new(3)],
            "sorted, deduplicated"
        );
    }

    #[test]
    fn agents_collected_from_all_levels() {
        let f = Formula::knows(
            Agent::new(0),
            Formula::common(AgentSet::all(3), Formula::knows(Agent::new(5), p(0))),
        );
        let ags = f.agents();
        assert!(ags.contains(Agent::new(0)));
        assert!(ags.contains(Agent::new(2)));
        assert!(ags.contains(Agent::new(5)));
        assert_eq!(ags.len(), 4); // {0, 1, 2, 5}
    }

    #[test]
    fn objectivity_and_fragments() {
        assert!(Formula::and([p(0), Formula::not(p(1))]).is_objective());
        assert!(!Formula::knows(Agent::new(0), p(0)).is_objective());
        assert!(Formula::eventually(p(0)).has_temporal());
        assert!(!Formula::eventually(p(0)).has_epistemic());
        assert!(Formula::knows(Agent::new(0), p(0)).has_epistemic());
    }

    #[test]
    fn subjectivity_accepts_own_knowledge_only() {
        let me = Agent::new(0);
        let other = Agent::new(1);
        assert!(Formula::knows(me, p(0)).is_subjective_for(me));
        assert!(!Formula::knows(other, p(0)).is_subjective_for(me));
        assert!(Formula::not(Formula::knows(me, p(0))).is_subjective_for(me));
        // Bare propositions are not subjective by default...
        assert!(!p(0).is_subjective_for(me));
        // ...unless declared local.
        assert!(p(0).is_subjective_for_with(me, |_| true));
    }

    #[test]
    fn subjectivity_of_common_knowledge() {
        let me = Agent::new(0);
        let g = AgentSet::all(2);
        assert!(Formula::common(g, p(0)).is_subjective_for(me));
        let g_without_me: AgentSet = [Agent::new(1), Agent::new(2)].into_iter().collect();
        assert!(!Formula::common(g_without_me, p(0)).is_subjective_for(me));
    }

    #[test]
    fn subjectivity_rejects_bare_temporal() {
        let me = Agent::new(0);
        assert!(!Formula::eventually(p(0)).is_subjective_for(me));
        // ... but accepts temporal under the agent's own K.
        assert!(Formula::knows(me, Formula::eventually(p(0))).is_subjective_for(me));
    }

    #[test]
    fn temporal_under_epistemic_check() {
        let me = Agent::new(0);
        assert!(Formula::knows(me, Formula::eventually(p(0))).temporal_under_epistemic());
        assert!(!Formula::eventually(Formula::knows(me, p(0))).temporal_under_epistemic());
        assert!(p(0).temporal_under_epistemic());
    }

    #[test]
    fn map_agents_renames_everywhere() {
        let f = Formula::knows(
            Agent::new(0),
            Formula::common(AgentSet::all(2), Formula::knows(Agent::new(1), p(0))),
        );
        let shifted = f.map_agents(&|a| Agent::new(a.index() + 2));
        let expected = Formula::knows(
            Agent::new(2),
            Formula::common(
                [Agent::new(2), Agent::new(3)].into_iter().collect(),
                Formula::knows(Agent::new(3), p(0)),
            ),
        );
        assert_eq!(shifted, expected);
        // Identity renaming is the identity.
        assert_eq!(f.map_agents(&|a| a), f);
    }

    #[test]
    fn map_agents_can_merge_groups() {
        let g: AgentSet = [Agent::new(0), Agent::new(1)].into_iter().collect();
        let f = Formula::common(g, p(0));
        let merged = f.map_agents(&|_| Agent::new(5));
        assert_eq!(
            merged,
            Formula::common(AgentSet::singleton(Agent::new(5)), p(0))
        );
    }

    #[test]
    fn map_props_preserves_shape() {
        let f = Formula::and([p(0), Formula::knows(Agent::new(0), Formula::not(p(1)))]);
        let shifted = f.map_props(&|q| PropId::new(q.index() as u32 + 10));
        assert_eq!(
            shifted,
            Formula::and([p(10), Formula::knows(Agent::new(0), Formula::not(p(11)))])
        );
        assert_eq!(shifted.size(), f.size());
    }

    #[test]
    fn substitution_replaces_props() {
        let f = Formula::and([p(0), Formula::knows(Agent::new(0), p(1))]);
        let g = f.substitute(&|q: PropId| {
            if q == PropId::new(1) {
                Some(Formula::not(p(2)))
            } else {
                None
            }
        });
        assert_eq!(
            g,
            Formula::and([p(0), Formula::knows(Agent::new(0), Formula::not(p(2)))])
        );
    }

    #[test]
    fn subformula_iterator_is_preorder() {
        let f = Formula::and([p(0), Formula::not(p(1))]);
        let kinds: Vec<String> = f.subformulas().map(|s| format!("{s}")).collect();
        assert_eq!(kinds, vec!["p0 & !p1", "p0", "!p1", "p1"]);
    }

    #[test]
    fn display_precedence() {
        let f = Formula::or([Formula::and([p(0), p(1)]), p(2)]);
        assert_eq!(f.to_string(), "p0 & p1 | p2");
        let g = Formula::and([Formula::or([p(0), p(1)]), p(2)]);
        assert_eq!(g.to_string(), "(p0 | p1) & p2");
        let h = Formula::not(Formula::and([p(0), p(1)]));
        assert_eq!(h.to_string(), "!(p0 & p1)");
        let k = Formula::knows(Agent::new(1), Formula::implies(p(0), p(1)));
        assert_eq!(k.to_string(), "K{a1} (p0 -> p1)");
    }

    #[test]
    fn display_with_vocabulary_names() {
        let mut voc = Vocabulary::new();
        let alice = voc.add_agent("alice");
        let rain = voc.add_prop("rain");
        let f = Formula::knows(alice, Formula::prop(rain));
        assert_eq!(f.to_string_with(&voc), "K{alice} rain");
    }
}

serde::impl_serde_newtype!(PropId(u32));

// `Formula` is the one enum crossing the serialization boundary; its
// variant indices follow declaration order and are part of the wire
// format — append-only.
impl serde::Serialize for Formula {
    fn serialize<S: serde::ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeTupleVariant;
        const NAME: &str = "Formula";
        fn pair<S: serde::ser::Serializer, A: serde::Serialize, B: serde::Serialize>(
            s: S,
            idx: u32,
            variant: &'static str,
            a: &A,
            b: &B,
        ) -> Result<S::Ok, S::Error> {
            let mut tv = s.serialize_tuple_variant("Formula", idx, variant, 2)?;
            tv.serialize_field(a)?;
            tv.serialize_field(b)?;
            tv.end()
        }
        match self {
            Formula::True => s.serialize_unit_variant(NAME, 0, "True"),
            Formula::False => s.serialize_unit_variant(NAME, 1, "False"),
            Formula::Prop(p) => s.serialize_newtype_variant(NAME, 2, "Prop", p),
            Formula::Not(f) => s.serialize_newtype_variant(NAME, 3, "Not", f),
            Formula::And(fs) => s.serialize_newtype_variant(NAME, 4, "And", fs),
            Formula::Or(fs) => s.serialize_newtype_variant(NAME, 5, "Or", fs),
            Formula::Implies(a, b) => pair(s, 6, "Implies", a, b),
            Formula::Iff(a, b) => pair(s, 7, "Iff", a, b),
            Formula::Knows(i, f) => pair(s, 8, "Knows", i, f),
            Formula::Everyone(g, f) => pair(s, 9, "Everyone", g, f),
            Formula::Common(g, f) => pair(s, 10, "Common", g, f),
            Formula::Distributed(g, f) => pair(s, 11, "Distributed", g, f),
            Formula::Next(f) => s.serialize_newtype_variant(NAME, 12, "Next", f),
            Formula::Eventually(f) => s.serialize_newtype_variant(NAME, 13, "Eventually", f),
            Formula::Always(f) => s.serialize_newtype_variant(NAME, 14, "Always", f),
            Formula::Until(a, b) => pair(s, 15, "Until", a, b),
        }
    }
}

impl<'de> serde::Deserialize<'de> for Formula {
    fn deserialize<D: serde::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use serde::de::{EnumAccess, Error, SeqAccess, VariantAccess, Visitor};
        use std::marker::PhantomData;

        const VARIANTS: &[&str] = &[
            "True",
            "False",
            "Prop",
            "Not",
            "And",
            "Or",
            "Implies",
            "Iff",
            "Knows",
            "Everyone",
            "Common",
            "Distributed",
            "Next",
            "Eventually",
            "Always",
            "Until",
        ];

        struct PairVisitor<A, B>(PhantomData<(A, B)>);
        impl<'de, A: serde::Deserialize<'de>, B: serde::Deserialize<'de>> Visitor<'de>
            for PairVisitor<A, B>
        {
            type Value = (A, B);
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a two-field Formula variant")
            }
            fn visit_seq<S: SeqAccess<'de>>(self, mut seq: S) -> Result<(A, B), S::Error> {
                let a = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::custom("missing first variant field"))?;
                let b = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::custom("missing second variant field"))?;
                Ok((a, b))
            }
        }

        struct FormulaVisitor;
        impl<'de> Visitor<'de> for FormulaVisitor {
            type Value = Formula;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("enum Formula")
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Formula, A::Error> {
                let (idx, v) = data.variant::<u32>()?;
                Ok(match idx {
                    0 => {
                        v.unit_variant()?;
                        Formula::True
                    }
                    1 => {
                        v.unit_variant()?;
                        Formula::False
                    }
                    2 => Formula::Prop(v.newtype_variant()?),
                    3 => Formula::Not(v.newtype_variant()?),
                    4 => Formula::And(v.newtype_variant()?),
                    5 => Formula::Or(v.newtype_variant()?),
                    6 => {
                        let (a, b) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        Formula::Implies(a, b)
                    }
                    7 => {
                        let (a, b) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        Formula::Iff(a, b)
                    }
                    8 => {
                        let (i, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        Formula::Knows(i, f)
                    }
                    9 => {
                        let (g, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        Formula::Everyone(g, f)
                    }
                    10 => {
                        let (g, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        Formula::Common(g, f)
                    }
                    11 => {
                        let (g, f) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        Formula::Distributed(g, f)
                    }
                    12 => Formula::Next(v.newtype_variant()?),
                    13 => Formula::Eventually(v.newtype_variant()?),
                    14 => Formula::Always(v.newtype_variant()?),
                    15 => {
                        let (a, b) = v.tuple_variant(2, PairVisitor(PhantomData))?;
                        Formula::Until(a, b)
                    }
                    other => {
                        return Err(A::Error::custom(format!(
                            "invalid Formula variant index {other}"
                        )))
                    }
                })
            }
        }
        d.deserialize_enum("Formula", VARIANTS, FormulaVisitor)
    }
}
