//! Epistemic–temporal logic for knowledge-based programs.
//!
//! This crate provides the formula language used throughout the
//! `knowledge-programs` workspace: propositional connectives, the knowledge
//! modalities `K_i`, `E_G` (everyone knows), `C_G` (common knowledge) and
//! `D_G` (distributed knowledge) of Fagin–Halpern–Moses–Vardi, and the
//! linear-time operators `X`, `F`, `G`, `U` used in tests that refer to a
//! run's future.
//!
//! The main types are:
//!
//! * [`Vocabulary`] — interns proposition and agent names into dense ids.
//! * [`Formula`] — the recursive formula AST, with smart constructors,
//!   normal forms and structural queries.
//! * [`parse`](parse::parse) — a small concrete syntax, round-tripping with
//!   the [`Display`](std::fmt::Display) impl.
//!
//! # Example
//!
//! ```
//! use kbp_logic::{Formula, Vocabulary};
//!
//! let mut voc = Vocabulary::new();
//! let alice = voc.add_agent("alice");
//! let p = voc.add_prop("p");
//!
//! // K_alice p  — "Alice knows p"
//! let f = Formula::knows(alice, Formula::prop(p));
//! assert!(f.is_subjective_for(alice));
//! assert_eq!(f.to_string_with(&voc), "K{alice} p");
//! ```

// Robustness gate: the library surface must stay panic-free so malformed
// inputs (e.g. from the fault-injection layer) surface as typed errors.
// Tests and benches are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agents;
mod formula;
mod intern;
mod nnf;
mod objective;
pub mod parse;
pub mod random;
mod vocabulary;

pub use agents::{Agent, AgentSet, AgentSetIter};
pub use formula::{Formula, PropId, SubformulaIter};
pub use intern::{FormulaArena, FormulaId, InternedNode};
pub use objective::NotObjective;
pub use vocabulary::{Vocabulary, VocabularyError};
