//! Random formula generation, for property tests and benchmarks.
//!
//! The generator is deliberately dependency-light: it consumes any source of
//! pseudo-randomness through the [`RandomSource`] trait, so the crate itself
//! does not depend on `rand` (test and bench crates adapt their own RNGs).

use crate::agents::{Agent, AgentSet};
use crate::formula::{Formula, PropId};

/// A minimal source of pseudo-random numbers.
///
/// Implemented by the built-in [`SplitMix64`]; downstream crates can adapt
/// `rand::Rng` in a one-line impl.
pub trait RandomSource {
    /// Returns the next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A value uniform in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A tiny, fast, reproducible PRNG (SplitMix64), adequate for generating
/// test inputs.
///
/// # Example
///
/// ```
/// use kbp_logic::random::{RandomSource, SplitMix64};
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Configuration for [`random_formula`].
#[derive(Debug, Clone)]
pub struct FormulaConfig {
    /// Number of distinct propositions to draw from (ids `0..props`).
    pub props: usize,
    /// Number of agents to draw from (ids `0..agents`).
    pub agents: usize,
    /// Maximum syntax-tree depth.
    pub max_depth: usize,
    /// Whether to generate temporal operators.
    pub temporal: bool,
    /// Whether to generate group modalities (`E`, `C`, `D`).
    pub groups: bool,
}

impl Default for FormulaConfig {
    fn default() -> Self {
        FormulaConfig {
            props: 4,
            agents: 2,
            max_depth: 5,
            temporal: false,
            groups: true,
        }
    }
}

/// Generates a pseudo-random formula according to `cfg`.
///
/// The output always mentions only propositions `< cfg.props` and agents
/// `< cfg.agents`, and has depth at most `cfg.max_depth`.
///
/// # Panics
///
/// Panics if `cfg.props == 0` or `cfg.agents == 0`.
///
/// # Example
///
/// ```
/// use kbp_logic::random::{random_formula, FormulaConfig, SplitMix64};
///
/// let mut rng = SplitMix64::new(7);
/// let f = random_formula(&mut rng, &FormulaConfig::default());
/// assert!(f.depth() <= 5);
/// ```
pub fn random_formula(rng: &mut impl RandomSource, cfg: &FormulaConfig) -> Formula {
    assert!(cfg.props > 0, "need at least one proposition");
    assert!(cfg.agents > 0, "need at least one agent");
    gen(rng, cfg, cfg.max_depth)
}

fn random_group(rng: &mut impl RandomSource, cfg: &FormulaConfig) -> AgentSet {
    let mut g = AgentSet::new();
    // Ensure at least one member.
    g.insert(Agent::new(rng.below(cfg.agents)));
    for i in 0..cfg.agents {
        if rng.below(2) == 0 {
            g.insert(Agent::new(i));
        }
    }
    g
}

fn gen(rng: &mut impl RandomSource, cfg: &FormulaConfig, depth: usize) -> Formula {
    if depth <= 1 {
        return match rng.below(8) {
            0 => Formula::True,
            1 => Formula::False,
            _ => Formula::prop(PropId::new(rng.below(cfg.props) as u32)),
        };
    }
    let n_choices = 8 + usize::from(cfg.groups) * 3 + usize::from(cfg.temporal) * 4;
    match rng.below(n_choices) {
        0 => Formula::prop(PropId::new(rng.below(cfg.props) as u32)),
        1 => Formula::not(gen(rng, cfg, depth - 1)),
        2 => {
            let k = 2 + rng.below(2);
            Formula::and((0..k).map(|_| gen(rng, cfg, depth - 1)))
        }
        3 => {
            let k = 2 + rng.below(2);
            Formula::or((0..k).map(|_| gen(rng, cfg, depth - 1)))
        }
        4 => Formula::implies(gen(rng, cfg, depth - 1), gen(rng, cfg, depth - 1)),
        5 => Formula::iff(gen(rng, cfg, depth - 1), gen(rng, cfg, depth - 1)),
        6 | 7 => Formula::knows(Agent::new(rng.below(cfg.agents)), gen(rng, cfg, depth - 1)),
        8 if cfg.groups => Formula::everyone(random_group(rng, cfg), gen(rng, cfg, depth - 1)),
        9 if cfg.groups => Formula::common(random_group(rng, cfg), gen(rng, cfg, depth - 1)),
        10 if cfg.groups => Formula::distributed(random_group(rng, cfg), gen(rng, cfg, depth - 1)),
        k if cfg.temporal => match k % 4 {
            0 => Formula::next(gen(rng, cfg, depth - 1)),
            1 => Formula::eventually(gen(rng, cfg, depth - 1)),
            2 => Formula::always(gen(rng, cfg, depth - 1)),
            _ => Formula::until(gen(rng, cfg, depth - 1), gen(rng, cfg, depth - 1)),
        },
        _ => Formula::knows(Agent::new(rng.below(cfg.agents)), gen(rng, cfg, depth - 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_depth_bound() {
        let mut rng = SplitMix64::new(123);
        let cfg = FormulaConfig {
            max_depth: 4,
            ..FormulaConfig::default()
        };
        for _ in 0..200 {
            let f = random_formula(&mut rng, &cfg);
            assert!(f.depth() <= 4, "depth {} > 4 for {f}", f.depth());
        }
    }

    #[test]
    fn respects_vocabulary_bounds() {
        let mut rng = SplitMix64::new(99);
        let cfg = FormulaConfig {
            props: 3,
            agents: 2,
            max_depth: 6,
            temporal: true,
            groups: true,
        };
        for _ in 0..200 {
            let f = random_formula(&mut rng, &cfg);
            for p in f.props() {
                assert!(p.index() < 3);
            }
            for a in f.agents() {
                assert!(a.index() < 2);
            }
        }
    }

    #[test]
    fn no_temporal_when_disabled() {
        let mut rng = SplitMix64::new(5);
        let cfg = FormulaConfig {
            temporal: false,
            max_depth: 7,
            ..FormulaConfig::default()
        };
        for _ in 0..200 {
            assert!(!random_formula(&mut rng, &cfg).has_temporal());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = FormulaConfig::default();
        let f1 = random_formula(&mut SplitMix64::new(7), &cfg);
        let f2 = random_formula(&mut SplitMix64::new(7), &cfg);
        assert_eq!(f1, f2);
    }

    #[test]
    fn nnf_preserves_depth_boundedness_sanity() {
        // NNF can grow formulas but must never produce Implies/Iff.
        let mut rng = SplitMix64::new(2024);
        let cfg = FormulaConfig {
            temporal: true,
            ..FormulaConfig::default()
        };
        for _ in 0..100 {
            let f = random_formula(&mut rng, &cfg).nnf();
            for sub in f.subformulas() {
                assert!(!matches!(sub, Formula::Implies(..) | Formula::Iff(..)));
            }
        }
    }
}
