//! Direct evaluation of *objective* (modality-free) formulas.
//!
//! Objective formulas speak only about the current global state, so they
//! can be evaluated against a plain truth assignment — no Kripke model
//! needed. Contexts use this to define valuations from formulas, and
//! tests use the brute-force tautology checker to validate rewrites.

use crate::formula::{Formula, PropId};
use std::error::Error;
use std::fmt;

/// Error: the formula contains a modal or temporal operator, so it has no
/// truth value under a bare assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotObjective;

impl fmt::Display for NotObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "formula contains modal or temporal operators")
    }
}

impl Error for NotObjective {}

impl Formula {
    /// Evaluates an objective formula under a truth assignment.
    ///
    /// # Errors
    ///
    /// Returns [`NotObjective`] if the formula contains any modal or
    /// temporal operator.
    ///
    /// # Example
    ///
    /// ```
    /// use kbp_logic::{Formula, PropId};
    ///
    /// let p = PropId::new(0);
    /// let q = PropId::new(1);
    /// let f = Formula::implies(Formula::prop(p), Formula::prop(q));
    /// assert_eq!(f.eval_objective(&|x| x == q), Ok(true));
    /// assert_eq!(f.eval_objective(&|x| x == p), Ok(false));
    /// ```
    pub fn eval_objective(&self, truth: &impl Fn(PropId) -> bool) -> Result<bool, NotObjective> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Prop(p) => Ok(truth(*p)),
            Formula::Not(f) => Ok(!f.eval_objective(truth)?),
            Formula::And(items) => {
                for f in items {
                    if !f.eval_objective(truth)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(items) => {
                for f in items {
                    if f.eval_objective(truth)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(a, b) => Ok(!a.eval_objective(truth)? || b.eval_objective(truth)?),
            Formula::Iff(a, b) => Ok(a.eval_objective(truth)? == b.eval_objective(truth)?),
            _ => Err(NotObjective),
        }
    }

    /// Brute-force classification of an objective formula over its
    /// mentioned propositions: `(satisfiable, valid)`.
    ///
    /// # Errors
    ///
    /// Returns [`NotObjective`] for non-objective formulas.
    ///
    /// # Panics
    ///
    /// Panics if the formula mentions more than 24 distinct propositions
    /// (2²⁴ assignments is the supported brute-force budget).
    ///
    /// # Example
    ///
    /// ```
    /// use kbp_logic::{Formula, PropId};
    ///
    /// let p = Formula::prop(PropId::new(0));
    /// let excluded_middle = Formula::or([p.clone(), Formula::not(p.clone())]);
    /// assert_eq!(excluded_middle.classify_objective(), Ok((true, true)));
    /// let contradiction = Formula::and([p.clone(), Formula::not(p)]);
    /// assert_eq!(contradiction.classify_objective(), Ok((false, false)));
    /// ```
    pub fn classify_objective(&self) -> Result<(bool, bool), NotObjective> {
        let props = self.props();
        assert!(props.len() <= 24, "too many propositions for brute force");
        let mut satisfiable = false;
        let mut valid = true;
        for mask in 0u32..(1u32 << props.len()) {
            let truth = |p: PropId| -> bool {
                props
                    .iter()
                    .position(|&q| q == p)
                    .is_some_and(|i| mask & (1 << i) != 0)
            };
            if self.eval_objective(&truth)? {
                satisfiable = true;
            } else {
                valid = false;
            }
            if satisfiable && !valid {
                break;
            }
        }
        Ok((satisfiable, valid))
    }

    /// Whether two objective formulas agree under every assignment.
    ///
    /// # Errors
    ///
    /// Returns [`NotObjective`] if either formula is not objective.
    ///
    /// # Panics
    ///
    /// Panics if the formulas jointly mention more than 24 propositions.
    pub fn equivalent_objective(&self, other: &Formula) -> Result<bool, NotObjective> {
        Formula::iff(self.clone(), other.clone())
            .classify_objective()
            .map(|(_, valid)| valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_formula, FormulaConfig, SplitMix64};
    use crate::Agent;

    fn p(i: u32) -> Formula {
        Formula::prop(PropId::new(i))
    }

    #[test]
    fn truth_tables_of_connectives() {
        let f = Formula::iff(p(0), p(1));
        assert_eq!(f.eval_objective(&|_| true), Ok(true));
        assert_eq!(f.eval_objective(&|_| false), Ok(true));
        assert_eq!(f.eval_objective(&|q| q == PropId::new(0)), Ok(false));
    }

    #[test]
    fn modalities_are_rejected() {
        let f = Formula::knows(Agent::new(0), p(0));
        assert_eq!(f.eval_objective(&|_| true), Err(NotObjective));
        assert_eq!(
            Formula::eventually(p(0)).classify_objective(),
            Err(NotObjective)
        );
    }

    #[test]
    fn classification() {
        assert_eq!(p(0).classify_objective(), Ok((true, false)));
        assert_eq!(Formula::True.classify_objective(), Ok((true, true)));
        assert_eq!(Formula::False.classify_objective(), Ok((false, false)));
        // De Morgan as a validity.
        let dm = Formula::iff(
            Formula::not(Formula::and([p(0), p(1)])),
            Formula::or([Formula::not(p(0)), Formula::not(p(1))]),
        );
        assert_eq!(dm.classify_objective(), Ok((true, true)));
    }

    #[test]
    fn nnf_and_simplify_preserve_objective_meaning() {
        let cfg = FormulaConfig {
            props: 4,
            agents: 1,
            max_depth: 6,
            temporal: false,
            groups: false,
        };
        let mut rng = SplitMix64::new(77);
        let mut tested = 0;
        while tested < 60 {
            let f = random_formula(&mut rng, &cfg);
            if !f.is_objective() {
                continue;
            }
            tested += 1;
            assert_eq!(f.equivalent_objective(&f.nnf()), Ok(true), "nnf broke {f}");
            assert_eq!(
                f.equivalent_objective(&f.simplify()),
                Ok(true),
                "simplify broke {f}"
            );
        }
    }

    #[test]
    fn equivalence_is_semantic_not_syntactic() {
        let a = Formula::implies(p(0), p(1));
        let b = Formula::or([Formula::not(p(0)), p(1)]);
        assert_ne!(a, b);
        assert_eq!(a.equivalent_objective(&b), Ok(true));
        assert_eq!(a.equivalent_objective(&p(1)), Ok(false));
    }
}
