//! A small concrete syntax for formulas.
//!
//! The grammar (loosest-binding first):
//!
//! ```text
//! formula := iff
//! iff     := implies ( "<->" iff )?                (right associative)
//! implies := or ( "->" implies )?                  (right associative)
//! or      := and ( "|" and )*
//! and     := until ( "&" until )*
//! until   := unary ( "U" until )?                  (right associative)
//! unary   := "!" unary
//!          | "K" "{" name "}" unary
//!          | ("E"|"C"|"D") "{" name ("," name)* "}" unary
//!          | ("X"|"F"|"G") unary
//!          | "true" | "false" | name | "(" formula ")"
//! ```
//!
//! The single-letter names `K E C D X F G U` and the words `true`/`false`
//! are reserved. Unknown proposition and agent names are interned into the
//! supplied [`Vocabulary`] on first use, so the parser doubles as a model
//! declaration mechanism.
//!
//! # Example
//!
//! ```
//! use kbp_logic::{parse::parse, Vocabulary, Formula};
//!
//! let mut voc = Vocabulary::new();
//! let f = parse("K{alice} (rain -> wet)", &mut voc)?;
//! assert_eq!(f.to_string_with(&voc), "K{alice} (rain -> wet)");
//! # Ok::<(), kbp_logic::parse::ParseError>(())
//! ```

use crate::agents::{Agent, AgentSet};
use crate::formula::Formula;
use crate::vocabulary::Vocabulary;
use std::error::Error;
use std::fmt;

/// Error produced when parsing a formula fails.
///
/// Carries the byte offset in the input at which the problem was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pos: usize,
    message: String,
}

impl ParseError {
    fn new(pos: usize, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }

    /// Byte offset in the input at which the error was detected.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    True,
    False,
    Not,
    AndOp,
    OrOp,
    Implies,
    Iff,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    KOp,
    EOp,
    COp,
    DOp,
    XOp,
    FOp,
    GOp,
    UOp,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '!' => {
                toks.push((i, Tok::Not));
                i += 1;
            }
            '&' => {
                toks.push((i, Tok::AndOp));
                i += 1;
            }
            '|' => {
                toks.push((i, Tok::OrOp));
                i += 1;
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '{' => {
                toks.push((i, Tok::LBrace));
                i += 1;
            }
            '}' => {
                toks.push((i, Tok::RBrace));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push((i, Tok::Implies));
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "expected '->' after '-'"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    toks.push((i, Tok::Iff));
                    i += 3;
                } else {
                    return Err(ParseError::new(i, "expected '<->' after '<'"));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let tok = match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "K" => Tok::KOp,
                    "E" => Tok::EOp,
                    "C" => Tok::COp,
                    "D" => Tok::DOp,
                    "X" => Tok::XOp,
                    "F" => Tok::FOp,
                    "G" => Tok::GOp,
                    "U" => Tok::UOp,
                    _ => Tok::Ident(word.to_owned()),
                };
                toks.push((start, tok));
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    input_len: usize,
    voc: &'a mut Vocabulary,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map_or(self.input_len, |(off, _)| *off)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::new(self.here(), format!("expected {what}")))
        }
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.implication()?;
        if self.peek() == Some(&Tok::Iff) {
            self.pos += 1;
            let rhs = self.iff()?; // right associative, matching Display
            Ok(Formula::Iff(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            let rhs = self.implication()?;
            Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut items = vec![self.conjunction()?];
        while self.peek() == Some(&Tok::OrOp) {
            self.pos += 1;
            items.push(self.conjunction()?);
        }
        match (items.pop(), items.is_empty()) {
            (Some(single), true) => Ok(single),
            (Some(last), false) => {
                items.push(last);
                Ok(Formula::Or(items))
            }
            (None, _) => Err(ParseError::new(self.pos, "internal: empty disjunction")),
        }
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut items = vec![self.until()?];
        while self.peek() == Some(&Tok::AndOp) {
            self.pos += 1;
            items.push(self.until()?);
        }
        match (items.pop(), items.is_empty()) {
            (Some(single), true) => Ok(single),
            (Some(last), false) => {
                items.push(last);
                Ok(Formula::And(items))
            }
            (None, _) => Err(ParseError::new(self.pos, "internal: empty conjunction")),
        }
    }

    fn until(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.unary()?;
        if self.peek() == Some(&Tok::UOp) {
            self.pos += 1;
            let rhs = self.until()?;
            Ok(Formula::until(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn group(&mut self) -> Result<AgentSet, ParseError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut set = AgentSet::new();
        loop {
            match self.bump() {
                Some(Tok::Ident(name)) => {
                    set.insert(self.intern_agent(&name)?);
                }
                _ => return Err(ParseError::new(self.here(), "expected agent name")),
            }
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RBrace) => break,
                _ => return Err(ParseError::new(self.here(), "expected ',' or '}'")),
            }
        }
        Ok(set)
    }

    fn intern_agent(&mut self, name: &str) -> Result<Agent, ParseError> {
        if self.voc.agent(name).is_none() && self.voc.agent_count() >= Agent::MAX_AGENTS {
            return Err(ParseError::new(self.here(), "too many agents"));
        }
        Ok(self.voc.add_agent(name))
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        let start = self.here();
        match self.bump() {
            Some(Tok::Not) => Ok(Formula::not(self.unary()?)),
            Some(Tok::KOp) => {
                self.expect(&Tok::LBrace, "'{'")?;
                let name = match self.bump() {
                    Some(Tok::Ident(n)) => n,
                    _ => return Err(ParseError::new(self.here(), "expected agent name")),
                };
                let agent = self.intern_agent(&name)?;
                self.expect(&Tok::RBrace, "'}'")?;
                Ok(Formula::knows(agent, self.unary()?))
            }
            Some(Tok::EOp) => {
                let g = self.group()?;
                Ok(Formula::everyone(g, self.unary()?))
            }
            Some(Tok::COp) => {
                let g = self.group()?;
                Ok(Formula::common(g, self.unary()?))
            }
            Some(Tok::DOp) => {
                let g = self.group()?;
                Ok(Formula::distributed(g, self.unary()?))
            }
            Some(Tok::XOp) => Ok(Formula::next(self.unary()?)),
            Some(Tok::FOp) => Ok(Formula::eventually(self.unary()?)),
            Some(Tok::GOp) => Ok(Formula::always(self.unary()?)),
            Some(Tok::True) => Ok(Formula::True),
            Some(Tok::False) => Ok(Formula::False),
            Some(Tok::Ident(name)) => Ok(Formula::prop(self.voc.add_prop(name))),
            Some(Tok::LParen) => {
                let f = self.iff()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(f)
            }
            _ => Err(ParseError::new(start, "expected a formula")),
        }
    }
}

/// Parses a formula, interning any new proposition or agent names into
/// `voc`.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
///
/// # Example
///
/// ```
/// use kbp_logic::{parse::parse, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let f = parse("C{a,b} (p | !q)", &mut voc)?;
/// assert_eq!(f.agents().len(), 2);
/// # Ok::<(), kbp_logic::parse::ParseError>(())
/// ```
pub fn parse(input: &str, voc: &mut Vocabulary) -> Result<Formula, ParseError> {
    let toks = tokenize(input)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        input_len: input.len(),
        voc,
    };
    let f = parser.iff()?;
    if parser.pos != parser.toks.len() {
        return Err(ParseError::new(parser.here(), "trailing input"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let mut voc = Vocabulary::new();
        let f = parse(src, &mut voc).unwrap_or_else(|e| panic!("parse {src}: {e}"));
        let printed = f.to_string_with(&voc);
        let mut voc2 = voc.clone();
        let f2 = parse(&printed, &mut voc2).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        assert_eq!(f, f2, "round-trip failed: {src} -> {printed}");
    }

    #[test]
    fn parses_atoms_and_constants() {
        let mut voc = Vocabulary::new();
        assert_eq!(parse("true", &mut voc).unwrap(), Formula::True);
        assert_eq!(parse("false", &mut voc).unwrap(), Formula::False);
        let f = parse("rain", &mut voc).unwrap();
        assert_eq!(f, Formula::prop(voc.prop("rain").unwrap()));
    }

    #[test]
    fn parses_precedence() {
        let mut voc = Vocabulary::new();
        let f = parse("p & q | r", &mut voc).unwrap();
        // & binds tighter than |
        match f {
            Formula::Or(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], Formula::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn implication_is_right_associative() {
        let mut voc = Vocabulary::new();
        let f = parse("p -> q -> r", &mut voc).unwrap();
        match f {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(..))),
            other => panic!("expected Implies, got {other:?}"),
        }
    }

    #[test]
    fn parses_knowledge_and_groups() {
        let mut voc = Vocabulary::new();
        let f = parse("K{alice} p & C{alice,bob} q", &mut voc).unwrap();
        let alice = voc.agent("alice").unwrap();
        let bob = voc.agent("bob").unwrap();
        assert!(f.agents().contains(alice));
        assert!(f.agents().contains(bob));
    }

    #[test]
    fn singleton_group_modalities_normalize_to_k() {
        let mut voc = Vocabulary::new();
        let f = parse("E{alice} p", &mut voc).unwrap();
        assert!(matches!(f, Formula::Knows(..)));
        let g = parse("D{alice} p", &mut voc).unwrap();
        assert!(matches!(g, Formula::Knows(..)));
    }

    #[test]
    fn parses_temporal() {
        let mut voc = Vocabulary::new();
        let f = parse("G (req -> F ack)", &mut voc).unwrap();
        assert!(f.has_temporal());
        let g = parse("p U q U r", &mut voc).unwrap();
        // Right associative: p U (q U r)
        match g {
            Formula::Until(_, rhs) => assert!(matches!(*rhs, Formula::Until(..))),
            other => panic!("expected Until, got {other:?}"),
        }
    }

    #[test]
    fn reports_error_positions() {
        let mut voc = Vocabulary::new();
        let e = parse("p & ", &mut voc).unwrap_err();
        assert_eq!(e.position(), 4);
        let e = parse("p @ q", &mut voc).unwrap_err();
        assert_eq!(e.position(), 2);
        let e = parse("p q", &mut voc).unwrap_err();
        assert!(e.to_string().contains("trailing"));
        let e = parse("K{", &mut voc).unwrap_err();
        assert!(e.to_string().contains("agent name"));
    }

    #[test]
    fn display_parse_roundtrips() {
        for src in [
            "p & q | r",
            "!(p & q)",
            "K{alice} (p -> q)",
            "C{a,b} p <-> D{a,b} q",
            "G (req -> F ack)",
            "p U (q & r)",
            "!K{a} !p",
            "E{a,b} (p | !q) & X p",
            "((p))",
            "true & false | p",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn interns_names_in_first_use_order() {
        let mut voc = Vocabulary::new();
        parse("zeta & alpha", &mut voc).unwrap();
        let names: Vec<&str> = voc.props().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["zeta", "alpha"]);
    }
}
