//! Interning of proposition and agent names.

use crate::agents::Agent;
use crate::formula::PropId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A symbol table mapping human-readable names to dense [`PropId`] and
/// [`Agent`] indices, and back.
///
/// All formulas in a model should be built against a single vocabulary so
/// that proposition ids are comparable. A vocabulary is append-only: ids
/// never change once assigned.
///
/// # Example
///
/// ```
/// use kbp_logic::Vocabulary;
///
/// let mut voc = Vocabulary::new();
/// let p = voc.add_prop("muddy_1");
/// assert_eq!(voc.add_prop("muddy_1"), p); // idempotent
/// assert_eq!(voc.prop_name(p), "muddy_1");
/// let child = voc.add_agent("child_1");
/// assert_eq!(voc.agent_name(child), "child_1");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    prop_names: Vec<String>,
    prop_ids: HashMap<String, PropId>,
    agent_names: Vec<String>,
    agent_ids: HashMap<String, Agent>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a proposition name, returning its id. Idempotent.
    pub fn add_prop(&mut self, name: impl Into<String>) -> PropId {
        let name = name.into();
        if let Some(&id) = self.prop_ids.get(&name) {
            return id;
        }
        let id = PropId::new(self.prop_names.len() as u32);
        self.prop_names.push(name.clone());
        self.prop_ids.insert(name, id);
        id
    }

    /// Interns several proposition names at once.
    pub fn add_props<I, S>(&mut self, names: I) -> Vec<PropId>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        names.into_iter().map(|n| self.add_prop(n)).collect()
    }

    /// Interns an agent name, returning its identity. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if more than [`Agent::MAX_AGENTS`] distinct agents are added.
    pub fn add_agent(&mut self, name: impl Into<String>) -> Agent {
        let name = name.into();
        if let Some(&a) = self.agent_ids.get(&name) {
            return a;
        }
        let a = Agent::new(self.agent_names.len());
        self.agent_names.push(name.clone());
        self.agent_ids.insert(name, a);
        a
    }

    /// Looks up a proposition by name.
    #[must_use]
    pub fn prop(&self, name: &str) -> Option<PropId> {
        self.prop_ids.get(name).copied()
    }

    /// Looks up an agent by name.
    #[must_use]
    pub fn agent(&self, name: &str) -> Option<Agent> {
        self.agent_ids.get(name).copied()
    }

    /// The name of a proposition.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this vocabulary.
    #[must_use]
    pub fn prop_name(&self, id: PropId) -> &str {
        &self.prop_names[id.index()]
    }

    /// The name of an agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` was not produced by this vocabulary.
    #[must_use]
    pub fn agent_name(&self, agent: Agent) -> &str {
        &self.agent_names[agent.index()]
    }

    /// Number of interned propositions.
    #[must_use]
    pub fn prop_count(&self) -> usize {
        self.prop_names.len()
    }

    /// Number of interned agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.agent_names.len()
    }

    /// Iterates over all `(PropId, name)` pairs in id order.
    pub fn props(&self) -> impl Iterator<Item = (PropId, &str)> {
        self.prop_names
            .iter()
            .enumerate()
            .map(|(i, n)| (PropId::new(i as u32), n.as_str()))
    }

    /// Iterates over all `(Agent, name)` pairs in id order.
    pub fn agents(&self) -> impl Iterator<Item = (Agent, &str)> {
        self.agent_names
            .iter()
            .enumerate()
            .map(|(i, n)| (Agent::new(i), n.as_str()))
    }

    /// Checks that every proposition and agent used in `formula` is known to
    /// this vocabulary.
    ///
    /// # Errors
    ///
    /// Returns [`VocabularyError`] naming the first out-of-range id found.
    pub fn validate(&self, formula: &crate::Formula) -> Result<(), VocabularyError> {
        for sub in formula.subformulas() {
            if let crate::Formula::Prop(p) = sub {
                if p.index() >= self.prop_count() {
                    return Err(VocabularyError::UnknownProp(*p));
                }
            }
            for a in sub.top_agents() {
                if a.index() >= self.agent_count() {
                    return Err(VocabularyError::UnknownAgent(a));
                }
            }
        }
        Ok(())
    }
}

/// Error returned by [`Vocabulary::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VocabularyError {
    /// A proposition id not produced by this vocabulary.
    UnknownProp(PropId),
    /// An agent id not produced by this vocabulary.
    UnknownAgent(Agent),
}

impl fmt::Display for VocabularyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VocabularyError::UnknownProp(p) => {
                write!(f, "proposition id {} is not in the vocabulary", p.index())
            }
            VocabularyError::UnknownAgent(a) => {
                write!(f, "agent id {} is not in the vocabulary", a.index())
            }
        }
    }
}

impl Error for VocabularyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Formula;

    #[test]
    fn interning_is_idempotent() {
        let mut voc = Vocabulary::new();
        let p = voc.add_prop("p");
        let q = voc.add_prop("q");
        assert_ne!(p, q);
        assert_eq!(voc.add_prop("p"), p);
        assert_eq!(voc.prop_count(), 2);
    }

    #[test]
    fn lookup_by_name() {
        let mut voc = Vocabulary::new();
        let p = voc.add_prop("p");
        assert_eq!(voc.prop("p"), Some(p));
        assert_eq!(voc.prop("zzz"), None);
        let a = voc.add_agent("alice");
        assert_eq!(voc.agent("alice"), Some(a));
        assert_eq!(voc.agent("bob"), None);
    }

    #[test]
    fn iteration_in_id_order() {
        let mut voc = Vocabulary::new();
        voc.add_prop("p");
        voc.add_prop("q");
        let names: Vec<&str> = voc.props().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["p", "q"]);
    }

    #[test]
    fn validate_catches_foreign_ids() {
        let mut voc = Vocabulary::new();
        let p = voc.add_prop("p");
        let a = voc.add_agent("alice");
        let good = Formula::knows(a, Formula::prop(p));
        assert!(voc.validate(&good).is_ok());

        let bad_prop = Formula::prop(PropId::new(99));
        assert_eq!(
            voc.validate(&bad_prop),
            Err(VocabularyError::UnknownProp(PropId::new(99)))
        );

        let bad_agent = Formula::knows(Agent::new(7), Formula::prop(p));
        assert_eq!(
            voc.validate(&bad_agent),
            Err(VocabularyError::UnknownAgent(Agent::new(7)))
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = VocabularyError::UnknownProp(PropId::new(3));
        assert!(e.to_string().contains("3"));
    }
}

serde::impl_serde_struct!(Vocabulary {
    prop_names,
    prop_ids,
    agent_names,
    agent_ids,
});
