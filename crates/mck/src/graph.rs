//! The stationary representation of a generated system: the reachable
//! global-state graph of a (memoryless) protocol in a context.
//!
//! Where the unrolling of `kbp-systems` keeps one node per *run prefix*,
//! the state graph keeps one node per reachable *global state* — the
//! representation on which CTLK fixpoint algorithms run in time linear in
//! the graph. Knowledge here uses the **observational** relation: two
//! states are indistinguishable to an agent iff it observes the same thing
//! in them (MCMAS-style).

use kbp_kripke::{S5Builder, S5Model};
use kbp_logic::{Agent, PropId};
use kbp_systems::{
    ActionId, Context, GenerateError, GlobalState, JointAction, LocalView, Obs, ProtocolFn,
};
use std::collections::HashMap;

/// A reachable-state graph with valuation and observational knowledge
/// partitions.
///
/// Build with [`StateGraph::explore`]. The transition relation is total
/// (environment protocols are nonempty and protocols always act), so CTL
/// path quantifiers are well-defined.
#[derive(Debug)]
pub struct StateGraph {
    states: Vec<GlobalState>,
    successors: Vec<Vec<u32>>,
    initial: Vec<u32>,
    model: S5Model,
}

impl StateGraph {
    /// Explores the states reachable under `protocol` (read
    /// memorylessly: the protocol is shown each state's current
    /// observation as a one-element history).
    ///
    /// `max_states` caps exploration.
    ///
    /// # Errors
    ///
    /// * [`GenerateError::Context`] — the context is malformed.
    /// * [`GenerateError::EmptyChoice`] — the protocol returned no action.
    /// * [`GenerateError::ActionOutOfRange`] — the protocol returned an
    ///   action outside an agent's repertoire.
    /// * [`GenerateError::EnvStuck`] — the environment has no move at a
    ///   reachable state.
    /// * [`GenerateError::NodeLimit`] — more than `max_states` states.
    ///
    /// # Example
    ///
    /// ```
    /// use kbp_mck::StateGraph;
    /// use kbp_systems::{ContextBuilder, GlobalState, Obs, ActionId, LocalView};
    /// use kbp_logic::Vocabulary;
    ///
    /// let mut voc = Vocabulary::new();
    /// let a = voc.add_agent("walker");
    /// let ctx = ContextBuilder::new(voc)
    ///     .initial_state(GlobalState::new(vec![0]))
    ///     .agent_actions(a, ["step"])
    ///     .transition(|s, _| s.with_reg(0, (s.reg(0) + 1) % 4))
    ///     .observe(|_, s| Obs(u64::from(s.reg(0))))
    ///     .props(|_, _| false)
    ///     .build();
    /// let step = |_: &LocalView<'_>| vec![ActionId(0)];
    /// let graph = StateGraph::explore(&ctx, &step, 100)?;
    /// assert_eq!(graph.state_count(), 4); // the 4-cycle
    /// # Ok::<(), kbp_systems::GenerateError>(())
    /// ```
    pub fn explore(
        ctx: &dyn Context,
        protocol: &dyn ProtocolFn,
        max_states: usize,
    ) -> Result<Self, GenerateError> {
        ctx.validate()?;
        let agents = ctx.agent_count();
        let mut ids: HashMap<GlobalState, u32> = HashMap::new();
        let mut states: Vec<GlobalState> = Vec::new();
        let mut successors: Vec<Vec<u32>> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();
        let mut initial = Vec::new();

        let mut intern = |s: GlobalState,
                          states: &mut Vec<GlobalState>,
                          successors: &mut Vec<Vec<u32>>,
                          queue: &mut Vec<u32>|
         -> Result<u32, GenerateError> {
            if let Some(&id) = ids.get(&s) {
                return Ok(id);
            }
            if states.len() >= max_states {
                return Err(GenerateError::NodeLimit { limit: max_states });
            }
            let id = states.len() as u32;
            ids.insert(s.clone(), id);
            states.push(s);
            successors.push(Vec::new());
            queue.push(id);
            Ok(id)
        };

        for s in ctx.initial_states() {
            let id = intern(s, &mut states, &mut successors, &mut queue)?;
            if !initial.contains(&id) {
                initial.push(id);
            }
        }

        let mut qhead = 0;
        while qhead < queue.len() {
            let sid = queue[qhead];
            qhead += 1;
            let state = states[sid as usize].clone();

            // Resolve each agent's action set from its current observation.
            let mut action_sets: Vec<Vec<ActionId>> = Vec::with_capacity(agents);
            for i in 0..agents {
                let agent = Agent::new(i);
                let obs = [ctx.observe(agent, &state)];
                let acts = protocol.actions(&LocalView {
                    agent,
                    history: &obs,
                });
                if acts.is_empty() {
                    return Err(GenerateError::EmptyChoice {
                        agent,
                        local: kbp_systems::LocalId::from_raw(sid),
                    });
                }
                for &a in &acts {
                    if a.index() >= ctx.action_count(agent) {
                        return Err(GenerateError::ActionOutOfRange { agent, action: a });
                    }
                }
                action_sets.push(acts);
            }
            let env_moves = ctx.env_actions(&state);
            if env_moves.is_empty() {
                return Err(GenerateError::EnvStuck(state));
            }

            let mut combo = vec![0usize; agents];
            loop {
                let acts: Vec<ActionId> = (0..agents).map(|i| action_sets[i][combo[i]]).collect();
                for &env in &env_moves {
                    let next = ctx.transition(&state, &JointAction::new(env, acts.clone()));
                    let nid = intern(next, &mut states, &mut successors, &mut queue)?;
                    if !successors[sid as usize].contains(&nid) {
                        successors[sid as usize].push(nid);
                    }
                }
                let mut k = 0;
                loop {
                    if k == agents {
                        break;
                    }
                    combo[k] += 1;
                    if combo[k] < action_sets[k].len() {
                        break;
                    }
                    combo[k] = 0;
                    k += 1;
                }
                if k == agents {
                    break;
                }
            }
        }

        // Build the S5 model: valuation + observational partitions.
        let prop_count = ctx.vocabulary().prop_count();
        let mut mb = S5Builder::new(agents, prop_count);
        for s in &states {
            let props = (0..prop_count)
                .map(|p| PropId::new(p as u32))
                .filter(|&p| ctx.prop_holds(p, s));
            mb.add_world(props);
        }
        let observations: Vec<Vec<Obs>> = (0..agents)
            .map(|i| {
                states
                    .iter()
                    .map(|s| ctx.observe(Agent::new(i), s))
                    .collect()
            })
            .collect();
        for (i, obs) in observations.iter().enumerate() {
            mb.partition_by_key(Agent::new(i), |w| obs[w.index()]);
        }

        Ok(StateGraph {
            states,
            successors,
            initial,
            model: mb.build(),
        })
    }

    /// Number of reachable states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The global state with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn state(&self, id: usize) -> &GlobalState {
        &self.states[id]
    }

    /// Successor state indices of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn successors(&self, id: usize) -> &[u32] {
        &self.successors[id]
    }

    /// Indices of the initial states.
    #[must_use]
    pub fn initial_states(&self) -> &[u32] {
        &self.initial
    }

    /// The S5 model over the states (valuation + observational
    /// partitions).
    #[must_use]
    pub fn model(&self) -> &S5Model {
        &self.model
    }

    /// Total number of transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbp_logic::Vocabulary;
    use kbp_systems::{ContextBuilder, EnvActionId};

    #[test]
    fn explores_a_cycle() {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("w");
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["step"])
            .transition(|s, _| s.with_reg(0, (s.reg(0) + 1) % 5))
            .observe(|_, s| Obs(u64::from(s.reg(0))))
            .props(|_, _| false)
            .build();
        let step = |_: &LocalView<'_>| vec![ActionId(0)];
        let g = StateGraph::explore(&ctx, &step, 100).unwrap();
        assert_eq!(g.state_count(), 5);
        assert_eq!(g.transition_count(), 5);
        assert_eq!(g.successors(4), &[0]);
        assert_eq!(g.initial_states(), &[0]);
    }

    #[test]
    fn env_nondeterminism_creates_branching() {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("w");
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["noop"])
            .env_protocol(|_| vec![EnvActionId(0), EnvActionId(1)])
            .transition(|s, j| s.with_reg(0, j.env.0))
            .observe(|_, _| Obs(0))
            .props(|_, _| false)
            .build();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let g = StateGraph::explore(&ctx, &noop, 100).unwrap();
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.successors(0).len(), 2);
    }

    #[test]
    fn state_limit_is_enforced() {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("w");
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["step"])
            .transition(|s, _| s.with_reg(0, s.reg(0) + 1)) // unbounded
            .observe(|_, _| Obs(0))
            .props(|_, _| false)
            .build();
        let step = |_: &LocalView<'_>| vec![ActionId(0)];
        let err = StateGraph::explore(&ctx, &step, 10).unwrap_err();
        assert!(matches!(err, GenerateError::NodeLimit { limit: 10 }));
    }

    #[test]
    fn observational_partitions_group_states() {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("w");
        // Register 0 cycles 0..4; the agent sees only parity.
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["step"])
            .transition(|s, _| s.with_reg(0, (s.reg(0) + 1) % 4))
            .observe(|_, s| Obs(u64::from(s.reg(0) % 2)))
            .props(|_, _| false)
            .build();
        let step = |_: &LocalView<'_>| vec![ActionId(0)];
        let g = StateGraph::explore(&ctx, &step, 100).unwrap();
        assert_eq!(g.state_count(), 4);
        let part = g.model().partition(Agent::new(0));
        assert_eq!(part.block_count(), 2); // even / odd
    }
}
