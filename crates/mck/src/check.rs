//! CTLK model checking over a [`StateGraph`].
//!
//! Formulas are the shared [`kbp_logic::Formula`] language. Epistemic
//! operators use the graph's observational partitions; temporal operators
//! are read as **universally path-quantified** CTL over the (total)
//! transition relation:
//!
//! * `X φ` = `AX φ`, `F φ` = `AF φ`, `G φ` = `AG φ`, `φ U ψ` = `A[φ U ψ]`.
//! * Existential duals are expressible by negation: `EF φ ≡ ¬AG ¬φ`,
//!   `EX φ ≡ ¬AX ¬φ`, `EG φ ≡ ¬AF ¬φ` — see the [`ctl`] helpers.
//!
//! `AF`/`AU` are least fixpoints, `AG` a greatest fixpoint, all computed
//! with bitsets in time `O(|φ| · (|S| + |→|) · iterations)`.

use crate::graph::StateGraph;
use kbp_kripke::{BitSet, EvalCache, EvalEngine, EvalError, TemporalOps};
use kbp_logic::{Formula, FormulaArena};
use std::cell::RefCell;

/// Existential-path helper constructors, via duality with the universal
/// reading of the temporal operators.
pub mod ctl {
    use kbp_logic::Formula;

    /// `EX φ ≡ ¬AX ¬φ` — some successor satisfies `φ`.
    #[must_use]
    pub fn ex(f: Formula) -> Formula {
        Formula::not(Formula::next(Formula::not(f)))
    }

    /// `EF φ ≡ ¬AG ¬φ` — some path eventually reaches `φ`.
    #[must_use]
    pub fn ef(f: Formula) -> Formula {
        Formula::not(Formula::always(Formula::not(f)))
    }

    /// `EG φ ≡ ¬AF ¬φ` — some path satisfies `φ` forever.
    #[must_use]
    pub fn eg(f: Formula) -> Formula {
        Formula::not(Formula::eventually(Formula::not(f)))
    }
}

/// The result of checking one formula over a graph.
#[derive(Debug, Clone)]
pub struct CheckResult {
    sat: BitSet,
    initial: Vec<u32>,
}

impl CheckResult {
    pub(crate) fn from_parts(sat: BitSet, initial: Vec<u32>) -> Self {
        CheckResult { sat, initial }
    }

    /// The set of states satisfying the formula.
    #[must_use]
    pub fn satisfying(&self) -> &BitSet {
        &self.sat
    }

    /// Whether every initial state satisfies the formula.
    #[must_use]
    pub fn holds_initially(&self) -> bool {
        self.initial.iter().all(|&s| self.sat.contains(s as usize))
    }

    /// An initial state violating the formula, if any.
    #[must_use]
    pub fn initial_counterexample(&self) -> Option<usize> {
        self.initial
            .iter()
            .map(|&s| s as usize)
            .find(|&s| !self.sat.contains(s))
    }
}

/// A model checker bound to one graph.
///
/// # Example
///
/// ```
/// use kbp_mck::{Mck, StateGraph, ctl};
/// use kbp_systems::{ContextBuilder, GlobalState, Obs, ActionId, LocalView};
/// use kbp_logic::{Agent, Formula, Vocabulary};
///
/// // A counter 0..3 that saturates; `done` marks 3; agent sees everything.
/// let mut voc = Vocabulary::new();
/// let a = voc.add_agent("w");
/// let done = voc.add_prop("done");
/// let ctx = ContextBuilder::new(voc)
///     .initial_state(GlobalState::new(vec![0]))
///     .agent_actions(a, ["step"])
///     .transition(|s, _| s.with_reg(0, (s.reg(0) + 1).min(3)))
///     .observe(|_, s| Obs(u64::from(s.reg(0))))
///     .props(move |p, s| p == done && s.reg(0) == 3)
///     .build();
/// let step = |_: &LocalView<'_>| vec![ActionId(0)];
/// let graph = StateGraph::explore(&ctx, &step, 100)?;
/// let mck = Mck::new(&graph);
///
/// // AF done holds initially; and once done, the agent knows it forever.
/// assert!(mck.check(&Formula::eventually(Formula::prop(done)))?.holds_initially());
/// let safety = Formula::always(Formula::implies(
///     Formula::prop(done),
///     Formula::knows(Agent::new(0), Formula::prop(done)),
/// ));
/// assert!(mck.check(&safety)?.holds_initially());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Mck<'g> {
    graph: &'g StateGraph,
    /// The checker's evaluation engine: one interning arena shared by
    /// every `check` call on this value.
    engine: RefCell<EvalEngine>,
    /// Memoized satisfaction sets per interned subformula. Temporal
    /// fixpoints computed by one `check` call are reused verbatim by
    /// later calls that share subformulas.
    cache: RefCell<EvalCache>,
}

impl<'g> Mck<'g> {
    /// Creates a checker over `graph`.
    #[must_use]
    pub fn new(graph: &'g StateGraph) -> Self {
        Mck {
            graph,
            engine: RefCell::new(EvalEngine::new(FormulaArena::new())),
            cache: RefCell::new(EvalCache::new()),
        }
    }

    /// Checks `formula`, returning the satisfying state set.
    ///
    /// The formula is interned into the checker's arena and evaluated by
    /// a postorder walk over its distinct subformulas; epistemic and
    /// boolean kernels are shared with the solver, while the CTL
    /// fixpoints (`AX`/`AF`/`AG`/`AU`) are supplied by this type's
    /// [`TemporalOps`] implementation. Results are memoized across calls.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for out-of-range propositions/agents or empty
    /// group modalities.
    pub fn check(&self, formula: &Formula) -> Result<CheckResult, EvalError> {
        let id = self.engine.borrow_mut().intern(formula);
        let engine = self.engine.borrow();
        let mut cache = self.cache.borrow_mut();
        engine.populate_temporal(self.graph.model(), &mut cache, &[id], self)?;
        let sat = cache
            .get(id)
            .cloned()
            .ok_or(EvalError::Internal("root missing after populate"))?;
        Ok(CheckResult {
            sat,
            initial: self.graph.initial_states().to_vec(),
        })
    }

    /// States all of whose successors are in `target`.
    fn ax(&self, target: &BitSet) -> BitSet {
        let n = self.graph.state_count();
        let mut out = BitSet::new(n);
        for s in 0..n {
            if self
                .graph
                .successors(s)
                .iter()
                .all(|&t| target.contains(t as usize))
            {
                out.insert(s);
            }
        }
        out
    }

    /// A shortest counterexample for an invariant claim `G φ`: a path
    /// from an initial state to a state violating `φ`, or `None` if the
    /// invariant holds on every reachable state.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if `φ` cannot be evaluated.
    ///
    /// # Example
    ///
    /// ```
    /// use kbp_mck::{Mck, StateGraph};
    /// use kbp_systems::{ContextBuilder, GlobalState, Obs, ActionId, LocalView};
    /// use kbp_logic::{Formula, Vocabulary};
    ///
    /// let mut voc = Vocabulary::new();
    /// let a = voc.add_agent("w");
    /// let small = voc.add_prop("small");
    /// let ctx = ContextBuilder::new(voc)
    ///     .initial_state(GlobalState::new(vec![0]))
    ///     .agent_actions(a, ["step"])
    ///     .transition(|s, _| s.with_reg(0, (s.reg(0) + 1).min(3)))
    ///     .observe(|_, s| Obs(u64::from(s.reg(0))))
    ///     .props(move |p, s| p == small && s.reg(0) < 2)
    ///     .build();
    /// let step = |_: &LocalView<'_>| vec![ActionId(0)];
    /// let graph = StateGraph::explore(&ctx, &step, 100)?;
    /// let mck = Mck::new(&graph);
    /// // "The counter stays small" is violated after two steps.
    /// let path = mck.violation_path(&Formula::prop(small))?.expect("violated");
    /// assert_eq!(path, vec![0, 1, 2]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn violation_path(&self, phi: &Formula) -> Result<Option<Vec<usize>>, EvalError> {
        let bad = self.check(phi)?.satisfying().complemented();
        Ok(self.reach_witness(&bad))
    }

    /// A shortest path (by BFS) from an initial state into `target`, if
    /// one exists — useful as a witness for `EF target` or a
    /// counterexample for `AG ¬target`.
    #[must_use]
    pub fn reach_witness(&self, target: &BitSet) -> Option<Vec<usize>> {
        let n = self.graph.state_count();
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut seen = BitSet::new(n);
        let mut queue: Vec<usize> = Vec::new();
        for &s in self.graph.initial_states() {
            let s = s as usize;
            if seen.insert(s) {
                queue.push(s);
            }
        }
        let mut qh = 0;
        while qh < queue.len() {
            let s = queue[qh];
            qh += 1;
            if target.contains(s) {
                // Reconstruct.
                let mut path = vec![s];
                let mut cur = s;
                while let Some(p) = pred[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &t in self.graph.successors(s) {
                let t = t as usize;
                if seen.insert(t) {
                    pred[t] = Some(s);
                    queue.push(t);
                }
            }
        }
        None
    }
}

/// Universal CTL readings of the temporal operators over the total
/// transition relation, as bitset fixpoints:
///
/// * `X φ` = `AX φ`, directly from successor sets.
/// * `F φ` = `AF φ`, least fixpoint of `Z = φ ∨ AX Z`.
/// * `G φ` = `AG φ`, greatest fixpoint of `Z = φ ∧ AX Z`.
/// * `φ U ψ` = `A[φ U ψ]`, least fixpoint of `Z = ψ ∨ (φ ∧ AX Z)`.
impl TemporalOps for Mck<'_> {
    fn next(&self, phi: &BitSet) -> BitSet {
        self.ax(phi)
    }

    fn eventually(&self, phi: &BitSet) -> BitSet {
        let mut z = phi.clone();
        loop {
            let mut next = self.ax(&z);
            next.union_with(phi);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    fn always(&self, phi: &BitSet) -> BitSet {
        let mut z = phi.clone();
        loop {
            let mut next = self.ax(&z);
            next.intersect_with(phi);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    fn until(&self, hold: &BitSet, target: &BitSet) -> BitSet {
        let mut z = target.clone();
        loop {
            let mut next = self.ax(&z);
            next.intersect_with(hold);
            next.union_with(target);
            if next == z {
                return z;
            }
            z = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbp_logic::{Agent, Formula, PropId, Vocabulary};
    use kbp_systems::{ActionId, ContextBuilder, EnvActionId, GlobalState, LocalView, Obs};

    fn p(i: u32) -> Formula {
        Formula::prop(PropId::new(i))
    }

    /// Saturating counter to 3, `done` at 3, fully observable.
    fn counter_graph() -> StateGraph {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("w");
        let done = voc.add_prop("done");
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["step"])
            .transition(|s, _| s.with_reg(0, (s.reg(0) + 1).min(3)))
            .observe(|_, s| Obs(u64::from(s.reg(0))))
            .props(move |q, s| q == done && s.reg(0) == 3)
            .build();
        let step = |_: &LocalView<'_>| vec![ActionId(0)];
        StateGraph::explore(&ctx, &step, 100).unwrap()
    }

    /// Env may set a latch at any time (or never); agent blind.
    fn latch_graph() -> StateGraph {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("w");
        let flag = voc.add_prop("flag");
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["noop"])
            .env_protocol(|s| {
                if s.reg(0) == 1 {
                    vec![EnvActionId(0)]
                } else {
                    vec![EnvActionId(0), EnvActionId(1)]
                }
            })
            .transition(|s, j| {
                if j.env == EnvActionId(1) {
                    s.with_reg(0, 1)
                } else {
                    s.clone()
                }
            })
            .observe(|_, _| Obs(0))
            .props(move |q, s| q == flag && s.reg(0) == 1)
            .build();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        StateGraph::explore(&ctx, &noop, 100).unwrap()
    }

    #[test]
    fn af_on_deterministic_counter() {
        let g = counter_graph();
        let m = Mck::new(&g);
        assert!(m
            .check(&Formula::eventually(p(0)))
            .unwrap()
            .holds_initially());
        // AG done fails initially, holds at the sink.
        let ag = m.check(&Formula::always(p(0))).unwrap();
        assert!(!ag.holds_initially());
        assert!(ag.satisfying().contains(3));
        assert_eq!(ag.initial_counterexample(), Some(0));
    }

    #[test]
    fn ax_and_until() {
        let g = counter_graph();
        let m = Mck::new(&g);
        // AX done holds exactly at states 2 and 3.
        let ax = m.check(&Formula::next(p(0))).unwrap();
        assert_eq!(ax.satisfying().iter().collect::<Vec<_>>(), vec![2, 3]);
        // A[¬done U done] holds initially.
        let u = Formula::until(Formula::not(p(0)), p(0));
        assert!(m.check(&u).unwrap().holds_initially());
    }

    #[test]
    fn existential_duals_on_branching() {
        let g = latch_graph();
        let m = Mck::new(&g);
        // Not all paths set the flag...
        assert!(!m
            .check(&Formula::eventually(p(0)))
            .unwrap()
            .holds_initially());
        // ...but some path does (EF flag), and some path never does (EG ¬flag).
        assert!(m.check(&ctl::ef(p(0))).unwrap().holds_initially());
        assert!(m
            .check(&ctl::eg(Formula::not(p(0))))
            .unwrap()
            .holds_initially());
        // EX flag holds at the initial state.
        assert!(m.check(&ctl::ex(p(0))).unwrap().holds_initially());
    }

    #[test]
    fn knowledge_on_graph_uses_observational_relation() {
        let g = latch_graph();
        let m = Mck::new(&g);
        let a = Agent::new(0);
        // The agent is blind: even where flag holds, it does not know it.
        let kf = m.check(&Formula::knows(a, p(0))).unwrap();
        assert!(kf.satisfying().is_empty());
        // It does know flag ∨ ¬flag everywhere.
        let taut = Formula::knows(a, Formula::or([p(0), Formula::not(p(0))]));
        assert_eq!(m.check(&taut).unwrap().satisfying().count(), 2);
    }

    #[test]
    fn once_done_agent_knows_done_forever() {
        let g = counter_graph();
        let m = Mck::new(&g);
        let a = Agent::new(0);
        let spec = Formula::always(Formula::implies(p(0), Formula::knows(a, p(0))));
        assert!(m.check(&spec).unwrap().holds_initially());
    }

    #[test]
    fn reach_witness_finds_shortest_path() {
        let g = counter_graph();
        let m = Mck::new(&g);
        let target = m.check(&p(0)).unwrap().satisfying().clone();
        let path = m.reach_witness(&target).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        // Unreachable target: none.
        let empty = BitSet::new(g.state_count());
        assert_eq!(m.reach_witness(&empty), None);
    }

    #[test]
    fn violation_path_finds_shortest_counterexample() {
        let g = counter_graph();
        let m = Mck::new(&g);
        // Invariant "not done" is violated at state 3, reached via 0-1-2-3.
        let path = m.violation_path(&Formula::not(p(0))).unwrap().unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        // A true invariant has no violation path.
        assert_eq!(m.violation_path(&Formula::True).unwrap(), None);
    }

    #[test]
    fn memoized_rechecks_and_shared_subformulas_agree() {
        let g = counter_graph();
        let m = Mck::new(&g);
        let af = Formula::eventually(p(0));
        let first = m.check(&af).unwrap().satisfying().clone();
        // Second check hits the memoized fixpoint.
        assert_eq!(m.check(&af).unwrap().satisfying(), &first);
        // A superformula sharing the AF subterm reuses its cached set.
        let nested = Formula::always(af);
        assert!(m.check(&nested).unwrap().holds_initially());
    }

    #[test]
    fn error_reporting() {
        let g = counter_graph();
        let m = Mck::new(&g);
        assert!(matches!(m.check(&p(9)), Err(EvalError::PropOutOfRange(_))));
        assert!(matches!(
            m.check(&Formula::knows(Agent::new(9), p(0))),
            Err(EvalError::AgentOutOfRange(_))
        ));
    }
}
