//! An explicit-state CTLK model checker (MCK/MCMAS-style) for the
//! `knowledge-programs` workspace.
//!
//! Once a knowledge-based program has been solved into a standard
//! protocol, this crate *verifies* the result: it explores the protocol's
//! reachable global-state graph ([`StateGraph`]) and checks
//! epistemic–temporal specifications on it ([`Mck`]) — safety (`G φ`),
//! liveness (`F φ`), and knowledge-over-time properties like "whenever the
//! receiver has the bit, the sender eventually knows it has it".
//!
//! Temporal operators are read with the universal path quantifier (`AF`,
//! `AG`, `AX`, `AU`); existential duals are in [`ctl`]. Knowledge uses the
//! observational relation (same current observation ⇒ indistinguishable);
//! for perfect-recall knowledge use the bounded unrollings of
//! `kbp-systems` instead.
//!
//! # Example
//!
//! ```
//! use kbp_mck::{Mck, StateGraph};
//! use kbp_systems::{ContextBuilder, GlobalState, Obs, ActionId, LocalView};
//! use kbp_logic::{Formula, Vocabulary};
//!
//! let mut voc = Vocabulary::new();
//! let a = voc.add_agent("w");
//! let goal = voc.add_prop("goal");
//! let ctx = ContextBuilder::new(voc)
//!     .initial_state(GlobalState::new(vec![0]))
//!     .agent_actions(a, ["step"])
//!     .transition(|s, _| s.with_reg(0, (s.reg(0) + 1).min(2)))
//!     .observe(|_, s| Obs(u64::from(s.reg(0))))
//!     .props(move |p, s| p == goal && s.reg(0) == 2)
//!     .build();
//! let step = |_: &LocalView<'_>| vec![ActionId(0)];
//! let graph = StateGraph::explore(&ctx, &step, 1000)?;
//! let mck = Mck::new(&graph);
//! assert!(mck.check(&Formula::eventually(Formula::prop(goal)))?.holds_initially());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod fair;
mod graph;

pub use check::{ctl, CheckResult, Mck};
pub use fair::FairMck;
pub use graph::StateGraph;
