//! Fair CTLK: model checking under generalized-Büchi fairness
//! constraints.
//!
//! FHMV's liveness claims for the transmission protocols hold only under
//! *fairness*: "the channel does not lose messages forever". This module
//! implements CTLK where the path quantifiers range over **fair paths** —
//! infinite paths visiting every fairness set infinitely often — using
//! the Emerson–Lei fixpoint characterisation:
//!
//! ```text
//! E_fair G φ  =  νZ. φ ∧ ⋀_i EX E[φ U (Z ∧ F_i)]
//! ```
//!
//! Temporal operators in formulas keep their universal reading, now over
//! fair paths only: `F φ` = "on every fair path, eventually φ". With the
//! fairness set "channel kind this step", `F sack` fails in plain CTL
//! (the adversary can drop everything forever) but holds fairly — exactly
//! the paper's statement.

use crate::graph::StateGraph;
use kbp_kripke::{BitSet, EvalCache, EvalEngine, EvalError, TemporalOps};
use kbp_logic::{Formula, FormulaArena};
use std::cell::RefCell;

/// A CTLK model checker whose path quantifiers range over fair paths.
///
/// # Example
///
/// ```
/// use kbp_mck::{FairMck, StateGraph};
/// use kbp_systems::{ContextBuilder, GlobalState, Obs, ActionId, LocalView, EnvActionId};
/// use kbp_logic::{Formula, PropId, Vocabulary};
///
/// // A coin the environment may flip to heads (and then leave alone);
/// // nothing forces it to — unless fairness says "flips happen".
/// let mut voc = Vocabulary::new();
/// let a = voc.add_agent("w");
/// let heads = voc.add_prop("heads");
/// let flipped = voc.add_prop("flipped");
/// let ctx = ContextBuilder::new(voc)
///     .initial_state(GlobalState::new(vec![0, 0]))
///     .agent_actions(a, ["noop"])
///     .env_protocol(|s| if s.reg(0) == 1 { vec![EnvActionId(0)] }
///                       else { vec![EnvActionId(0), EnvActionId(1)] })
///     .transition(|s, j| if j.env == EnvActionId(1) {
///         GlobalState::new(vec![1, 1])
///     } else {
///         GlobalState::new(vec![s.reg(0), s.reg(0)])
///     })
///     .observe(|_, s| Obs(u64::from(s.reg(0))))
///     .props(move |p, s| (p == heads && s.reg(0) == 1) || (p == flipped && s.reg(1) == 1))
///     .build();
/// let noop = |_: &LocalView<'_>| vec![ActionId(0)];
/// let graph = StateGraph::explore(&ctx, &noop, 100)?;
///
/// // Plain CTL: AF heads fails. Under "flipped-or-done infinitely often"
/// // fairness... here simply: fair set = states where heads ∨ flipped —
/// // any path looping on tails forever is unfair.
/// let fair = FairMck::new(&graph, &[Formula::prop(heads)])?;
/// assert!(fair.check(&Formula::eventually(Formula::prop(heads)))?.holds_initially());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FairMck<'g> {
    graph: &'g StateGraph,
    fair_sets: Vec<BitSet>,
    /// States from which some fair path starts (`E_fair G true`).
    fair: BitSet,
    /// The checker's evaluation engine: one interning arena shared by
    /// every `check` call on this value. Kept separate from any plain
    /// [`Mck`](crate::Mck) arena — the same subformula has *different*
    /// satisfaction sets under plain and fair path quantification, so the
    /// caches must never be shared.
    engine: RefCell<EvalEngine>,
    /// Memoized fair-semantics satisfaction sets per interned subformula.
    cache: RefCell<EvalCache>,
}

impl<'g> FairMck<'g> {
    /// Creates a fair checker with one fairness set per constraint
    /// formula (each must hold infinitely often along a fair path).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a constraint cannot be evaluated.
    /// An empty constraint list is allowed and makes every (infinite)
    /// path fair — the checker then agrees with [`Mck`](crate::Mck).
    pub fn new(graph: &'g StateGraph, constraints: &[Formula]) -> Result<Self, EvalError> {
        // Constraints are plain-CTL state sets: evaluate them with a
        // *temporary* plain checker whose cache is dropped here, so no
        // plain-semantics entry can leak into this checker's fair cache.
        let plain = crate::Mck::new(graph);
        let fair_sets: Vec<BitSet> = constraints
            .iter()
            .map(|f| plain.check(f).map(|r| r.satisfying().clone()))
            .collect::<Result<_, _>>()?;
        let mut this = FairMck {
            graph,
            fair_sets,
            fair: BitSet::new(graph.state_count()),
            engine: RefCell::new(EvalEngine::new(FormulaArena::new())),
            cache: RefCell::new(EvalCache::new()),
        };
        this.fair = this.eg_fair(&BitSet::full(graph.state_count()));
        Ok(this)
    }

    /// The states from which at least one fair path starts.
    #[must_use]
    pub fn fair_states(&self) -> &BitSet {
        &self.fair
    }

    /// States with a successor in `target`.
    fn ex(&self, target: &BitSet) -> BitSet {
        let n = self.graph.state_count();
        let mut out = BitSet::new(n);
        for s in 0..n {
            if self
                .graph
                .successors(s)
                .iter()
                .any(|&t| target.contains(t as usize))
            {
                out.insert(s);
            }
        }
        out
    }

    /// Existential until: `E[hold U target]` (least fixpoint).
    fn eu(&self, hold: &BitSet, target: &BitSet) -> BitSet {
        let mut z = target.clone();
        loop {
            let mut next = self.ex(&z);
            next.intersect_with(hold);
            next.union_with(target);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// Emerson–Lei: `E_fair G φ` for `φ` given as a state set.
    fn eg_fair(&self, phi: &BitSet) -> BitSet {
        let mut z = phi.clone();
        loop {
            let mut next = z.clone();
            if self.fair_sets.is_empty() {
                // No constraints: EG φ = νZ. φ ∧ EX Z.
                let mut step = self.ex(&z);
                step.intersect_with(phi);
                next = step;
            } else {
                for f in &self.fair_sets {
                    let mut zf = z.clone();
                    zf.intersect_with(f);
                    let reach = self.eu(phi, &zf);
                    let mut step = self.ex(&reach);
                    step.intersect_with(phi);
                    next.intersect_with(&step);
                }
            }
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// `E_fair F φ` = `E[true U (φ ∧ fair)]`.
    fn ef_fair(&self, phi: &BitSet) -> BitSet {
        let mut target = phi.clone();
        target.intersect_with(&self.fair);
        self.eu(&BitSet::full(self.graph.state_count()), &target)
    }

    /// Checks `formula`, with temporal operators universally quantified
    /// over fair paths.
    ///
    /// The formula is interned into the checker's arena and evaluated by
    /// a postorder walk over its distinct subformulas; epistemic and
    /// boolean kernels are shared with the plain checker, while the fair
    /// temporal operators come from this type's [`TemporalOps`]
    /// implementation. Results are memoized across calls (under fair
    /// semantics only — this cache is never mixed with a plain one).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for out-of-range propositions/agents or empty
    /// group modalities.
    pub fn check(&self, formula: &Formula) -> Result<crate::CheckResult, EvalError> {
        let id = self.engine.borrow_mut().intern(formula);
        let engine = self.engine.borrow();
        let mut cache = self.cache.borrow_mut();
        engine.populate_temporal(self.graph.model(), &mut cache, &[id], self)?;
        let sat = cache
            .get(id)
            .cloned()
            .ok_or(EvalError::Internal("root missing after populate"))?;
        Ok(crate::CheckResult::from_parts(
            sat,
            self.graph.initial_states().to_vec(),
        ))
    }
}

/// Universal temporal operators over **fair** paths, by duality with the
/// existential Emerson–Lei fixpoints:
///
/// * `X φ` = `A_fair X φ` = `¬EX (fair ∧ ¬φ)`.
/// * `F φ` = `A_fair F φ` = `¬E_fair G ¬φ`.
/// * `G φ` = `A_fair G φ` = `¬E_fair F ¬φ`.
/// * `φ U ψ` = `A_fair[φ U ψ]` = `¬(E[¬ψ U ¬φ∧¬ψ∧fair] ∨ E_fair G ¬ψ)`.
impl TemporalOps for FairMck<'_> {
    fn next(&self, phi: &BitSet) -> BitSet {
        let mut bad = phi.complemented();
        bad.intersect_with(&self.fair);
        self.ex(&bad).complemented()
    }

    fn eventually(&self, phi: &BitSet) -> BitSet {
        self.eg_fair(&phi.complemented()).complemented()
    }

    fn always(&self, phi: &BitSet) -> BitSet {
        self.ef_fair(&phi.complemented()).complemented()
    }

    fn until(&self, hold: &BitSet, target: &BitSet) -> BitSet {
        let nb = target.complemented();
        let mut na_nb = hold.complemented();
        na_nb.intersect_with(&nb);
        // E_fair[α U β] = E[α U (β ∧ fair)].
        let mut eu_target = na_nb;
        eu_target.intersect_with(&self.fair);
        let e_until = self.eu(&nb, &eu_target);
        let eg_nb = self.eg_fair(&nb);
        let mut bad = e_until;
        bad.union_with(&eg_nb);
        bad.complemented()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbp_logic::{Formula, PropId, Vocabulary};
    use kbp_systems::{ActionId, ContextBuilder, EnvActionId, GlobalState, LocalView, Obs};

    fn p(i: u32) -> Formula {
        Formula::prop(PropId::new(i))
    }

    /// Env may set a latch or not, forever; prop 0 = latch set.
    fn latch_graph() -> StateGraph {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("w");
        voc.add_prop("flag");
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["noop"])
            .env_protocol(|s| {
                if s.reg(0) == 1 {
                    vec![EnvActionId(0)]
                } else {
                    vec![EnvActionId(0), EnvActionId(1)]
                }
            })
            .transition(|s, j| {
                if j.env == EnvActionId(1) {
                    s.with_reg(0, 1)
                } else {
                    s.clone()
                }
            })
            .observe(|_, _| Obs(0))
            .props(|q, s| q == PropId::new(0) && s.reg(0) == 1)
            .build();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        StateGraph::explore(&ctx, &noop, 100).unwrap()
    }

    #[test]
    fn fairness_turns_possible_into_inevitable() {
        let g = latch_graph();
        // Plain CTL: AF flag fails (the env can stall forever).
        let plain = crate::Mck::new(&g);
        assert!(!plain
            .check(&Formula::eventually(p(0)))
            .unwrap()
            .holds_initially());
        // Fairness "flag infinitely often": stalling forever is unfair.
        let fair = FairMck::new(&g, &[p(0)]).unwrap();
        assert!(fair
            .check(&Formula::eventually(p(0)))
            .unwrap()
            .holds_initially());
    }

    #[test]
    fn empty_constraints_agree_with_plain_mck() {
        let g = latch_graph();
        let plain = crate::Mck::new(&g);
        let fair = FairMck::new(&g, &[]).unwrap();
        for f in [
            Formula::eventually(p(0)),
            Formula::always(p(0)),
            Formula::next(p(0)),
            Formula::until(Formula::not(p(0)), p(0)),
        ] {
            assert_eq!(
                plain.check(&f).unwrap().satisfying(),
                fair.check(&f).unwrap().satisfying(),
                "disagree on {f}"
            );
        }
        assert_eq!(fair.fair_states().count(), g.state_count());
    }

    #[test]
    fn unsatisfiable_fairness_empties_fair_states() {
        let g = latch_graph();
        // "flag ∧ ¬flag infinitely often" is impossible.
        let fair = FairMck::new(&g, &[Formula::and([p(0), Formula::not(p(0))])]).unwrap();
        assert!(fair.fair_states().is_empty());
        // Universally-quantified temporal claims then hold vacuously.
        assert!(fair
            .check(&Formula::eventually(Formula::False))
            .unwrap()
            .holds_initially());
    }

    #[test]
    fn fair_always_still_detects_violations() {
        let g = latch_graph();
        let fair = FairMck::new(&g, &[p(0)]).unwrap();
        // AG ¬flag is false: fair paths must reach flag.
        assert!(!fair
            .check(&Formula::always(Formula::not(p(0))))
            .unwrap()
            .holds_initially());
        // AG (flag -> flag) trivially true.
        assert!(fair
            .check(&Formula::always(Formula::implies(p(0), p(0))))
            .unwrap()
            .holds_initially());
    }

    #[test]
    fn fair_until_and_next() {
        let g = latch_graph();
        let fair = FairMck::new(&g, &[p(0)]).unwrap();
        // A_fair[¬flag U flag] holds initially.
        let u = Formula::until(Formula::not(p(0)), p(0));
        assert!(fair.check(&u).unwrap().holds_initially());
        // A_fair X (flag ∨ ¬flag) trivially true; A_fair X flag false at
        // the initial state (a fair successor with ¬flag exists).
        assert!(fair
            .check(&Formula::next(Formula::or([p(0), Formula::not(p(0))])))
            .unwrap()
            .holds_initially());
        assert!(!fair.check(&Formula::next(p(0))).unwrap().holds_initially());
    }

    #[test]
    fn knowledge_is_unaffected_by_fairness() {
        let g = latch_graph();
        let fair = FairMck::new(&g, &[p(0)]).unwrap();
        let plain = crate::Mck::new(&g);
        let f = Formula::knows(kbp_logic::Agent::new(0), p(0));
        assert_eq!(
            plain.check(&f).unwrap().satisfying(),
            fair.check(&f).unwrap().satisfying()
        );
    }
}
