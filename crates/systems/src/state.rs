//! Global states, observations, and interning tables.

use std::collections::HashMap;
use std::fmt;

/// A global state of the environment-plus-agents system.
///
/// Represented as a small vector of `u32` registers whose meaning is fixed
/// by the [`Context`](crate::Context) that produces it (e.g. register 0 =
/// the hidden bit, register 1 = messages in flight). Contexts encode and
/// decode; the framework only clones, hashes and compares.
///
/// # Example
///
/// ```
/// use kbp_systems::GlobalState;
///
/// let s = GlobalState::new(vec![1, 0, 3]);
/// assert_eq!(s.reg(2), 3);
/// let t = s.with_reg(2, 4);
/// assert_eq!(t.regs(), &[1, 0, 4]);
/// assert_eq!(s.reg(2), 3); // original untouched
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalState(Vec<u32>);

impl GlobalState {
    /// Creates a state from raw registers.
    #[must_use]
    pub fn new(regs: Vec<u32>) -> Self {
        GlobalState(regs)
    }

    /// The raw registers.
    #[must_use]
    pub fn regs(&self) -> &[u32] {
        &self.0
    }

    /// Register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn reg(&self, i: usize) -> u32 {
        self.0[i]
    }

    /// A copy of this state with register `i` replaced by `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn with_reg(&self, i: usize, value: u32) -> GlobalState {
        let mut regs = self.0.clone();
        regs[i] = value;
        GlobalState(regs)
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the state has no registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u32>> for GlobalState {
    fn from(regs: Vec<u32>) -> Self {
        GlobalState(regs)
    }
}

impl fmt::Display for GlobalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (k, r) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "⟩")
    }
}

/// What an agent sees of a global state at one instant.
///
/// An opaque 64-bit code; contexts choose the encoding. Equal codes mean
/// "indistinguishable at this instant".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Obs(pub u64);

impl fmt::Display for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obs:{}", self.0)
    }
}

/// Dense id of an interned [`GlobalState`] within a generated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Interns [`GlobalState`]s into dense [`StateId`]s.
#[derive(Debug, Clone, Default)]
pub struct StateTable {
    states: Vec<GlobalState>,
    ids: HashMap<GlobalState, StateId>,
}

impl StateTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a state, returning its id. Idempotent.
    pub fn intern(&mut self, state: GlobalState) -> StateId {
        if let Some(&id) = self.ids.get(&state) {
            return id;
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(state.clone());
        self.ids.insert(state, id);
        id
    }

    /// The state for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[must_use]
    pub fn state(&self, id: StateId) -> &GlobalState {
        &self.states[id.index()]
    }

    /// Number of interned states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Dense id of an interned local state (per agent, within one generated
/// system).
///
/// With perfect recall a local state is an observation *history*; with
/// observational semantics it is a single observation. Either way it is
/// interned to an id; resolve it back through
/// [`InterpretedSystem::local_view`](crate::InterpretedSystem::local_view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub(crate) u32);

impl LocalId {
    /// The dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a raw local-state id. Meaningful ids come from a generated
    /// system; this constructor exists so external explorers can fill
    /// error-report fields.
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        LocalId(raw)
    }
}

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Interns local states for one agent.
///
/// Entries form a forest: a local state is either an initial observation or
/// a `(parent, observation)` extension. Observational semantics simply
/// always uses initial entries.
#[derive(Debug, Clone, Default)]
pub struct LocalTable {
    entries: Vec<(Option<LocalId>, Obs)>,
    ids: HashMap<(Option<LocalId>, Obs), LocalId>,
}

impl LocalTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a root local state (initial observation, or the whole local
    /// state under observational semantics).
    pub fn intern_root(&mut self, obs: Obs) -> LocalId {
        self.intern(None, obs)
    }

    /// Interns the extension of `parent` by one more observation.
    pub fn intern_child(&mut self, parent: LocalId, obs: Obs) -> LocalId {
        self.intern(Some(parent), obs)
    }

    fn intern(&mut self, parent: Option<LocalId>, obs: Obs) -> LocalId {
        let key = (parent, obs);
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = LocalId(self.entries.len() as u32);
        self.entries.push(key);
        self.ids.insert(key, id);
        id
    }

    /// The observation history of a local state, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[must_use]
    pub fn history(&self, id: LocalId) -> Vec<Obs> {
        let mut rev = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let (parent, obs) = self.entries[c.index()];
            rev.push(obs);
            cur = parent;
        }
        rev.reverse();
        rev
    }

    /// The most recent observation of a local state.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[must_use]
    pub fn last_obs(&self, id: LocalId) -> Obs {
        self.entries[id.index()].1
    }

    /// Number of interned local states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_table_interning_is_idempotent() {
        let mut t = StateTable::new();
        let a = t.intern(GlobalState::new(vec![1, 2]));
        let b = t.intern(GlobalState::new(vec![1, 2]));
        let c = t.intern(GlobalState::new(vec![2, 1]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.state(c).regs(), &[2, 1]);
    }

    #[test]
    fn local_table_builds_histories() {
        let mut t = LocalTable::new();
        let root = t.intern_root(Obs(7));
        let step1 = t.intern_child(root, Obs(8));
        let step2 = t.intern_child(step1, Obs(9));
        assert_eq!(t.history(step2), vec![Obs(7), Obs(8), Obs(9)]);
        assert_eq!(t.history(root), vec![Obs(7)]);
        assert_eq!(t.last_obs(step2), Obs(9));
        // Interning the same extension twice yields the same id.
        assert_eq!(t.intern_child(root, Obs(8)), step1);
    }

    #[test]
    fn distinct_histories_distinct_ids() {
        let mut t = LocalTable::new();
        let r1 = t.intern_root(Obs(0));
        let r2 = t.intern_root(Obs(1));
        assert_ne!(r1, r2);
        let a = t.intern_child(r1, Obs(5));
        let b = t.intern_child(r2, Obs(5));
        assert_ne!(a, b, "same obs, different pasts");
    }

    #[test]
    fn global_state_display() {
        let s = GlobalState::new(vec![3, 1]);
        assert_eq!(s.to_string(), "⟨3,1⟩");
    }
}

serde::impl_serde_newtype!(GlobalState(Vec<u32>));
serde::impl_serde_newtype!(Obs(u64));
serde::impl_serde_newtype!(StateId(u32));
serde::impl_serde_newtype!(LocalId(u32));
