//! Evaluation of epistemic–temporal formulas at points of a bounded
//! generated system.
//!
//! Knowledge operators are evaluated on each layer's S5 model (synchronous
//! semantics: `K_i` quantifies over same-time points with equal local
//! state). Temporal operators are evaluated by backward induction over the
//! layers, with **universal path quantification** over the protocol's and
//! environment's nondeterminism and **bounded-run semantics**: runs end at
//! the horizon, so `X φ` is false on the last layer, and `F φ` / `G φ` /
//! `U` are read on the truncated suffix.
//!
//! Universal path semantics is the right reading for knowledge tests about
//! the future: `K_i F φ` holds when, for every point the agent cannot
//! distinguish and every way the future can unfold from it, `φ` eventually
//! holds — the agent *knows* `φ` is coming. Dually `¬K_i ¬F φ` ("the agent
//! considers `F φ` possible") quantifies existentially.

use crate::system::{InterpretedSystem, Point};
use kbp_kripke::{BitSet, EvalCache, EvalEngine, EvalError};
use kbp_logic::{Formula, FormulaArena, FormulaId, InternedNode};

/// A compiled evaluation of one formula over all points of a system.
///
/// Construction computes, for every subformula and every layer, the set of
/// nodes satisfying it; queries are then O(1). Reuse one evaluator for many
/// point queries of the same formula.
///
/// # Example
///
/// ```
/// use kbp_systems::{generate, ContextBuilder, GlobalState, Obs, Recall, ActionId,
///                   LocalView, Evaluator, Point};
/// use kbp_logic::{Formula, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let agent = voc.add_agent("counter");
/// let done = voc.add_prop("done");
/// let ctx = ContextBuilder::new(voc)
///     .initial_state(GlobalState::new(vec![0]))
///     .agent_actions(agent, ["tick"])
///     .transition(|s, _| s.with_reg(0, (s.reg(0) + 1).min(3)))
///     .observe(|_, s| Obs(u64::from(s.reg(0))))
///     .props(move |p, s| p == done && s.reg(0) == 3)
///     .build();
/// let tick = |_: &LocalView<'_>| vec![ActionId(0)];
/// let sys = generate(&ctx, &tick, Recall::Perfect, 4)?;
///
/// // "done eventually holds" is true from the start.
/// let ev = Evaluator::new(&sys, &Formula::eventually(Formula::prop(done)))?;
/// assert!(ev.holds(Point { time: 0, node: 0 }));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'s> {
    sys: &'s InterpretedSystem,
    /// sat[t] = nodes of layer t satisfying the (root) formula.
    sat: Vec<BitSet>,
}

impl<'s> Evaluator<'s> {
    /// Compiles `formula` over `sys`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for out-of-range propositions or agents, or an
    /// empty group modality. (Temporal operators are supported here, unlike
    /// on static models.)
    pub fn new(sys: &'s InterpretedSystem, formula: &Formula) -> Result<Self, EvalError> {
        let mut arena = FormulaArena::new();
        let root = arena.intern(formula);
        let mut sets = satisfying_layers(sys, &arena, &[root])?;
        let sat = sets.swap_remove(0);
        Ok(Evaluator { sys, sat })
    }

    /// Whether the formula holds at `point`.
    ///
    /// # Panics
    ///
    /// Panics if the point is out of range.
    #[must_use]
    pub fn holds(&self, point: Point) -> bool {
        self.sat[point.time].contains(point.node)
    }

    /// The nodes of layer `t` satisfying the formula.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn satisfying(&self, t: usize) -> &BitSet {
        &self.sat[t]
    }

    /// The system this evaluator is bound to.
    #[must_use]
    pub fn system(&self) -> &'s InterpretedSystem {
        self.sys
    }
}

impl InterpretedSystem {
    /// Evaluates `formula` at a single point (compiles a fresh
    /// [`Evaluator`]; prefer reusing one for repeated queries).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::new`].
    ///
    /// # Panics
    ///
    /// Panics if the point is out of range.
    pub fn eval(&self, point: Point, formula: &Formula) -> Result<bool, EvalError> {
        Ok(Evaluator::new(self, formula)?.holds(point))
    }

    /// Whether `formula` holds at every point of layer 0 — "the formula
    /// holds initially, whatever the initial state".
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::new`].
    pub fn holds_initially(&self, formula: &Formula) -> Result<bool, EvalError> {
        let ev = Evaluator::new(self, formula)?;
        Ok(ev.satisfying(0).count() == self.layer(0).len())
    }
}

/// For each layer, the nodes all of whose children lie in `next` (nodes of
/// the next layer). Nodes of the last layer have no children: `vacuous`
/// decides whether they qualify.
fn all_children_in(
    sys: &InterpretedSystem,
    t: usize,
    next: Option<&BitSet>,
    vacuous: bool,
) -> BitSet {
    let layer = sys.layer(t);
    let mut out = BitSet::new(layer.len());
    match next {
        None => {
            if vacuous {
                out = BitSet::full(layer.len());
            }
        }
        Some(next) => {
            for (ni, node) in layer.nodes().iter().enumerate() {
                if node.children().iter().all(|&c| next.contains(c)) {
                    out.insert(ni);
                }
            }
        }
    }
    out
}

/// Evaluates a batch of interned `roots` on every layer of `sys`,
/// returning `result[r][t]` = nodes of layer `t` satisfying `roots[r]`.
///
/// This is a thin driver over the shared evaluation kernel of
/// `kbp-kripke`: the reachable part of `arena` is walked once in
/// postorder; every non-temporal node is evaluated per layer through that
/// layer's [`EvalCache`] (so each *distinct* subformula costs one
/// evaluation per layer, and group partitions are memoized), while
/// temporal nodes are computed here by backward induction over the layers
/// — with universal path quantification and bounded-run semantics — and
/// inserted into the per-layer caches so enclosing formulas pick them up
/// transparently.
///
/// Evaluating all guards of a program through one arena is how the solver
/// and enumerator share subformula work across clauses; pass one root for
/// the single-formula case (see [`Evaluator`]).
///
/// # Errors
///
/// Returns [`EvalError`] for out-of-range propositions or agents, or an
/// empty group modality.
///
/// # Panics
///
/// Panics if a root id was not issued by `arena`.
pub fn satisfying_layers(
    sys: &InterpretedSystem,
    arena: &FormulaArena,
    roots: &[FormulaId],
) -> Result<Vec<Vec<BitSet>>, EvalError> {
    satisfying_layers_impl(sys, arena, roots, &mut |t, cache, id| {
        sys.layer(t).model().satisfying_cached(cache, arena, id)?;
        Ok(())
    })
}

/// Like [`satisfying_layers`], but static nodes are evaluated through
/// `engine`, so its thread/sharding policy applies: a layer wide enough to
/// clear the engine's `shard_min_worlds` gate has its partition and
/// sat-set kernels split across world ranges even when the layer is
/// evaluated on its own.
///
/// The walk uses the engine's arena; `roots` must be ids issued by
/// [`EvalEngine::arena`].
///
/// # Errors
///
/// Returns [`EvalError`] for out-of-range propositions or agents, or an
/// empty group modality.
///
/// # Panics
///
/// Panics if a root id was not issued by the engine's arena.
pub fn satisfying_layers_with(
    sys: &InterpretedSystem,
    engine: &EvalEngine,
    roots: &[FormulaId],
) -> Result<Vec<Vec<BitSet>>, EvalError> {
    satisfying_layers_impl(sys, engine.arena(), roots, &mut |t, cache, id| {
        engine.populate(sys.layer(t).model(), cache, &[id])
    })
}

/// Shared postorder walk: temporal nodes by backward induction here,
/// static nodes through `eval_static(layer, cache, id)` (which must leave
/// `cache.get(id)` populated).
fn satisfying_layers_impl(
    sys: &InterpretedSystem,
    arena: &FormulaArena,
    roots: &[FormulaId],
    eval_static: &mut dyn FnMut(usize, &mut EvalCache, FormulaId) -> Result<(), EvalError>,
) -> Result<Vec<Vec<BitSet>>, EvalError> {
    let layers = sys.layer_count();
    let mut caches: Vec<EvalCache> = (0..layers).map(|_| EvalCache::new()).collect();
    // Per-layer sets of one already-evaluated child, cloned out of the
    // caches for the backward inductions.
    let child_sets = |caches: &[EvalCache], f: FormulaId| -> Result<Vec<BitSet>, EvalError> {
        caches
            .iter()
            .map(|c| {
                c.get(f)
                    .cloned()
                    .ok_or(EvalError::Internal("postorder child missing from cache"))
            })
            .collect()
    };
    for id in arena.reachable(roots) {
        match arena.node(id) {
            InternedNode::Next(f) => {
                let sat = child_sets(&caches, *f)?;
                for (t, cache) in caches.iter_mut().enumerate() {
                    let next = if t + 1 < layers {
                        Some(&sat[t + 1])
                    } else {
                        None
                    };
                    // Strong next: false at the horizon.
                    cache.insert(id, all_children_in(sys, t, next, false))?;
                }
            }
            InternedNode::Always(f) => {
                let sat = child_sets(&caches, *f)?;
                let mut next: Option<BitSet> = None;
                for t in (0..layers).rev() {
                    let mut g = all_children_in(sys, t, next.as_ref(), true);
                    g.intersect_with(&sat[t]);
                    caches[t].insert(id, g.clone())?;
                    next = Some(g);
                }
            }
            InternedNode::Eventually(f) => {
                let sat = child_sets(&caches, *f)?;
                let mut next: Option<BitSet> = None;
                for t in (0..layers).rev() {
                    // φ now, or all futures reach it (no children ⇒ only "now").
                    let mut fset = all_children_in(sys, t, next.as_ref(), false);
                    fset.union_with(&sat[t]);
                    caches[t].insert(id, fset.clone())?;
                    next = Some(fset);
                }
            }
            InternedNode::Until(a, b) => {
                let sa = child_sets(&caches, *a)?;
                let sb = child_sets(&caches, *b)?;
                let mut next: Option<BitSet> = None;
                for t in (0..layers).rev() {
                    let mut u = all_children_in(sys, t, next.as_ref(), false);
                    u.intersect_with(&sa[t]);
                    u.union_with(&sb[t]);
                    caches[t].insert(id, u.clone())?;
                    next = Some(u);
                }
            }
            _ => {
                // Static node: the kernel evaluates it against each
                // layer's model; children are already cached, so the
                // recursion inside is at most one level deep.
                for (t, cache) in caches.iter_mut().enumerate() {
                    eval_static(t, cache, id)?;
                }
            }
        }
    }
    roots
        .iter()
        .map(|&r| child_sets(&caches, r))
        .collect::<Result<Vec<_>, EvalError>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ActionId, ContextBuilder, EnvActionId, FnContext};
    use crate::protocol::LocalView;
    use crate::state::{GlobalState, Obs};
    use crate::system::{generate, Recall};
    use kbp_logic::{Agent, AgentSet, Vocabulary};

    /// Counter 0..=3, saturating; `done` at 3; agent sees the counter.
    fn counter_context() -> FnContext {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("counter");
        let done = voc.add_prop("done");
        ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["tick"])
            .transition(|s, _| s.with_reg(0, (s.reg(0) + 1).min(3)))
            .observe(|_, s| Obs(u64::from(s.reg(0))))
            .props(move |p, s| p == done && s.reg(0) == 3)
            .build()
    }

    fn p0() -> Formula {
        Formula::prop(kbp_logic::PropId::new(0))
    }

    #[test]
    fn eventually_done_holds_from_start() {
        let ctx = counter_context();
        let tick = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &tick, Recall::Perfect, 4).unwrap();
        let ev = Evaluator::new(&sys, &Formula::eventually(p0())).unwrap();
        assert!(ev.holds(Point { time: 0, node: 0 }));
        assert!(sys.holds_initially(&Formula::eventually(p0())).unwrap());
    }

    #[test]
    fn eventually_fails_if_horizon_too_short() {
        let ctx = counter_context();
        let tick = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &tick, Recall::Perfect, 2).unwrap();
        // Bounded semantics: the run ends at t=2 with counter 2.
        assert!(!sys.holds_initially(&Formula::eventually(p0())).unwrap());
    }

    #[test]
    fn always_and_next() {
        let ctx = counter_context();
        let tick = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &tick, Recall::Perfect, 4).unwrap();
        // From t=3 on, done holds forever (within the bound).
        let ev = Evaluator::new(&sys, &Formula::always(p0())).unwrap();
        assert!(ev.holds(Point { time: 3, node: 0 }));
        assert!(!ev.holds(Point { time: 0, node: 0 }));
        // Strong next: false at the last layer even for true operand.
        let nx = Evaluator::new(&sys, &Formula::next(Formula::True)).unwrap();
        assert!(nx.holds(Point { time: 0, node: 0 }));
        assert!(!nx.holds(Point { time: 4, node: 0 }));
    }

    #[test]
    fn until_semantics() {
        let ctx = counter_context();
        let tick = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &tick, Recall::Perfect, 4).unwrap();
        // (!done) U done holds initially.
        let u = Formula::until(Formula::not(p0()), p0());
        assert!(sys.holds_initially(&u).unwrap());
        // false U done still holds where done already holds.
        let u2 = Formula::until(Formula::False, p0());
        let ev = Evaluator::new(&sys, &u2).unwrap();
        assert!(ev.holds(Point { time: 3, node: 0 }));
        assert!(!ev.holds(Point { time: 0, node: 0 }));
    }

    /// Env may or may not ever set the flag; agent observes nothing.
    fn maybe_context() -> FnContext {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("watcher");
        let flag = voc.add_prop("flag");
        ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["noop"])
            .env_protocol(|s| {
                if s.reg(0) == 1 {
                    vec![EnvActionId(0)] // once set, stays
                } else {
                    vec![EnvActionId(0), EnvActionId(1)]
                }
            })
            .transition(|s, j| {
                if j.env == EnvActionId(1) {
                    s.with_reg(0, 1)
                } else {
                    s.clone()
                }
            })
            .observe(|_, _| Obs(0))
            .props(move |p, s| p == flag && s.reg(0) == 1)
            .build()
    }

    #[test]
    fn universal_path_quantification() {
        let ctx = maybe_context();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 3).unwrap();
        let root = Point { time: 0, node: 0 };
        // Not all futures set the flag.
        assert!(!sys.eval(root, &Formula::eventually(p0())).unwrap());
        // But some future does: ¬G¬flag.
        let possible = Formula::not(Formula::always(Formula::not(p0())));
        assert!(sys.eval(root, &possible).unwrap());
    }

    #[test]
    fn knowledge_of_the_future() {
        let ctx = counter_context();
        let tick = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &tick, Recall::Perfect, 4).unwrap();
        let a = Agent::new(0);
        // Deterministic context: the agent knows done is coming.
        let f = Formula::knows(a, Formula::eventually(p0()));
        assert!(sys.holds_initially(&f).unwrap());
    }

    #[test]
    fn ignorance_of_uncertain_future() {
        let ctx = maybe_context();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 3).unwrap();
        let a = Agent::new(0);
        let root = Point { time: 0, node: 0 };
        // The agent does not know the flag will be set...
        assert!(!sys
            .eval(root, &Formula::knows(a, Formula::eventually(p0())))
            .unwrap());
        // ...and does not know it never will (some future does set it).
        assert!(!sys
            .eval(
                root,
                &Formula::knows(a, Formula::always(Formula::not(p0())))
            )
            .unwrap());
        // Under universal path quantification, ¬(F flag) means "not all
        // futures set the flag", which the agent *does* know here.
        assert!(sys
            .eval(
                root,
                &Formula::knows(a, Formula::not(Formula::eventually(p0())))
            )
            .unwrap());
    }

    #[test]
    fn errors_propagate() {
        let ctx = counter_context();
        let tick = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &tick, Recall::Perfect, 1).unwrap();
        let bad = Formula::prop(kbp_logic::PropId::new(42));
        assert!(matches!(
            Evaluator::new(&sys, &bad),
            Err(EvalError::PropOutOfRange(_))
        ));
        let bad_agent = Formula::knows(Agent::new(5), Formula::True);
        assert!(matches!(
            Evaluator::new(&sys, &bad_agent),
            Err(EvalError::AgentOutOfRange(_))
        ));
        let empty = Formula::Common(AgentSet::EMPTY, Box::new(Formula::True));
        assert!(matches!(
            Evaluator::new(&sys, &empty),
            Err(EvalError::EmptyGroup)
        ));
    }
}
