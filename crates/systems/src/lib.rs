//! Runs-and-systems semantics for knowledge-based programs (FHMV,
//! PODC 1995).
//!
//! This crate provides the *dynamic* substrate of the workspace:
//!
//! * [`Context`] — the environment of a planning problem: initial global
//!   states, environment protocol, joint transition function, observation
//!   functions and valuation (`γ = (P_e, G_0, τ)` in the paper). Assemble
//!   one with [`ContextBuilder`].
//! * [`ProtocolFn`] — joint protocols: local states → nonempty action
//!   sets; [`MapProtocol`] is the table-driven concrete form.
//! * [`SystemBuilder`] / [`generate`] — unrolls `R^rep(P, γ)` to a bounded
//!   horizon, producing an [`InterpretedSystem`]: per-layer S5 models over
//!   epistemically distinct points, under perfect-recall or observational
//!   local states ([`Recall`]).
//! * [`Evaluator`] — evaluates epistemic–temporal formulas at
//!   [`Point`]s (knowledge per layer, temporal by backward induction with
//!   universal path quantification and bounded-run semantics).
//! * Run extraction ([`Run`]) and stabilisation detection
//!   ([`InterpretedSystem::stabilization`]).
//!
//! The knowledge-based-program layer itself (guards, induced protocols,
//! fixed-point implementation solving) lives in `kbp-core`, on top of this
//! crate.
//!
//! # Example
//!
//! ```
//! use kbp_systems::{generate, ContextBuilder, GlobalState, Obs, Recall,
//!                   ActionId, LocalView};
//! use kbp_logic::{Formula, Vocabulary};
//!
//! // A sensor that reveals a hidden bit when asked.
//! let mut voc = Vocabulary::new();
//! let agent = voc.add_agent("sensor");
//! let bit = voc.add_prop("bit");
//! let ctx = ContextBuilder::new(voc)
//!     .initial_states([GlobalState::new(vec![0]), GlobalState::new(vec![1])])
//!     .agent_actions(agent, ["read"])
//!     .transition(|s, _| s.clone())
//!     .observe(|_, s| Obs(u64::from(s.reg(0)) + 1))
//!     .props(move |p, s| p == bit && s.reg(0) == 1)
//!     .build();
//!
//! let read = |_: &LocalView<'_>| vec![ActionId(0)];
//! let sys = generate(&ctx, &read, Recall::Perfect, 2)?;
//! // The sensor reads the bit at time 0 already (observation function).
//! let knows_bit = Formula::knows_whether(kbp_logic::Agent::new(0), Formula::prop(bit));
//! assert!(sys.holds_initially(&knows_bit)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Robustness gate: the library surface must stay panic-free so malformed
// inputs (e.g. from the fault-injection layer) surface as typed errors.
// Tests and benches are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod eval;
mod explain;
mod protocol;
pub mod random;
mod runs;
mod stabilize;
mod state;
mod system;

pub use context::{
    ActionId, Context, ContextBuilder, ContextError, EnvActionId, FnContext, JointAction,
};
pub use eval::{satisfying_layers, satisfying_layers_with, Evaluator};
pub use explain::KnowledgeExplanation;
pub use protocol::{FullProtocol, LocalView, MapProtocol, ProtocolFn};
pub use runs::Run;
pub use stabilize::{layer_renaming, LayerSignature};
pub use state::{GlobalState, LocalId, LocalTable, Obs, StateId, StateTable};
pub use system::{
    generate, generate_until_stable, GenerateError, InterpretedSystem, Layer, Node, Point,
    QuotientFrontier, Recall, StepChoices, SystemBuilder,
};
