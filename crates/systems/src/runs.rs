//! Run extraction from bounded generated systems.
//!
//! A *run prefix* of length `T` is a path through the layers: one node per
//! time step, consecutive nodes connected by an edge. Because the builder
//! merges epistemically identical points, a path here may stand for many
//! concrete executions; what it preserves is everything formulas can see.
//!
//! On systems generated through the fused step+quotient path (see
//! [`SystemBuilder::set_gen_quotient_min_worlds`]), each node is further a
//! *bisimulation representative* carrying a multiplicity, so a path is a
//! representative run: it stands for every explicit run threading through
//! the corresponding bisimulation classes. Counts and enumerations below
//! are therefore over representatives — the distinctions formulas can
//! observe — not over explicit-equivalent executions.
//!
//! [`SystemBuilder::set_gen_quotient_min_worlds`]: crate::SystemBuilder::set_gen_quotient_min_worlds

use crate::system::{InterpretedSystem, Point};
use std::fmt;

/// A root-to-horizon path through a generated system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    nodes: Vec<usize>,
}

impl Run {
    /// The point of this run at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the run length.
    #[must_use]
    pub fn point(&self, t: usize) -> Point {
        Point {
            time: t,
            node: self.nodes[t],
        }
    }

    /// Length in time steps (number of points minus one).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The node indices, one per layer.
    #[must_use]
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, n) in self.nodes.iter().enumerate() {
            if t > 0 {
                write!(f, " → ")?;
            }
            write!(f, "({t},{n})")?;
        }
        Ok(())
    }
}

impl InterpretedSystem {
    /// The number of distinct root-to-horizon paths.
    ///
    /// Counted over deduplicated child edges, so this is the number of
    /// epistemically distinct executions, not raw scheduler choices. On a
    /// system with quotient-generated layers the paths are representative
    /// runs (one per chain of bisimulation classes); multiplicities are
    /// not expanded.
    #[must_use]
    pub fn run_count(&self) -> u128 {
        let last = self.layer_count() - 1;
        // paths[n] = number of paths from node n of the current layer to
        // the horizon; computed backwards.
        let mut paths: Vec<u128> = vec![1; self.layer(last).len()];
        for t in (0..last).rev() {
            let layer = self.layer(t);
            let mut new_paths = vec![0u128; layer.len()];
            for (ni, node) in layer.nodes().iter().enumerate() {
                new_paths[ni] = node.children().iter().map(|&c| paths[c]).sum();
            }
            paths = new_paths;
        }
        paths.iter().sum()
    }

    /// Enumerates runs depth-first, up to `limit` of them.
    #[must_use]
    pub fn runs(&self, limit: usize) -> Vec<Run> {
        let mut out = Vec::new();
        let last = self.layer_count() - 1;
        let mut stack: Vec<Vec<usize>> = (0..self.layer(0).len()).rev().map(|n| vec![n]).collect();
        while let Some(path) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            let t = path.len() - 1;
            if t == last {
                out.push(Run { nodes: path });
                continue;
            }
            let node = &self.layer(t).nodes()[path[t]];
            for &c in node.children().iter().rev() {
                let mut next = path.clone();
                next.push(c);
                stack.push(next);
            }
        }
        out
    }

    /// The lexicographically first run.
    #[must_use]
    pub fn first_run(&self) -> Run {
        let mut nodes = vec![0usize];
        for t in 0..self.layer_count() - 1 {
            let node = &self.layer(t).nodes()[nodes[t]];
            // Non-final layers always have children; stop early defensively
            // if the invariant is ever violated.
            match node.children().first().copied() {
                Some(next) => nodes.push(next),
                None => break,
            }
        }
        Run { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ActionId, ContextBuilder, EnvActionId};
    use crate::protocol::LocalView;
    use crate::state::{GlobalState, Obs};
    use crate::system::{generate, Recall};
    use kbp_logic::Vocabulary;

    fn coin_context() -> crate::context::FnContext {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("observer");
        ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["noop"])
            .env_protocol(|_| vec![EnvActionId(0), EnvActionId(1)])
            .transition(|s, j| {
                // Shift the flip into the register so every step doubles
                // the state space (register is a bit-history).
                GlobalState::new(vec![s.reg(0) * 2 + j.env.0])
            })
            .observe(|_, s| Obs(u64::from(s.reg(0))))
            .props(|_, _| false)
            .build()
    }

    #[test]
    fn run_count_matches_enumeration() {
        let ctx = coin_context();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 4).unwrap();
        assert_eq!(sys.run_count(), 16);
        assert_eq!(sys.runs(1000).len(), 16);
    }

    #[test]
    fn runs_respect_limit() {
        let ctx = coin_context();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 4).unwrap();
        assert_eq!(sys.runs(5).len(), 5);
    }

    #[test]
    fn runs_are_connected_paths() {
        let ctx = coin_context();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 3).unwrap();
        for run in sys.runs(100) {
            assert_eq!(run.horizon(), 3);
            for t in 0..3 {
                let node = &sys.layer(t).nodes()[run.nodes()[t]];
                assert!(
                    node.children().contains(&run.nodes()[t + 1]),
                    "run {run} breaks at t={t}"
                );
            }
        }
    }

    #[test]
    fn first_run_is_a_run() {
        let ctx = coin_context();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 3).unwrap();
        let first = sys.first_run();
        assert!(sys.runs(1000).contains(&first));
        assert_eq!(first.point(0), Point { time: 0, node: 0 });
    }

    #[test]
    fn deterministic_system_has_one_run() {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("x");
        let ctx = ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(a, ["noop"])
            .transition(|s, _| s.clone())
            .observe(|_, _| Obs(0))
            .props(|_, _| false)
            .build();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 5).unwrap();
        assert_eq!(sys.run_count(), 1);
        assert_eq!(sys.runs(10).len(), 1);
    }
}
