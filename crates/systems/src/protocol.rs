//! Protocols: functions from local states to nonempty sets of actions.
//!
//! In FHMV a protocol `P_i` maps each local state of agent `i` to the set
//! of actions it may perform there (a singleton for deterministic
//! protocols). Here a local state is presented to the protocol as a
//! [`LocalView`] — the agent's observation history (perfect recall) or its
//! current observation (observational semantics).

use crate::context::ActionId;
use crate::state::Obs;
use kbp_logic::Agent;
use std::collections::HashMap;

/// An agent's local state as seen by a protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalView<'a> {
    /// Whose local state this is.
    pub agent: Agent,
    /// The observation sequence, oldest first. Under perfect recall this is
    /// the whole history (length = time + 1); under observational semantics
    /// it contains only the current observation (length 1).
    pub history: &'a [Obs],
}

impl LocalView<'_> {
    /// The most recent observation, or `Obs(0)` for an empty history
    /// (never produced by the framework).
    #[must_use]
    pub fn current(&self) -> Obs {
        self.history.last().copied().unwrap_or(Obs(0))
    }

    /// The time step this view belongs to (history length − 1) under
    /// perfect recall; `0` under observational semantics.
    #[must_use]
    pub fn time(&self) -> usize {
        self.history.len() - 1
    }
}

/// A joint protocol: for every agent and local view, the nonempty set of
/// actions the agent may take.
///
/// Implemented by closures `Fn(&LocalView) -> Vec<ActionId>` and by
/// [`MapProtocol`].
pub trait ProtocolFn {
    /// The actions the agent may perform at this local state. Must be
    /// nonempty and must depend only on the view (same view ⇒ same set).
    fn actions(&self, view: &LocalView<'_>) -> Vec<ActionId>;
}

impl<F> ProtocolFn for F
where
    F: Fn(&LocalView<'_>) -> Vec<ActionId>,
{
    fn actions(&self, view: &LocalView<'_>) -> Vec<ActionId> {
        self(view)
    }
}

/// A finite, table-driven joint protocol keyed by exact observation
/// histories, with a per-agent default for unlisted histories.
///
/// This is the concrete artifact produced by the `kbp-core` solvers: the
/// standard protocol that implements a knowledge-based program.
///
/// # Example
///
/// ```
/// use kbp_systems::{MapProtocol, ProtocolFn, LocalView, ActionId, Obs};
/// use kbp_logic::Agent;
///
/// let a = Agent::new(0);
/// let mut p = MapProtocol::new(vec![ActionId(0)]); // default: action 0
/// p.insert(a, vec![Obs(1)], vec![ActionId(1)]);
///
/// let seen_one = [Obs(1)];
/// let view = LocalView { agent: a, history: &seen_one };
/// assert_eq!(p.actions(&view), vec![ActionId(1)]);
/// let seen_zero = [Obs(0)];
/// let view = LocalView { agent: a, history: &seen_zero };
/// assert_eq!(p.actions(&view), vec![ActionId(0)]); // default
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapProtocol {
    entries: HashMap<(Agent, Vec<Obs>), Vec<ActionId>>,
    agent_defaults: HashMap<Agent, Vec<ActionId>>,
    default: Vec<ActionId>,
}

impl MapProtocol {
    /// Creates an empty protocol with the given default action set
    /// (returned for any history without an explicit entry).
    ///
    /// # Panics
    ///
    /// Panics if `default` is empty — protocols must always offer an
    /// action.
    #[must_use]
    pub fn new(default: Vec<ActionId>) -> Self {
        assert!(!default.is_empty(), "default action set must be nonempty");
        MapProtocol {
            entries: HashMap::new(),
            agent_defaults: HashMap::new(),
            default,
        }
    }

    /// Sets a per-agent default action set, overriding the global default
    /// for that agent's unlisted histories.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty.
    pub fn set_agent_default(&mut self, agent: Agent, actions: Vec<ActionId>) {
        assert!(!actions.is_empty(), "default action set must be nonempty");
        self.agent_defaults.insert(agent, actions);
    }

    /// Sets the action set for one history.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty.
    pub fn insert(&mut self, agent: Agent, history: Vec<Obs>, actions: Vec<ActionId>) {
        assert!(!actions.is_empty(), "action set must be nonempty");
        self.entries.insert((agent, history), actions);
    }

    /// Looks up the explicit entry for a history, if any.
    #[must_use]
    pub fn get(&self, agent: Agent, history: &[Obs]) -> Option<&[ActionId]> {
        self.entries
            .get(&(agent, history.to_vec()))
            .map(Vec::as_slice)
    }

    /// Number of explicit entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the protocol has no explicit entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(agent, history, actions)` entries in arbitrary
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Agent, &[Obs], &[ActionId])> {
        self.entries
            .iter()
            .map(|((a, h), acts)| (*a, h.as_slice(), acts.as_slice()))
    }

    /// Renders the protocol as a sorted, human-readable table using the
    /// context's agent and action names.
    ///
    /// # Example
    ///
    /// (Output shape:)
    ///
    /// ```text
    /// sender:
    ///   [obs:0]        -> send
    ///   [obs:0,obs:2]  -> noop
    /// ```
    #[must_use]
    pub fn to_pretty(&self, ctx: &dyn crate::context::Context) -> String {
        use std::fmt::Write as _;
        let voc = ctx.vocabulary();
        let mut entries: Vec<(Agent, &[Obs], &[ActionId])> = self.iter().collect();
        entries.sort_by(|x, y| (x.0, x.1.len(), x.1).cmp(&(y.0, y.1.len(), y.1)));
        let mut out = String::new();
        let mut current: Option<Agent> = None;
        for (agent, history, actions) in entries {
            if current != Some(agent) {
                let name = if agent.index() < voc.agent_count() {
                    voc.agent_name(agent).to_owned()
                } else {
                    agent.to_string()
                };
                let _ = writeln!(out, "{name}:");
                current = Some(agent);
            }
            let hist: Vec<String> = history.iter().map(ToString::to_string).collect();
            let acts: Vec<String> = actions.iter().map(|&a| ctx.action_name(agent, a)).collect();
            let _ = writeln!(out, "  [{}] -> {}", hist.join(","), acts.join("|"));
        }
        out
    }

    /// Whether every entry is a singleton (a deterministic protocol).
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.default.len() == 1
            && self.agent_defaults.values().all(|v| v.len() == 1)
            && self.entries.values().all(|v| v.len() == 1)
    }
}

impl ProtocolFn for MapProtocol {
    fn actions(&self, view: &LocalView<'_>) -> Vec<ActionId> {
        self.entries
            .get(&(view.agent, view.history.to_vec()))
            .or_else(|| self.agent_defaults.get(&view.agent))
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }
}

/// The maximally permissive protocol: every agent may always take any of
/// its actions. Running it generates the *full* system of the context —
/// the right system for verifying context-level properties with the model
/// checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullProtocol {
    action_counts: [usize; kbp_logic::Agent::MAX_AGENTS],
    agents: usize,
}

impl FullProtocol {
    /// Creates the full protocol for a context's action repertoires.
    #[must_use]
    pub fn for_context(ctx: &dyn crate::context::Context) -> Self {
        let mut action_counts = [0usize; kbp_logic::Agent::MAX_AGENTS];
        for (i, slot) in action_counts.iter_mut().take(ctx.agent_count()).enumerate() {
            *slot = ctx.action_count(Agent::new(i));
        }
        FullProtocol {
            action_counts,
            agents: ctx.agent_count(),
        }
    }
}

impl ProtocolFn for FullProtocol {
    fn actions(&self, view: &LocalView<'_>) -> Vec<ActionId> {
        debug_assert!(view.agent.index() < self.agents);
        (0..self.action_counts[view.agent.index()])
            .map(|k| ActionId(k as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_view_accessors() {
        let h = [Obs(1), Obs(2), Obs(3)];
        let v = LocalView {
            agent: Agent::new(0),
            history: &h,
        };
        assert_eq!(v.current(), Obs(3));
        assert_eq!(v.time(), 2);
    }

    #[test]
    fn map_protocol_lookup_and_default() {
        let a = Agent::new(0);
        let b = Agent::new(1);
        let mut p = MapProtocol::new(vec![ActionId(9)]);
        p.insert(a, vec![Obs(0), Obs(1)], vec![ActionId(1), ActionId(2)]);
        assert_eq!(
            p.get(a, &[Obs(0), Obs(1)]),
            Some(&[ActionId(1), ActionId(2)][..])
        );
        assert_eq!(p.get(b, &[Obs(0), Obs(1)]), None, "keyed per agent");
        let h = [Obs(0), Obs(1)];
        let v = LocalView {
            agent: b,
            history: &h,
        };
        assert_eq!(p.actions(&v), vec![ActionId(9)]);
        assert!(!p.is_deterministic());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn closure_protocols_work() {
        let p = |view: &LocalView<'_>| {
            if view.current() == Obs(0) {
                vec![ActionId(0)]
            } else {
                vec![ActionId(1)]
            }
        };
        let h = [Obs(5)];
        assert_eq!(
            ProtocolFn::actions(
                &p,
                &LocalView {
                    agent: Agent::new(0),
                    history: &h
                }
            ),
            vec![ActionId(1)]
        );
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_default_rejected() {
        let _ = MapProtocol::new(Vec::new());
    }

    #[test]
    fn pretty_rendering_groups_by_agent_and_sorts() {
        let mut voc = kbp_logic::Vocabulary::new();
        let a = voc.add_agent("alice");
        let b = voc.add_agent("bob");
        let ctx = crate::context::ContextBuilder::new(voc)
            .initial_state(crate::state::GlobalState::new(vec![0]))
            .agent_actions(a, ["wait", "go"])
            .agent_actions(b, ["wait"])
            .transition(|s, _| s.clone())
            .observe(|_, _| Obs(0))
            .props(|_, _| false)
            .build();
        let mut p = MapProtocol::new(vec![ActionId(0)]);
        p.insert(b, vec![Obs(0)], vec![ActionId(0)]);
        p.insert(a, vec![Obs(0), Obs(1)], vec![ActionId(0)]);
        p.insert(a, vec![Obs(0)], vec![ActionId(1)]);
        let s = p.to_pretty(&ctx);
        let alice_pos = s.find("alice:").unwrap();
        let bob_pos = s.find("bob:").unwrap();
        assert!(alice_pos < bob_pos, "{s}");
        assert!(s.contains("[obs:0] -> go"), "{s}");
        assert!(s.contains("[obs:0,obs:1] -> wait"), "{s}");
        // Short history before long one.
        assert!(s.find("[obs:0] -> go").unwrap() < s.find("[obs:0,obs:1]").unwrap());
    }

    #[test]
    fn determinism_check() {
        let mut p = MapProtocol::new(vec![ActionId(0)]);
        assert!(p.is_deterministic());
        p.insert(Agent::new(0), vec![Obs(1)], vec![ActionId(1)]);
        assert!(p.is_deterministic());
        p.insert(Agent::new(0), vec![Obs(2)], vec![ActionId(1), ActionId(0)]);
        assert!(!p.is_deterministic());
    }
}

serde::impl_serde_struct!(MapProtocol {
    entries,
    agent_defaults,
    default,
});
