//! Contexts: the environment side of a knowledge-based planning problem.
//!
//! Following FHMV, a context `γ = (P_e, G_0, τ)` fixes everything except
//! the agents' protocol: the set of initial global states, the
//! environment's (possibly nondeterministic) protocol, and the joint
//! transition function. Running a protocol in a context generates a unique
//! system of runs.

use crate::state::{GlobalState, Obs};
use kbp_logic::{Agent, PropId, Vocabulary};
use std::error::Error;
use std::fmt;

/// An action available to an agent (a dense per-agent index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub u32);

impl ActionId {
    /// The dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "act{}", self.0)
    }
}

/// An action of the environment (message delivery/loss, sensor noise, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnvActionId(pub u32);

impl EnvActionId {
    /// The dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EnvActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "env{}", self.0)
    }
}

/// One action per agent plus the environment's move — the input of the
/// transition function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JointAction {
    /// The environment's move.
    pub env: EnvActionId,
    /// One action per agent, indexed by agent.
    pub acts: Vec<ActionId>,
}

impl JointAction {
    /// Creates a joint action.
    #[must_use]
    pub fn new(env: EnvActionId, acts: Vec<ActionId>) -> Self {
        JointAction { env, acts }
    }

    /// The action of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if the agent index exceeds the number of agents.
    #[must_use]
    pub fn of(&self, agent: Agent) -> ActionId {
        self.acts[agent.index()]
    }
}

/// Errors detected by [`Context::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// The context declares no agents.
    NoAgents,
    /// The context declares no initial states.
    NoInitialStates,
    /// Some agent has an empty action repertoire.
    NoActions(Agent),
    /// The environment protocol offers no action at some reachable state.
    EnvStuck(GlobalState),
    /// [`ContextBuilder::try_build`] was called without a transition
    /// function.
    MissingTransition,
    /// [`ContextBuilder::try_build`] was called without an observation
    /// function.
    MissingObservation,
    /// [`ContextBuilder::try_build`] was called without a propositional
    /// valuation.
    MissingValuation,
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::NoAgents => write!(f, "context has no agents"),
            ContextError::NoInitialStates => write!(f, "context has no initial states"),
            ContextError::NoActions(a) => write!(f, "agent {a} has no actions"),
            ContextError::EnvStuck(s) => {
                write!(f, "environment offers no action at state {s}")
            }
            ContextError::MissingTransition => {
                write!(f, "context builder has no transition function")
            }
            ContextError::MissingObservation => {
                write!(f, "context builder has no observation function")
            }
            ContextError::MissingValuation => {
                write!(f, "context builder has no propositional valuation")
            }
        }
    }
}

impl Error for ContextError {}

/// The environment of a knowledge-based program: initial states,
/// environment protocol, transition function, observation functions and
/// propositional valuation.
///
/// Implement this trait directly for computed state spaces, or assemble a
/// [`FnContext`] with [`ContextBuilder`] for the common case.
///
/// Determinism convention: all nondeterminism is routed through
/// [`env_actions`](Context::env_actions) (the environment's protocol);
/// given the environment's move and every agent's action, the transition is
/// deterministic. This loses no generality and keeps run generation simple.
pub trait Context {
    /// Number of agents acting in the context (≥ 1).
    fn agent_count(&self) -> usize;

    /// The vocabulary interpreting propositions and agent names.
    fn vocabulary(&self) -> &Vocabulary;

    /// The set of initial global states `G_0` (nonempty). The agents'
    /// initial uncertainty is exactly this set.
    fn initial_states(&self) -> Vec<GlobalState>;

    /// The environment's possible moves at a state (nonempty).
    fn env_actions(&self, state: &GlobalState) -> Vec<EnvActionId>;

    /// Number of actions in `agent`'s repertoire (actions are
    /// `ActionId(0..n)`).
    fn action_count(&self, agent: Agent) -> usize;

    /// The (deterministic) joint transition function `τ`.
    fn transition(&self, state: &GlobalState, joint: &JointAction) -> GlobalState;

    /// What `agent` observes at `state`; equal observations at equal times
    /// mean instantaneous indistinguishability.
    fn observe(&self, agent: Agent, state: &GlobalState) -> Obs;

    /// Whether proposition `prop` holds at `state`.
    fn prop_holds(&self, prop: PropId, state: &GlobalState) -> bool;

    /// Human-readable name of an agent action (for reports).
    fn action_name(&self, agent: Agent, action: ActionId) -> String {
        let _ = agent;
        action.to_string()
    }

    /// Human-readable name of an environment action.
    fn env_action_name(&self, action: EnvActionId) -> String {
        action.to_string()
    }

    /// Checks the structural well-formedness conditions that do not
    /// require exploring the state space.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    fn validate(&self) -> Result<(), ContextError> {
        if self.agent_count() == 0 {
            return Err(ContextError::NoAgents);
        }
        let initial = self.initial_states();
        if initial.is_empty() {
            return Err(ContextError::NoInitialStates);
        }
        for i in 0..self.agent_count() {
            if self.action_count(Agent::new(i)) == 0 {
                return Err(ContextError::NoActions(Agent::new(i)));
            }
        }
        for s in &initial {
            if self.env_actions(s).is_empty() {
                return Err(ContextError::EnvStuck(s.clone()));
            }
        }
        Ok(())
    }
}

type EnvFn = dyn Fn(&GlobalState) -> Vec<EnvActionId> + Send + Sync;
type TransFn = dyn Fn(&GlobalState, &JointAction) -> GlobalState + Send + Sync;
type ObserveFn = dyn Fn(Agent, &GlobalState) -> Obs + Send + Sync;
type PropFn = dyn Fn(PropId, &GlobalState) -> bool + Send + Sync;

/// A [`Context`] assembled from closures by [`ContextBuilder`] — the
/// workhorse for scenario definitions.
pub struct FnContext {
    agents: usize,
    voc: Vocabulary,
    initial: Vec<GlobalState>,
    action_counts: Vec<usize>,
    action_names: Vec<Vec<String>>,
    env_action_names: Vec<String>,
    env_fn: Box<EnvFn>,
    trans_fn: Box<TransFn>,
    observe_fn: Box<ObserveFn>,
    prop_fn: Box<PropFn>,
}

impl fmt::Debug for FnContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnContext")
            .field("agents", &self.agents)
            .field("initial_states", &self.initial.len())
            .field("action_counts", &self.action_counts)
            .finish_non_exhaustive()
    }
}

impl Context for FnContext {
    fn agent_count(&self) -> usize {
        self.agents
    }

    fn vocabulary(&self) -> &Vocabulary {
        &self.voc
    }

    fn initial_states(&self) -> Vec<GlobalState> {
        self.initial.clone()
    }

    fn env_actions(&self, state: &GlobalState) -> Vec<EnvActionId> {
        (self.env_fn)(state)
    }

    fn action_count(&self, agent: Agent) -> usize {
        self.action_counts[agent.index()]
    }

    fn transition(&self, state: &GlobalState, joint: &JointAction) -> GlobalState {
        (self.trans_fn)(state, joint)
    }

    fn observe(&self, agent: Agent, state: &GlobalState) -> Obs {
        (self.observe_fn)(agent, state)
    }

    fn prop_holds(&self, prop: PropId, state: &GlobalState) -> bool {
        (self.prop_fn)(prop, state)
    }

    fn action_name(&self, agent: Agent, action: ActionId) -> String {
        self.action_names
            .get(agent.index())
            .and_then(|v| v.get(action.index()))
            .cloned()
            .unwrap_or_else(|| action.to_string())
    }

    fn env_action_name(&self, action: EnvActionId) -> String {
        self.env_action_names
            .get(action.index())
            .cloned()
            .unwrap_or_else(|| action.to_string())
    }
}

/// Builder for [`FnContext`].
///
/// # Example
///
/// A one-agent context with a single toggle action and a `bit` register:
///
/// ```
/// use kbp_systems::{ContextBuilder, Context, GlobalState, Obs, JointAction};
/// use kbp_logic::{Agent, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let agent = voc.add_agent("toggler");
/// let bit = voc.add_prop("bit");
///
/// let ctx = ContextBuilder::new(voc)
///     .initial_state(GlobalState::new(vec![0]))
///     .agent_actions(agent, ["noop", "toggle"])
///     .transition(|s, j| {
///         if j.acts[0].0 == 1 { s.with_reg(0, 1 - s.reg(0)) } else { s.clone() }
///     })
///     .observe(|_, s| Obs(u64::from(s.reg(0))))
///     .props(move |p, s| p == bit && s.reg(0) == 1)
///     .build();
/// assert!(ctx.validate().is_ok());
/// assert_eq!(ctx.agent_count(), 1);
/// ```
pub struct ContextBuilder {
    voc: Vocabulary,
    initial: Vec<GlobalState>,
    action_counts: Vec<usize>,
    action_names: Vec<Vec<String>>,
    env_action_names: Vec<String>,
    env_fn: Option<Box<EnvFn>>,
    trans_fn: Option<Box<TransFn>>,
    observe_fn: Option<Box<ObserveFn>>,
    prop_fn: Option<Box<PropFn>>,
}

impl fmt::Debug for ContextBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContextBuilder")
            .field("initial_states", &self.initial.len())
            .field("action_counts", &self.action_counts)
            .finish_non_exhaustive()
    }
}

impl ContextBuilder {
    /// Starts a context over the given vocabulary. Agents must already be
    /// interned in the vocabulary (or be interned before `build`).
    #[must_use]
    pub fn new(voc: Vocabulary) -> Self {
        ContextBuilder {
            voc,
            initial: Vec::new(),
            action_counts: Vec::new(),
            action_names: Vec::new(),
            env_action_names: Vec::new(),
            env_fn: None,
            trans_fn: None,
            observe_fn: None,
            prop_fn: None,
        }
    }

    /// Adds an initial global state.
    #[must_use]
    pub fn initial_state(mut self, state: GlobalState) -> Self {
        self.initial.push(state);
        self
    }

    /// Adds several initial global states.
    #[must_use]
    pub fn initial_states(mut self, states: impl IntoIterator<Item = GlobalState>) -> Self {
        self.initial.extend(states);
        self
    }

    /// Declares `agent`'s action repertoire by listing action names;
    /// `ActionId(k)` is the `k`-th name.
    ///
    /// # Panics
    ///
    /// Panics if agents are declared out of order (declare agent 0 first,
    /// then agent 1, …) — this keeps action tables dense.
    #[must_use]
    pub fn agent_actions<I, S>(mut self, agent: Agent, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        assert_eq!(
            agent.index(),
            self.action_counts.len(),
            "declare agent action repertoires in agent order"
        );
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        self.action_counts.push(names.len());
        self.action_names.push(names);
        self
    }

    /// Names the environment's actions; `EnvActionId(k)` is the `k`-th
    /// name. Optional: if [`env_protocol`](Self::env_protocol) is never
    /// set, the environment has a single unnamed action `EnvActionId(0)`.
    #[must_use]
    pub fn env_actions<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.env_action_names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the environment protocol (nondeterministic move choice).
    #[must_use]
    pub fn env_protocol(
        mut self,
        f: impl Fn(&GlobalState) -> Vec<EnvActionId> + Send + Sync + 'static,
    ) -> Self {
        self.env_fn = Some(Box::new(f));
        self
    }

    /// Sets the transition function.
    #[must_use]
    pub fn transition(
        mut self,
        f: impl Fn(&GlobalState, &JointAction) -> GlobalState + Send + Sync + 'static,
    ) -> Self {
        self.trans_fn = Some(Box::new(f));
        self
    }

    /// Sets the observation function.
    #[must_use]
    pub fn observe(
        mut self,
        f: impl Fn(Agent, &GlobalState) -> Obs + Send + Sync + 'static,
    ) -> Self {
        self.observe_fn = Some(Box::new(f));
        self
    }

    /// Sets the propositional valuation.
    #[must_use]
    pub fn props(
        mut self,
        f: impl Fn(PropId, &GlobalState) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.prop_fn = Some(Box::new(f));
        self
    }

    /// Finalises the context, substituting inert defaults for unset
    /// hooks: an identity transition, a constant `Obs(0)` observation and
    /// an all-false valuation. Use [`try_build`](Self::try_build) to
    /// require every hook explicitly.
    #[must_use]
    pub fn build(self) -> FnContext {
        let mut b = self;
        if b.trans_fn.is_none() {
            b.trans_fn = Some(Box::new(|s: &GlobalState, _: &JointAction| s.clone()));
        }
        if b.observe_fn.is_none() {
            b.observe_fn = Some(Box::new(|_, _: &GlobalState| Obs(0)));
        }
        if b.prop_fn.is_none() {
            b.prop_fn = Some(Box::new(|_, _: &GlobalState| false));
        }
        match b.try_build() {
            Ok(ctx) => ctx,
            // All three required hooks were just defaulted, so try_build
            // cannot fail; rebuild an empty context as a typed fallback.
            Err(_) => FnContext {
                agents: 0,
                voc: Vocabulary::new(),
                initial: Vec::new(),
                action_counts: Vec::new(),
                action_names: Vec::new(),
                env_action_names: Vec::new(),
                env_fn: Box::new(|_| vec![EnvActionId(0)]),
                trans_fn: Box::new(|s: &GlobalState, _| s.clone()),
                observe_fn: Box::new(|_, _| Obs(0)),
                prop_fn: Box::new(|_, _| false),
            },
        }
    }

    /// Finalises the context, reporting unset hooks as typed errors
    /// instead of substituting defaults.
    ///
    /// # Errors
    ///
    /// Returns [`ContextError::MissingTransition`],
    /// [`ContextError::MissingObservation`] or
    /// [`ContextError::MissingValuation`] if the corresponding hook was
    /// never supplied.
    pub fn try_build(self) -> Result<FnContext, ContextError> {
        let Some(trans_fn) = self.trans_fn else {
            return Err(ContextError::MissingTransition);
        };
        let Some(observe_fn) = self.observe_fn else {
            return Err(ContextError::MissingObservation);
        };
        let Some(prop_fn) = self.prop_fn else {
            return Err(ContextError::MissingValuation);
        };
        Ok(FnContext {
            agents: self.action_counts.len(),
            voc: self.voc,
            initial: self.initial,
            action_counts: self.action_counts,
            action_names: self.action_names,
            env_action_names: self.env_action_names,
            env_fn: self
                .env_fn
                .unwrap_or_else(|| Box::new(|_| vec![EnvActionId(0)])),
            trans_fn,
            observe_fn,
            prop_fn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle_context() -> FnContext {
        let mut voc = Vocabulary::new();
        let agent = voc.add_agent("toggler");
        let bit = voc.add_prop("bit");
        ContextBuilder::new(voc)
            .initial_state(GlobalState::new(vec![0]))
            .agent_actions(agent, ["noop", "toggle"])
            .transition(|s, j| {
                if j.acts[0].0 == 1 {
                    s.with_reg(0, 1 - s.reg(0))
                } else {
                    s.clone()
                }
            })
            .observe(|_, s| Obs(u64::from(s.reg(0))))
            .props(move |p, s| p == bit && s.reg(0) == 1)
            .build()
    }

    #[test]
    fn builder_assembles_valid_context() {
        let ctx = toggle_context();
        assert!(ctx.validate().is_ok());
        assert_eq!(ctx.agent_count(), 1);
        assert_eq!(ctx.action_count(Agent::new(0)), 2);
        assert_eq!(ctx.action_name(Agent::new(0), ActionId(1)), "toggle");
        assert_eq!(
            ctx.env_actions(&GlobalState::new(vec![0])),
            vec![EnvActionId(0)]
        );
    }

    #[test]
    fn transition_and_valuation_work() {
        let ctx = toggle_context();
        let s0 = GlobalState::new(vec![0]);
        let j = JointAction::new(EnvActionId(0), vec![ActionId(1)]);
        let s1 = ctx.transition(&s0, &j);
        assert_eq!(s1.reg(0), 1);
        let bit = ctx.vocabulary().prop("bit").unwrap();
        assert!(!ctx.prop_holds(bit, &s0));
        assert!(ctx.prop_holds(bit, &s1));
        assert_eq!(ctx.observe(Agent::new(0), &s1), Obs(1));
    }

    #[test]
    fn validate_rejects_empty_contexts() {
        let voc = Vocabulary::new();
        let ctx = ContextBuilder::new(voc)
            .transition(|s, _| s.clone())
            .observe(|_, _| Obs(0))
            .props(|_, _| false)
            .build();
        assert_eq!(ctx.validate(), Err(ContextError::NoAgents));
    }

    #[test]
    fn validate_requires_initial_states() {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("a");
        let ctx = ContextBuilder::new(voc)
            .agent_actions(a, ["noop"])
            .transition(|s, _| s.clone())
            .observe(|_, _| Obs(0))
            .props(|_, _| false)
            .build();
        assert_eq!(ctx.validate(), Err(ContextError::NoInitialStates));
    }

    #[test]
    fn joint_action_accessor() {
        let j = JointAction::new(EnvActionId(0), vec![ActionId(3), ActionId(4)]);
        assert_eq!(j.of(Agent::new(1)), ActionId(4));
    }
}

serde::impl_serde_newtype!(ActionId(u32));
serde::impl_serde_newtype!(EnvActionId(u32));
serde::impl_serde_struct!(JointAction { env, acts });
