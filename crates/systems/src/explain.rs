//! Diagnostics: *why* does an agent (not) know something, and what does a
//! run look like?
//!
//! Knowledge failures have canonical witnesses: `K_i φ` fails at a point
//! exactly because of some indistinguishable point where `φ` fails.
//! Surfacing that point (and its observable history) is the single most
//! useful debugging aid when a knowledge-based program does not derive
//! the protocol its author expected.

use crate::context::Context;
use crate::eval::Evaluator;
use crate::runs::Run;
use crate::system::{InterpretedSystem, Point};
use kbp_kripke::EvalError;
use kbp_logic::{Agent, Formula};
use std::fmt;

/// The result of explaining a knowledge test at a point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeExplanation {
    /// Whether `K_agent φ` holds at the queried point.
    pub holds: bool,
    /// The queried point.
    pub point: Point,
    /// If the test fails: an indistinguishable point where `φ` fails —
    /// the agent "cannot rule this out".
    pub counter_point: Option<Point>,
    /// Size of the agent's information cell at the point.
    pub cell_size: usize,
}

impl fmt::Display for KnowledgeExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds {
            write!(
                f,
                "knowledge holds at {} (formula true at all {} indistinguishable points)",
                self.point, self.cell_size
            )
        } else if let Some(cp) = self.counter_point {
            write!(
                f,
                "knowledge fails at {}: the agent cannot rule out {} (cell of {} points)",
                self.point, cp, self.cell_size
            )
        } else {
            write!(
                f,
                "knowledge fails at {} (cell of {} points)",
                self.point, self.cell_size
            )
        }
    }
}

impl InterpretedSystem {
    /// Explains `K_agent φ` at `point`: result plus, on failure, a
    /// counterexample point the agent considers possible where `φ` fails.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if `φ` cannot be evaluated.
    ///
    /// # Panics
    ///
    /// Panics if the point or agent is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use kbp_systems::{generate, ContextBuilder, GlobalState, Obs, Recall,
    ///                   ActionId, LocalView, Point};
    /// use kbp_logic::{Agent, Formula, Vocabulary};
    ///
    /// // A hidden bit the agent never observes.
    /// let mut voc = Vocabulary::new();
    /// let a = voc.add_agent("blind");
    /// let bit = voc.add_prop("bit");
    /// let ctx = ContextBuilder::new(voc)
    ///     .initial_states([GlobalState::new(vec![0]), GlobalState::new(vec![1])])
    ///     .agent_actions(a, ["noop"])
    ///     .transition(|s, _| s.clone())
    ///     .observe(|_, _| Obs(0))
    ///     .props(move |p, s| p == bit && s.reg(0) == 1)
    ///     .build();
    /// let noop = |_: &LocalView<'_>| vec![ActionId(0)];
    /// let sys = generate(&ctx, &noop, Recall::Perfect, 1)?;
    ///
    /// // Why doesn't the agent know the bit at the bit=1 point?
    /// let p1 = Point { time: 0, node: 1 };
    /// let expl = sys.explain_knowledge(Agent::new(0), p1, &Formula::prop(bit))?;
    /// assert!(!expl.holds);
    /// assert_eq!(expl.counter_point, Some(Point { time: 0, node: 0 }));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn explain_knowledge(
        &self,
        agent: Agent,
        point: Point,
        phi: &Formula,
    ) -> Result<KnowledgeExplanation, EvalError> {
        let ev = Evaluator::new(self, phi)?;
        let cell = self.indistinguishable_points(agent, point);
        let counter_point = cell.iter().copied().find(|&p| !ev.holds(p));
        Ok(KnowledgeExplanation {
            holds: counter_point.is_none(),
            point,
            counter_point,
            cell_size: cell.len(),
        })
    }

    /// Renders a run as a step-by-step trace using the context's action
    /// names: one line per time step with the global state, and between
    /// steps the joint action(s) that realise the transition.
    ///
    /// # Panics
    ///
    /// Panics if the run does not belong to this system.
    #[must_use]
    pub fn describe_run(&self, run: &Run, ctx: &dyn Context) -> String {
        let mut out = String::new();
        for t in 0..=run.horizon() {
            let point = run.point(t);
            let state = self.global_state(point);
            out.push_str(&format!("t={t}: {state}\n"));
            if t < run.horizon() {
                let node = self.node(point);
                let next = run.point(t + 1).node as u32;
                // All joint actions that realise this step.
                let mut labels: Vec<String> = node
                    .edges()
                    .iter()
                    .filter(|&&(child, _)| child == next)
                    .map(|(_, joint)| {
                        let agents: Vec<String> = joint
                            .acts
                            .iter()
                            .enumerate()
                            .map(|(i, &a)| ctx.action_name(Agent::new(i), a))
                            .collect();
                        format!(
                            "[{} / {}]",
                            agents.join(","),
                            ctx.env_action_name(joint.env)
                        )
                    })
                    .collect();
                labels.sort();
                labels.dedup();
                out.push_str(&format!("    {}\n", labels.join(" or ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ActionId, ContextBuilder};
    use crate::protocol::LocalView;
    use crate::state::{GlobalState, Obs};
    use crate::system::{generate, Recall};
    use kbp_logic::{PropId, Vocabulary};

    fn blind_bit() -> crate::context::FnContext {
        let mut voc = Vocabulary::new();
        let a = voc.add_agent("blind");
        let bit = voc.add_prop("bit");
        ContextBuilder::new(voc)
            .initial_states([GlobalState::new(vec![0]), GlobalState::new(vec![1])])
            .agent_actions(a, ["noop", "peek"])
            .transition(|s, j| {
                if j.acts[0] == ActionId(1) {
                    GlobalState::new(vec![s.reg(0), 1])
                } else {
                    GlobalState::new(vec![s.reg(0), 0])
                }
            })
            .observe(|_, s| {
                if s.len() > 1 && s.reg(1) == 1 {
                    Obs(u64::from(s.reg(0)) + 1)
                } else {
                    Obs(0)
                }
            })
            .props(move |p, s| p == bit && s.reg(0) == 1)
            .build()
    }

    #[test]
    fn failure_produces_a_counterexample_point() {
        let ctx = blind_bit();
        let noop = |_: &LocalView<'_>| vec![ActionId(0)];
        let sys = generate(&ctx, &noop, Recall::Perfect, 1).unwrap();
        let a = Agent::new(0);
        let bit = Formula::prop(PropId::new(0));
        let p1 = Point { time: 0, node: 1 };
        let expl = sys.explain_knowledge(a, p1, &bit).unwrap();
        assert!(!expl.holds);
        assert_eq!(expl.cell_size, 2);
        let cp = expl.counter_point.unwrap();
        // The counterexample really is indistinguishable and really fails.
        assert_eq!(sys.local(a, cp), sys.local(a, p1));
        assert!(!sys.eval(cp, &bit).unwrap());
        assert!(expl.to_string().contains("cannot rule out"));
    }

    #[test]
    fn success_has_no_counterexample() {
        let ctx = blind_bit();
        let peek = |_: &LocalView<'_>| vec![ActionId(1)];
        let sys = generate(&ctx, &peek, Recall::Perfect, 1).unwrap();
        let a = Agent::new(0);
        let bit = Formula::prop(PropId::new(0));
        // After peeking, find the bit=1 node at t=1.
        let p = (0..sys.layer(1).len())
            .map(|node| Point { time: 1, node })
            .find(|&p| sys.global_state(p).reg(0) == 1)
            .unwrap();
        let expl = sys.explain_knowledge(a, p, &bit).unwrap();
        assert!(expl.holds);
        assert_eq!(expl.counter_point, None);
        assert_eq!(expl.cell_size, 1);
        assert!(expl.to_string().contains("holds"));
    }

    #[test]
    fn describe_run_shows_states_and_actions() {
        let ctx = blind_bit();
        let peek = |_: &LocalView<'_>| vec![ActionId(1)];
        let sys = generate(&ctx, &peek, Recall::Perfect, 2).unwrap();
        let run = sys.first_run();
        let trace = sys.describe_run(&run, &ctx);
        assert!(trace.contains("t=0:"), "{trace}");
        assert!(trace.contains("t=2:"), "{trace}");
        assert!(trace.contains("peek"), "{trace}");
        assert!(trace.lines().count() >= 5, "{trace}");
    }
}
