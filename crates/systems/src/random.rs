//! Reproducible random contexts, for property tests and benchmarks.
//!
//! A random context has `n_states` abstract global states (one register),
//! a pseudo-random deterministic transition table over joint actions, a
//! pseudo-random observation classing per agent, and pseudo-random
//! proposition valuations. Everything is a pure function of the seed, so
//! test failures replay exactly.

use crate::context::{ContextBuilder, EnvActionId, FnContext};
use crate::state::{GlobalState, Obs};
use kbp_logic::{Agent, Vocabulary};

/// Parameters for [`random_context`].
#[derive(Debug, Clone)]
pub struct RandomContextConfig {
    /// Number of abstract states (≥ 1).
    pub states: u32,
    /// Number of agents (≥ 1).
    pub agents: usize,
    /// Actions per agent (≥ 1).
    pub actions: usize,
    /// Environment moves per state (≥ 1); > 1 makes transitions
    /// nondeterministic.
    pub env_moves: usize,
    /// Number of initial states (clamped to `states`).
    pub initial: usize,
    /// Observation classes per agent (knowledge granularity).
    pub obs_classes: u32,
    /// Number of propositions.
    pub props: usize,
}

impl Default for RandomContextConfig {
    fn default() -> Self {
        RandomContextConfig {
            states: 12,
            agents: 2,
            actions: 2,
            env_moves: 1,
            initial: 3,
            obs_classes: 4,
            props: 2,
        }
    }
}

/// A tiny splittable hash used to derive the tables from the seed.
fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h ^= p.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
    }
    h
}

/// Builds a reproducible pseudo-random context.
///
/// # Panics
///
/// Panics if any size in `cfg` is zero (except `props`, which may be 0).
///
/// # Example
///
/// ```
/// use kbp_systems::random::{random_context, RandomContextConfig};
/// use kbp_systems::Context;
///
/// let ctx = random_context(42, &RandomContextConfig::default());
/// assert!(ctx.validate().is_ok());
/// let same = random_context(42, &RandomContextConfig::default());
/// assert_eq!(ctx.initial_states(), same.initial_states()); // reproducible
/// ```
#[must_use]
pub fn random_context(seed: u64, cfg: &RandomContextConfig) -> FnContext {
    assert!(cfg.states >= 1, "need at least one state");
    assert!(cfg.agents >= 1, "need at least one agent");
    assert!(cfg.actions >= 1, "need at least one action per agent");
    assert!(cfg.env_moves >= 1, "need at least one env move");
    assert!(cfg.obs_classes >= 1, "need at least one observation class");

    let mut voc = Vocabulary::new();
    for i in 0..cfg.agents {
        voc.add_agent(format!("agent_{i}"));
    }
    for p in 0..cfg.props {
        voc.add_prop(format!("q_{p}"));
    }

    let states = cfg.states;
    let env_moves = cfg.env_moves;
    let obs_classes = cfg.obs_classes;
    let initial_count = cfg.initial.clamp(1, cfg.states as usize);

    let mut builder = ContextBuilder::new(voc).initial_states(
        (0..initial_count as u32)
            .map(|k| GlobalState::new(vec![mix(seed, &[1, u64::from(k)]) as u32 % states])),
    );
    for i in 0..cfg.agents {
        builder =
            builder.agent_actions(Agent::new(i), (0..cfg.actions).map(|a| format!("act_{a}")));
    }
    builder
        .env_protocol(move |_| (0..env_moves).map(|e| EnvActionId(e as u32)).collect())
        .transition(move |s, j| {
            let mut parts: Vec<u64> = vec![2, u64::from(s.reg(0)), u64::from(j.env.0)];
            parts.extend(j.acts.iter().map(|a| u64::from(a.0)));
            GlobalState::new(vec![mix(seed, &parts) as u32 % states])
        })
        .observe(move |agent, s| {
            Obs(mix(seed, &[3, agent.index() as u64, u64::from(s.reg(0))]) % u64::from(obs_classes))
        })
        .props(move |p, s| mix(seed, &[4, p.index() as u64, u64::from(s.reg(0))]) & 1 == 1)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::protocol::LocalView;
    use crate::system::{generate, Recall};
    use crate::ActionId;

    #[test]
    fn random_contexts_validate_and_generate() {
        for seed in 0..20 {
            let ctx = random_context(seed, &RandomContextConfig::default());
            assert!(ctx.validate().is_ok());
            let first = |view: &LocalView<'_>| {
                let _ = view;
                vec![ActionId(0)]
            };
            let sys = generate(&ctx, &first, Recall::Perfect, 4).unwrap();
            assert_eq!(sys.layer_count(), 5);
            assert!(sys.point_count() >= 5);
        }
    }

    #[test]
    fn same_seed_same_context() {
        let cfg = RandomContextConfig::default();
        let a = random_context(7, &cfg);
        let b = random_context(7, &cfg);
        assert_eq!(a.initial_states(), b.initial_states());
        let s = GlobalState::new(vec![3]);
        let j = crate::JointAction::new(EnvActionId(0), vec![ActionId(1), ActionId(0)]);
        assert_eq!(a.transition(&s, &j), b.transition(&s, &j));
        assert_eq!(a.observe(Agent::new(1), &s), b.observe(Agent::new(1), &s));
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let cfg = RandomContextConfig {
            states: 50,
            ..RandomContextConfig::default()
        };
        let a = random_context(1, &cfg);
        let b = random_context(2, &cfg);
        let j = crate::JointAction::new(EnvActionId(0), vec![ActionId(0), ActionId(0)]);
        let differs = (0..50u32).any(|k| {
            let s = GlobalState::new(vec![k]);
            a.transition(&s, &j) != b.transition(&s, &j)
        });
        assert!(differs);
    }
}
